//go:build !race

package ioatsim

const raceEnabled = false
