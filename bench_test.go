// Package ioatsim's root benchmarks regenerate every table and figure of
// the paper through testing.B: one benchmark per figure plus the three
// ablations. Each iteration runs the full (scaled) experiment and
// reports the figure's headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Set IOATSIM_SCALE=1 in the
// environment for paper-sized runs (slower); the default scale of 0.25
// preserves every shape. IOATSIM_PARALLEL bounds how many simulation
// points run concurrently inside each figure (default 1, so ns/op stays
// comparable across runs; 0 = one worker per core — wall-clock only,
// the tables are byte-identical at any setting).
package ioatsim

import (
	"os"
	"strconv"
	"testing"

	"ioatsim/internal/bench"
)

// benchConfig picks the run scale and per-figure parallelism.
func benchConfig() bench.Config {
	scale := 0.25
	if v := os.Getenv("IOATSIM_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			scale = f
		}
	}
	parallel := 1
	if v := os.Getenv("IOATSIM_PARALLEL"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			parallel = n
		}
	}
	return bench.Config{Seed: 1, Scale: scale, Parallel: parallel}
}

// runFigure executes one experiment per iteration and reports the last
// row's metrics (the figure's headline operating point).
func runFigure(b *testing.B, id string) {
	r, ok := bench.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	var res *bench.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = r.Run(cfg)
	}
	b.StopTimer()
	if res == nil || len(res.Series.Points) == 0 {
		b.Fatal("experiment produced no rows")
	}
	last := res.Series.Points[len(res.Series.Points)-1]
	for _, col := range res.Series.Columns {
		b.ReportMetric(last.Values[col], metricName(col))
	}
}

// metricName converts a table column into a benchmark metric suffix.
func metricName(col string) string {
	out := make([]rune, 0, len(col))
	for _, r := range col {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == '%':
			out = append(out, 'p', 'c', 't')
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

func BenchmarkFig3aBandwidth(b *testing.B)         { runFigure(b, "fig3a") }
func BenchmarkFig3bBidirBandwidth(b *testing.B)    { runFigure(b, "fig3b") }
func BenchmarkFig4MultiStream(b *testing.B)        { runFigure(b, "fig4") }
func BenchmarkFig5aSocketOpts(b *testing.B)        { runFigure(b, "fig5a") }
func BenchmarkFig5bSocketOptsBidir(b *testing.B)   { runFigure(b, "fig5b") }
func BenchmarkFig6CopyVsDMA(b *testing.B)          { runFigure(b, "fig6") }
func BenchmarkFig7aSplitUpCPU(b *testing.B)        { runFigure(b, "fig7a") }
func BenchmarkFig7bSplitUpThroughput(b *testing.B) { runFigure(b, "fig7b") }
func BenchmarkFig8aSingleFileTPS(b *testing.B)     { runFigure(b, "fig8a") }
func BenchmarkFig8bZipfTPS(b *testing.B)           { runFigure(b, "fig8b") }
func BenchmarkFig9EmulatedClients(b *testing.B)    { runFigure(b, "fig9") }
func BenchmarkFig10aPVFSRead6(b *testing.B)        { runFigure(b, "fig10a") }
func BenchmarkFig10bPVFSRead5(b *testing.B)        { runFigure(b, "fig10b") }
func BenchmarkFig11aPVFSWrite6(b *testing.B)       { runFigure(b, "fig11a") }
func BenchmarkFig11bPVFSWrite5(b *testing.B)       { runFigure(b, "fig11b") }
func BenchmarkFig12PVFSMultiStream(b *testing.B)   { runFigure(b, "fig12") }
func BenchmarkAblRSS(b *testing.B)                 { runFigure(b, "ablrss") }
func BenchmarkAblPinning(b *testing.B)             { runFigure(b, "ablpin") }
func BenchmarkAblCoalescing(b *testing.B)          { runFigure(b, "ablcoal") }
func BenchmarkExtThreeTier(b *testing.B)           { runFigure(b, "ext3tier") }
func BenchmarkExtIPC(b *testing.B)                 { runFigure(b, "extipc") }
func BenchmarkFaultLoss(b *testing.B)              { runFigure(b, "fault_loss") }
