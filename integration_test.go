package ioatsim

import (
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/datacenter"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/pvfs"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

// TestByteConservation checks that every byte a sender hands to the
// transport is delivered exactly once across a mixed multi-stream run,
// with the runtime invariant checker auditing every layer in between.
func TestByteConservation(t *testing.T) {
	cl, a, b := host.Testbed1(cost.Default(), ioat.Linux(), 1, host.WithCheck())
	sizes := []int{1, 777, 4 * cost.KB, 100 * cost.KB, 3 * cost.MB}
	var want int64
	for i, n := range sizes {
		n := n
		want += int64(n)
		ca, cb := tcp.Pair(a.Stack, b.Stack, i%6, i%6)
		src, dst := a.Buf(64*cost.KB), b.Buf(64*cost.KB)
		cl.S.Spawn("tx", func(p *sim.Proc) { ca.Send(p, src, n) })
		cl.S.Spawn("rx", func(p *sim.Proc) { cb.Recv(p, dst, n) })
	}
	cl.S.Run()
	if a.Stack.BytesSent != want || b.Stack.BytesReceived != want {
		t.Fatalf("sent %d received %d, want %d",
			a.Stack.BytesSent, b.Stack.BytesReceived, want)
	}
	if live := b.NIC.PoolLiveBytes(); live != 0 {
		t.Fatalf("kernel buffers leaked: %d bytes", live)
	}
	if fl := cl.Check.Ledger("tcp:stream").InFlight(); fl != 0 {
		t.Fatalf("%d stream bytes in flight after the run drained", fl)
	}
	if err := cl.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossDomainSharedSimulator runs the data-center and PVFS stacks in
// one simulation to make sure nothing relies on process-global state.
func TestCrossDomainSharedSimulator(t *testing.T) {
	cl := host.NewCluster(cost.Default(), 1)
	compute := cl.Add("compute", ioat.Linux(), 6)
	server := cl.Add("server", ioat.Linux(), 6)
	sys := pvfs.New(server, 3, 0)

	var readDone, echoed bool
	cl.S.Spawn("pvfs-user", func(p *sim.Proc) {
		c := pvfs.NewClient(p, compute, sys)
		m := c.Create(p, "x", 2*cost.MB)
		buf := compute.Buf(2 * cost.MB)
		c.Read(p, m, 0, 2*cost.MB, buf)
		readDone = true
	})
	// A raw TCP echo on the same two nodes, different port.
	l := server.Stack.Listen("echo")
	cl.S.Spawn("echo-server", func(p *sim.Proc) {
		c := l.Accept(p)
		dst := server.Buf(8 * cost.KB)
		c.Recv(p, dst, 8*cost.KB)
		c.Send(p, dst, 8*cost.KB)
	})
	cl.S.Spawn("echo-client", func(p *sim.Proc) {
		c := compute.Stack.Dial(p, server.Stack, "echo", 5, 5)
		buf := compute.Buf(8 * cost.KB)
		c.Send(p, buf, 8*cost.KB)
		c.Recv(p, buf, 8*cost.KB)
		echoed = true
	})
	cl.S.Run()
	if !readDone || !echoed {
		t.Fatalf("readDone=%v echoed=%v", readDone, echoed)
	}
}

// TestEndToEndDeterminism runs a full data-center experiment twice and
// demands bit-identical metrics.
func TestEndToEndDeterminism(t *testing.T) {
	o := datacenter.Options{
		Feat: ioat.Linux(), Seed: 42,
		ClientNodes: 4, ThreadsPerClient: 2,
		FileCount: 50, FileSize: 4 * cost.KB, Alpha: 0.9,
		Warm: 10 * time.Millisecond, Meas: 25 * time.Millisecond,
	}
	a := datacenter.RunTwoTier(o)
	b := datacenter.RunTwoTier(o)
	if a != b {
		t.Fatalf("nondeterministic end-to-end run:\n%+v\n%+v", a, b)
	}
}

// TestSeedChangesZipfRun makes sure the seed actually feeds the workload.
func TestSeedChangesZipfRun(t *testing.T) {
	run := func(seed uint64) datacenter.Metrics {
		return datacenter.RunTwoTier(datacenter.Options{
			Feat: ioat.Linux(), Seed: seed,
			ClientNodes: 4, ThreadsPerClient: 2,
			FileCount: 50, FileSize: 4 * cost.KB, Alpha: 0.9,
			Warm: 10 * time.Millisecond, Meas: 25 * time.Millisecond,
		})
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical metrics (suspicious)")
	}
}

// TestFeatureMatrix exercises every feature combination end to end: all
// must deliver the stream, and the full set must not use more CPU than
// the empty set.
func TestFeatureMatrix(t *testing.T) {
	feats := []ioat.Features{
		ioat.None(),
		{DMACopy: true},
		{SplitHeader: true},
		{MultiQueue: true},
		ioat.Linux(),
		ioat.Full(),
	}
	var busies []time.Duration
	for _, f := range feats {
		cl, a, b := host.Testbed1(cost.Default(), f, 1)
		ca, cb := tcp.Pair(a.Stack, b.Stack, 0, 0)
		src, dst := a.Buf(64*cost.KB), b.Buf(64*cost.KB)
		okc := false
		cl.S.Spawn("tx", func(p *sim.Proc) { ca.Send(p, src, 4*cost.MB) })
		cl.S.Spawn("rx", func(p *sim.Proc) {
			cb.Recv(p, dst, 4*cost.MB)
			okc = true
		})
		cl.S.Run()
		if !okc {
			t.Fatalf("feature set %+v failed to deliver", f)
		}
		busies = append(busies, b.CPU.BusyTime())
	}
	if busies[len(busies)-1] >= busies[0] {
		t.Fatalf("full I/OAT (%v) not below non-I/OAT (%v)",
			busies[len(busies)-1], busies[0])
	}
}
