// Package ioatsim is a deterministic cluster simulator reproducing
// "Benefits of I/O Acceleration Technology (I/OAT) in Clusters"
// (Vaidyanathan & Panda, ISPASS 2007) in pure Go.
//
// The package re-exports the library's public surface. A minimal
// session:
//
//	cluster, sender, receiver := ioatsim.Testbed1(ioatsim.DefaultParams(), ioatsim.IOAT(), 1)
//	conn, peer := ioatsim.Pair(sender.Stack, receiver.Stack, 0, 0)
//	src, dst := sender.Buf(64<<10), receiver.Buf(64<<10)
//	cluster.S.Spawn("tx", func(p *ioatsim.Proc) { conn.Send(p, src, 16<<20) })
//	cluster.S.Spawn("rx", func(p *ioatsim.Proc) { peer.Recv(p, dst, 16<<20) })
//	cluster.S.Run()
//	fmt.Println(receiver.CPU.Utilization())
//
// Layers, bottom up:
//
//   - the simulation kernel (Simulator, Proc) — a deterministic
//     discrete-event loop with goroutine-backed blocking processes;
//   - machines (Node, Cluster, Testbed1) — cores, an L2 cache model, a
//     DMA copy engine, multi-port NICs and a TCP-like transport, with
//     per-feature I/OAT acceleration (Features);
//   - applications — the paper's two domains (RunDataCenter, RunPVFS)
//     plus the §5.1 dynamic-content third tier (RunThreeTier) and the
//     §7 intra-node IPC channel (IPCChannel);
//   - experiments (Experiments, RunExperiment) — every figure of the
//     paper's evaluation plus ablations, as runnable benchmarks.
package ioatsim

import (
	"ioatsim/internal/bench"
	"ioatsim/internal/cost"
	"ioatsim/internal/datacenter"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/ipc"
	"ioatsim/internal/mem"
	"ioatsim/internal/metrics"
	"ioatsim/internal/pvfs"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
	"ioatsim/internal/trace"
)

// ---- simulation kernel ----

// Simulator is the deterministic discrete-event loop.
type Simulator = sim.Simulator

// Proc is a blocking simulation process.
type Proc = sim.Proc

// Time is virtual time in nanoseconds since the start of the run.
type Time = sim.Time

// Completion is a one-shot synchronization point (e.g. a DMA transfer).
type Completion = sim.Completion

// NewSimulator returns an empty simulator. Most users want Testbed1 or
// NewCluster instead, which own one.
func NewSimulator() *Simulator { return sim.New() }

// ---- cost model ----

// Params is the calibrated cost model (see internal/cost for every
// constant's derivation).
type Params = cost.Params

// DefaultParams returns the Testbed-1 calibration: 4 cores, 2 MB L2,
// six 1-GbE ports, MTU 1500.
func DefaultParams() *Params { return cost.Default() }

// Byte-size units.
const (
	KB = cost.KB
	MB = cost.MB
	GB = cost.GB
)

// ---- I/OAT features ----

// Features selects which I/OAT capabilities a platform exposes.
type Features = ioat.Features

// NonIOAT returns the traditional configuration (no acceleration).
func NonIOAT() Features { return ioat.None() }

// IOAT returns the paper's kernel configuration: split headers + DMA
// copy engine, multiple receive queues off.
func IOAT() Features { return ioat.Linux() }

// IOATDMAOnly returns the copy engine without split headers (the
// "I/OAT-DMA" configuration of the paper's §4.5).
func IOATDMAOnly() Features { return ioat.DMAOnly() }

// IOATFull returns every feature including multiple receive queues.
func IOATFull() Features { return ioat.Full() }

// Copier is the user-level asynchronous memcpy service (paper §7/§8),
// available on every Node.
type Copier = ioat.Copier

// ---- machines ----

// Node is one simulated machine: cores, cache, engine, NIC, transport.
type Node = host.Node

// Cluster is a set of nodes sharing one simulator.
type Cluster = host.Cluster

// Buffer is a user allocation in a node's simulated memory.
type Buffer = mem.Buffer

// ClusterOption configures a cluster under construction.
type ClusterOption = host.Option

// WithCheck installs the runtime invariant checker on the cluster: the
// run is audited for byte conservation, event causality and cache
// structure, and Cluster.Verify reports the verdict at the end.
func WithCheck() ClusterOption { return host.WithCheck() }

// WithStrictCheck is WithCheck upgraded to fail-fast: the first
// violated invariant panics at the virtual time it happens instead of
// at the end-of-run verdict.
func WithStrictCheck() ClusterOption { return host.WithStrictCheck() }

// ---- fault injection ----

// FaultPlan is a deterministic, seed-derived fault schedule: per-link
// Bernoulli or Gilbert-Elliott frame loss, a periodic drop mask, link
// flap windows, NIC rx-ring overflow and degraded (slowed) nodes. A
// non-nil plan also arms the transport's recovery machinery (RTO with
// exponential backoff, duplicate-ACK fast retransmit). The zero plan
// injects nothing and reproduces a lossless run byte-for-byte.
type FaultPlan = fault.Plan

// ParseFaultSpec parses a CLI-style plan spec such as
// "loss=0.001,flap=10ms/1ms,slow=2@0.5" (see internal/fault for the
// full key list).
func ParseFaultSpec(spec string) (FaultPlan, error) { return fault.ParseSpec(spec) }

// WithFault installs the plan on every node the cluster builds.
func WithFault(plan FaultPlan) ClusterOption { return host.WithFault(plan) }

// ---- observability ----

// Tracer records typed spans and instants from every device into a
// fixed ring and exports Chrome trace-event JSON (Tracer.WriteJSON).
type Tracer = trace.Tracer

// Profiler attributes simulated-CPU busy time to cost-model sites;
// Profiler.Report renders the sorted self-time table.
type Profiler = trace.Profiler

// MetricsRegistry samples time-series metrics (per-core utilization,
// link throughput, cache hit ratio, ...) on a simulated-time tick and
// exports CSV (WriteCSV) or JSON (WriteJSON).
type MetricsRegistry = metrics.Registry

// Observability bundles the optional sinks WithObservability installs.
type Observability = host.Observability

// NewTracer returns a tracer with a ring of n records (n <= 0 picks
// the default capacity).
func NewTracer(n int) *Tracer { return trace.New(n) }

// NewProfiler returns an empty simulated-CPU profiler.
func NewProfiler() *Profiler { return trace.NewProfiler() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *MetricsRegistry { return metrics.New() }

// WithObservability installs the bundle's sinks on the cluster. All
// sinks are optional; devices pay one nil compare per site for any
// sink left out, and installed observers never perturb results.
func WithObservability(o Observability) ClusterOption { return host.WithObservability(o) }

// NewCluster returns an empty cluster with a deterministic RNG.
func NewCluster(p *Params, seed uint64, opts ...ClusterOption) *Cluster {
	return host.NewCluster(p, seed, opts...)
}

// Testbed1 builds the paper's two-node, six-port micro-benchmark
// testbed with the given feature set on both nodes.
func Testbed1(p *Params, feat Features, seed uint64, opts ...ClusterOption) (*Cluster, *Node, *Node) {
	return host.Testbed1(p, feat, seed, opts...)
}

// ---- transport ----

// Conn is one endpoint of a reliable byte-stream connection.
type Conn = tcp.Conn

// Listener accepts inbound connections for a named service.
type Listener = tcp.Listener

// SendOptions modify one Send call (ZeroCopy selects the sendfile path).
type SendOptions = tcp.SendOptions

// Pair establishes a connection between two nodes' stacks on the given
// port indexes without handshake costs.
func Pair(a, b *tcp.Stack, portA, portB int) (*Conn, *Conn) {
	return tcp.Pair(a, b, portA, portB)
}

// ---- applications ----

// DataCenterOptions configure the §5 two-tier data-center.
type DataCenterOptions = datacenter.Options

// DataCenterMetrics report one data-center run.
type DataCenterMetrics = datacenter.Metrics

// ThreeTierOptions configure the dynamic-content extension.
type ThreeTierOptions = datacenter.ThreeTierOptions

// RunDataCenter runs clients -> proxy -> web and reports TPS and CPU.
func RunDataCenter(o DataCenterOptions) DataCenterMetrics {
	return datacenter.RunTwoTier(o)
}

// RunEmulatedClients runs the §5.2.3 emulated-clients setup.
func RunEmulatedClients(o DataCenterOptions, threads int) DataCenterMetrics {
	return datacenter.RunEmulated(o, threads)
}

// RunThreeTier runs the dynamic-content extension: proxy -> app -> db.
func RunThreeTier(o ThreeTierOptions) datacenter.ThreeTierMetrics {
	return datacenter.RunThreeTier(o)
}

// PVFSOptions configure the §6 parallel-file-system benchmark.
type PVFSOptions = pvfs.Options

// PVFSMetrics report one PVFS run.
type PVFSMetrics = pvfs.Metrics

// PVFSSystem is a deployed manager + I/O daemons.
type PVFSSystem = pvfs.System

// PVFSClient is a compute node's client library instance.
type PVFSClient = pvfs.Client

// NewPVFS deploys iods I/O daemons on the server node.
func NewPVFS(server *Node, iods, stripe int) *PVFSSystem {
	return pvfs.New(server, iods, stripe)
}

// NewPVFSClient connects a compute node to a PVFS system.
func NewPVFSClient(p *Proc, node *Node, sys *PVFSSystem) *PVFSClient {
	return pvfs.NewClient(p, node, sys)
}

// RunPVFS runs the pvfs-test concurrent read/write benchmark.
func RunPVFS(o PVFSOptions) PVFSMetrics { return pvfs.Run(o) }

// IPCChannel is the §7 intra-node shared-memory message channel whose
// copies can be offloaded to the engine.
type IPCChannel = ipc.Channel

// NewIPCChannel returns a channel with the given slot size and count.
func NewIPCChannel(n *Node, slotSize, slots int) *IPCChannel {
	return ipc.New(n, slotSize, slots)
}

// ---- experiments ----

// ExperimentConfig scales experiment runs (Scale 1 = paper-sized).
type ExperimentConfig = bench.Config

// ExperimentResult is one reproduced figure.
type ExperimentResult = bench.Result

// Experiment is a registered figure reproduction.
type Experiment = bench.Runner

// Experiments lists every reproducible figure in paper order.
func Experiments() []Experiment { return bench.Experiments() }

// RunExperiment runs one figure by id ("fig3a" .. "extipc").
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, bool) {
	r, ok := bench.Find(id)
	if !ok {
		return nil, false
	}
	return r.Run(cfg), true
}
