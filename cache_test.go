package ioatsim

import (
	"os"
	"testing"

	"ioatsim/internal/bench"
	"ioatsim/internal/sweep"
)

// TestGoldenCorpusWithCache replays the whole corpus through the point
// cache: a cold pass populates it, a warm pass must answer every point
// from it, and both must render byte-identical to the committed golden
// files. This pins the cache's core contract — memoized rows are
// indistinguishable from simulated ones.
func TestGoldenCorpusWithCache(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating corpus")
	}
	if raceEnabled {
		// Two full corpus passes don't fit the default timeout under
		// the race detector on slow hosts; the cache's concurrency is
		// race-audited by the internal/sweep tests and the identity by
		// the non-race run of this test.
		t.Skip("skipping double corpus pass under -race")
	}
	cache := sweep.NewPointCache(t.TempDir())
	cfg := goldenConfig()
	cfg.Cache = cache

	var prevHits, prevMisses uint64
	for _, pass := range []string{"cold", "warm"} {
		for _, r := range bench.Experiments() {
			got := r.Run(cfg).String()
			want, err := os.ReadFile(goldenPath(r.ID))
			if err != nil {
				t.Fatalf("missing golden file (generate with `make golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s pass: %s diverges from the golden corpus:\n%s",
					pass, r.ID, diffLines(string(want), got))
			}
		}
		hits, misses := cache.Stats()
		switch pass {
		case "cold":
			if hits != 0 {
				t.Errorf("cold pass had %d hits in an empty cache", hits)
			}
		case "warm":
			if misses != prevMisses {
				t.Errorf("warm pass computed %d points; every point must come from the cache", misses-prevMisses)
			}
			if hits-prevHits != prevMisses {
				t.Errorf("warm pass hit %d of %d points", hits-prevHits, prevMisses)
			}
		}
		prevHits, prevMisses = hits, misses
	}
}
