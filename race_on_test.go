//go:build race

package ioatsim

// raceEnabled reports whether the race detector is compiled in; heavy
// multi-corpus identity tests use it to stay inside the default test
// timeout on slow hosts.
const raceEnabled = true
