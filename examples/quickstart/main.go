// Quickstart: build the paper's two-node testbed, stream 16 MB across
// one GbE port with and without I/OAT, and compare receiver CPU — the
// paper's core claim in ~40 lines, using only the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"ioatsim"
)

func transfer(feat ioatsim.Features) (mbps, cpu float64) {
	// Two dual-core dual-Xeon nodes with six 1-GbE ports, wired
	// port-to-port — the paper's Testbed 1.
	cluster, sender, receiver := ioatsim.Testbed1(ioatsim.DefaultParams(), feat, 1)

	conn, peer := ioatsim.Pair(sender.Stack, receiver.Stack, 0, 0)
	src := sender.Buf(64 * ioatsim.KB)
	dst := receiver.Buf(64 * ioatsim.KB)

	const total = 16 * ioatsim.MB
	var done ioatsim.Time
	cluster.S.Spawn("sender", func(p *ioatsim.Proc) {
		conn.Send(p, src, total)
	})
	cluster.S.Spawn("receiver", func(p *ioatsim.Proc) {
		peer.Recv(p, dst, total)
		done = p.Now()
	})
	cluster.S.Run()

	elapsed := time.Duration(done)
	return float64(total*8) / elapsed.Seconds() / 1e6, receiver.CPU.Utilization()
}

func main() {
	plainMbps, plainCPU := transfer(ioatsim.NonIOAT())
	ioatMbps, ioatCPU := transfer(ioatsim.IOAT())

	fmt.Println("16 MB bulk transfer over one 1-GbE port:")
	fmt.Printf("  %-10s %8.1f Mbps  receiver CPU %5.2f%%\n", "non-I/OAT", plainMbps, plainCPU*100)
	fmt.Printf("  %-10s %8.1f Mbps  receiver CPU %5.2f%%\n", "I/OAT", ioatMbps, ioatCPU*100)
	rel := (plainCPU - ioatCPU) / plainCPU * 100
	fmt.Printf("same wire speed, %.0f%% relative CPU benefit — the paper's core result\n", rel)
}
