// Pvfs runs the paper's §6 scenario end to end through the public API:
// a striped parallel file system over ramfs, with pvfs-test-style
// concurrent readers and writers, comparing I/OAT and non-I/OAT CPU.
//
//	go run ./examples/pvfs
package main

import (
	"fmt"
	"time"

	"ioatsim"
)

func main() {
	// Part 1: direct use of the client library — create a striped file
	// and read it back.
	cluster := ioatsim.NewCluster(ioatsim.DefaultParams(), 1)
	compute := cluster.Add("compute", ioatsim.IOAT(), 6)
	server := cluster.Add("server", ioatsim.IOAT(), 6)
	sys := ioatsim.NewPVFS(server, 6, 0)

	cluster.S.Spawn("app", func(p *ioatsim.Proc) {
		c := ioatsim.NewPVFSClient(p, compute, sys)
		meta := c.Create(p, "dataset.bin", 12*ioatsim.MB)
		fmt.Printf("created %q: %d bytes striped %dK across %d I/O servers\n",
			meta.Name, meta.Size, meta.Stripe/ioatsim.KB, meta.Servers)

		buf := compute.Buf(12 * ioatsim.MB)
		start := p.Now()
		c.Read(p, meta, 0, meta.Size, buf)
		elapsed := time.Duration(p.Now() - start)
		fmt.Printf("read %d MB in %v (%.0f MB/s across six 1-GbE links)\n\n",
			meta.Size/ioatsim.MB, elapsed.Round(time.Microsecond),
			float64(meta.Size)/elapsed.Seconds()/1e6)
	})
	cluster.S.Run()

	// Part 2: the paper's concurrent-access benchmark, both feature sets.
	fmt.Println("pvfs-test, 6 iods, 6 concurrent clients, 12 MB regions:")
	for _, write := range []bool{false, true} {
		op := "read "
		if write {
			op = "write"
		}
		for _, feat := range []ioatsim.Features{ioatsim.NonIOAT(), ioatsim.IOAT()} {
			m := ioatsim.RunPVFS(ioatsim.PVFSOptions{
				Feat: feat, Seed: 1, IODs: 6, Clients: 6, Write: write,
				Warm: 30 * time.Millisecond, Meas: 120 * time.Millisecond,
			})
			fmt.Printf("  %s %-10s %6.1f MB/s   client CPU %5.1f%%   server CPU %5.1f%%\n",
				op, feat.Label(), m.MBps, m.ClientCPU*100, m.ServerCPU*100)
		}
	}
}
