// Asyncmemcpy demonstrates the user-level asynchronous memory copy the
// paper's §7/§8 proposes as future work: offload a large copy to the
// I/OAT engine, overlap it with computation, and compare against a
// blocking CPU memcpy.
//
//	go run ./examples/asyncmemcpy
package main

import (
	"fmt"
	"time"

	"ioatsim"
)

func main() {
	cluster, node, _ := ioatsim.Testbed1(ioatsim.DefaultParams(), ioatsim.IOAT(), 1)

	const size = 256 * ioatsim.KB
	const compute = 80 * time.Microsecond // work to overlap with the copy

	var syncTotal, asyncTotal ioatsim.Time
	cluster.S.Spawn("app", func(p *ioatsim.Proc) {
		src := node.Buf(size)
		dst := node.Buf(size)

		// Blocking CPU copy, then compute.
		start := p.Now()
		node.Copier.CopySync(p, src.Addr, dst.Addr, size)
		node.CPU.Exec(p, compute)
		syncTotal = p.Now() - start

		// Asynchronous engine copy overlapped with the same compute.
		s2, d2 := node.Buf(size), node.Buf(size)
		node.Copier.Start(p, s2.Addr, d2.Addr, size).Wait(p) // warm pin cache
		start = p.Now()
		done := node.Copier.Start(p, s2.Addr, d2.Addr, size)
		node.CPU.Exec(p, compute) // CPU is free while the engine copies
		done.Wait(p)
		asyncTotal = p.Now() - start
	})
	cluster.S.Run()

	fmt.Printf("copy 256 KB + %v of computation:\n", compute)
	fmt.Printf("  CPU memcpy then compute: %v\n", time.Duration(syncTotal))
	fmt.Printf("  async engine copy overlapped: %v\n", time.Duration(asyncTotal))
	fmt.Printf("  speedup: %.2fx (engine moves data while the CPU computes)\n",
		float64(syncTotal)/float64(asyncTotal))
}
