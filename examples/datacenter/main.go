// Datacenter runs the paper's §5 scenarios end to end: a Zipf-distributed
// static-content workload through a proxy + web-server pair, then the
// dynamic-content three-tier extension — all through the public API.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"time"

	"ioatsim"
)

func main() {
	base := ioatsim.DataCenterOptions{
		P:                ioatsim.DefaultParams(),
		Seed:             1,
		ClientNodes:      16,
		ThreadsPerClient: 4,
		FileCount:        500,
		FileSize:         8 * ioatsim.KB,
		Alpha:            0.9, // Breslau-style document popularity
		Warm:             40 * time.Millisecond,
		Meas:             160 * time.Millisecond,
	}

	fmt.Println("two-tier data-center, 64 clients, Zipf(0.9) over 500 x 8K documents:")
	var plain ioatsim.DataCenterMetrics
	for _, feat := range []ioatsim.Features{ioatsim.NonIOAT(), ioatsim.IOAT()} {
		o := base
		o.Feat = feat
		m := ioatsim.RunDataCenter(o)
		fmt.Printf("  %-10s TPS %8.0f   proxy CPU %5.1f%%   web CPU %5.1f%%\n",
			feat.Label(), m.TPS, m.ProxyCPU*100, m.WebCPU*100)
		if feat == ioatsim.NonIOAT() {
			plain = m
		} else {
			fmt.Printf("  => %.1f%% more transactions with I/OAT\n",
				(m.TPS-plain.TPS)/plain.TPS*100)
		}
	}

	// The same tiers with the proxy content cache enabled: hits bypass
	// the web tier entirely.
	o := base
	o.Feat = ioatsim.IOAT()
	o.CacheBytes = 2 * ioatsim.MB
	m := ioatsim.RunDataCenter(o)
	fmt.Printf("\nwith a 2 MB proxy cache: TPS %8.0f   proxy CPU %5.1f%%   web CPU %5.1f%%\n",
		m.TPS, m.ProxyCPU*100, m.WebCPU*100)
	fmt.Println("(the web tier goes quiet as popular documents pin in the proxy cache)")

	// The §5.1 dynamic-content class over the full three-tier layout.
	fmt.Println("\nthree-tier dynamic content (3 DB queries per request):")
	for _, feat := range []ioatsim.Features{ioatsim.NonIOAT(), ioatsim.IOAT()} {
		to := ioatsim.ThreeTierOptions{Options: base}
		to.Feat = feat
		to.QueriesPerRequest = 3
		tm := ioatsim.RunThreeTier(to)
		fmt.Printf("  %-10s TPS %8.0f   app CPU %5.1f%%   db CPU %5.1f%%\n",
			feat.Label(), tm.TPS, tm.AppCPU*100, tm.DBCPU*100)
	}
}
