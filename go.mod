module ioatsim

go 1.22
