// Command ioatd serves the benchmark suite as a long-running daemon:
// sweep jobs go in over HTTP, run on a bounded worker pool behind an
// admission-controlled queue, and come back as NDJSON result streams or
// polled status documents — every table byte-identical to what
// ioatbench prints for the same configuration. A shared, LRU-bounded
// point cache makes repeated configurations orders of magnitude faster
// than a cold run.
//
// Typical session:
//
//	ioatd -addr :8080 -workers 4 &
//	curl -s localhost:8080/v1/runners | jq .
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"runners":["fig6"],"seed":1,"scale":0.1}' | jq .
//	curl -s localhost:8080/v1/jobs/job-1 | jq -r .results[0].table
//	curl -sN -X POST 'localhost:8080/v1/jobs?stream=1' \
//	    -d '{"runners":["fig3a","fig6"]}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, queued jobs
// are cancelled, in-flight jobs get -drain to finish, then their
// contexts are cancelled and the daemon exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ioatsim/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "HTTP listen address")
		workers = flag.Int("workers", 2, "concurrently running jobs")
		queueN  = flag.Int("queue", 64, "admission queue depth (full queue answers 429)")
		maxSc   = flag.Float64("max-scale", 1.0, "largest accepted job scale")
		retain  = flag.Int("retention", 256, "terminal jobs kept queryable")
		cacheD  = flag.String("pointcache", "", "directory for the persistent point cache (empty: in-process only)")
		cacheN  = flag.Int("cache-entries", 4096, "point cache entry bound (0: unbounded)")
		cacheB  = flag.Int64("cache-bytes", 256<<20, "point cache byte bound (0: unbounded)")
		drain   = flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight jobs")
	)
	flag.Parse()

	srv := serve.New(serve.Options{
		QueueDepth:   *queueN,
		Workers:      *workers,
		MaxScale:     *maxSc,
		Retention:    *retain,
		CacheDir:     *cacheD,
		CacheEntries: *cacheN,
		CacheBytes:   *cacheB,
	})
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "ioatd: listening on %s (%d workers, queue %d)\n",
		*addr, *workers, *queueN)

	select {
	case <-ctx.Done():
		fmt.Fprintf(os.Stderr, "ioatd: draining (deadline %s)\n", *drain)
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "ioatd: %v\n", err)
		os.Exit(1)
	}

	// Stop accepting connections first, then drain the job pool. The
	// HTTP shutdown shares the drain deadline so attached streams can
	// finish alongside their jobs.
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "ioatd: drain deadline exceeded, in-flight jobs aborted\n")
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "ioatd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "ioatd: bye")
}
