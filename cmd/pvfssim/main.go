// Command pvfssim runs the PVFS-over-ramfs benchmark (paper §6): N I/O
// daemons on the server node, concurrent pvfs-test clients on the
// compute node, reads or writes of the paper's 2N-megabyte regions.
//
// Examples:
//
//	pvfssim -iods 6 -clients 6 -ioat   # Fig. 10a's rightmost I/OAT point
//	pvfssim -iods 6 -clients 4 -write  # Fig. 11a write point
//	pvfssim -clients 64 -region 2097152 # Fig. 12-style multi-stream read
package main

import (
	"flag"
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/ioat"
	"ioatsim/internal/pvfs"
)

func main() {
	var (
		useIOAT = flag.Bool("ioat", false, "enable I/OAT on both nodes")
		iods    = flag.Int("iods", 6, "I/O daemons (one per server port)")
		clients = flag.Int("clients", 0, "concurrent clients (default: iods)")
		region  = flag.Int("region", 0, "per-client region bytes (default: 2N MB)")
		write   = flag.Bool("write", false, "measure writes instead of reads")
		meas    = flag.Duration("t", 240*time.Millisecond, "measured (virtual) duration")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	feat := ioat.None()
	if *useIOAT {
		feat = ioat.Linux()
	}
	if *clients == 0 {
		*clients = *iods
	}
	m := pvfs.Run(pvfs.Options{
		P: cost.Default(), Feat: feat, Seed: *seed,
		IODs: *iods, Clients: *clients, Region: *region, Write: *write,
		Meas: *meas,
	})
	op := "read"
	if *write {
		op = "write"
	}
	fmt.Printf("pvfs %s iods=%d clients=%d feat=%s\n", op, *iods, *clients, feat.Label())
	fmt.Printf("bandwidth: %.1f MB/s\n", m.MBps)
	fmt.Printf("CPU: client=%.1f%% server=%.1f%%\n", m.ClientCPU*100, m.ServerCPU*100)
}
