// Command benchcompare diffs two bench.sh reports (BENCH_PR<N>.json)
// and fails on a performance regression.
//
// Usage:
//
//	benchcompare [-max-regress 0.10] OLD.json NEW.json
//
// The reports must be at the same scale (comparing different workload
// sizes is meaningless). Two gates share the budget:
//
//   - wall clock: NEW wall_s may be at most (1+max-regress) times OLD;
//   - throughput: NEW events_per_s may be at most (1+max-regress) times
//     slower than OLD (i.e. new >= old/(1+max-regress)). Wall clock
//     alone can hide an engine regression when the event count shrinks,
//     so per-event throughput is gated too. Skipped when OLD predates
//     the events_per_s field.
//
// Event and proc-switch counts are compared informationally — a change
// there means the simulation itself changed, which timing alone cannot
// judge.
//
// Exit status: 0 comparable and within budget, 1 regression beyond the
// budget, 2 reports unreadable or not comparable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the fields of scripts/bench.sh output that the
// comparison uses; unknown fields are ignored so older reports (without
// warm-cache or scheduler stats) still load.
type report struct {
	PR           int     `json:"pr"`
	Commit       string  `json:"commit"`
	TimestampUTC string  `json:"timestamp_utc"`
	Scale        float64 `json:"scale"`
	WallS        float64 `json:"wall_s"`
	WarmWallS    float64 `json:"warm_wall_s"`
	Events       float64 `json:"events"`
	EventsPerS   float64 `json:"events_per_s"`
	PeakPending  float64 `json:"peak_pending"`
	ProcSwitches float64 `json:"proc_switches"`
}

func load(path string) (report, error) {
	var r report
	blob, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(blob, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	if r.WallS <= 0 {
		return r, fmt.Errorf("%s: no wall_s field (not a bench.sh report?)", path)
	}
	return r, nil
}

// orUnknown substitutes a placeholder for provenance fields that old
// reports lack.
func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

// delta formats the new-vs-old fractional change of a pair of values.
func delta(oldV, newV float64) string {
	if oldV == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", (newV/oldV-1)*100)
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.10,
		"maximum tolerated fractional wall-clock regression (0.10 = 10%)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: benchcompare [-max-regress frac] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldR, err := load(flag.Arg(0))
	if err == nil {
		var newR report
		newR, err = load(flag.Arg(1))
		if err == nil {
			if oldR.Scale != newR.Scale {
				fmt.Fprintf(os.Stderr, "benchcompare: scale mismatch: %v vs %v — not comparable\n",
					oldR.Scale, newR.Scale)
				os.Exit(2)
			}
			// Provenance first: which commits, measured when. Older
			// reports predate the fields and print as "unknown".
			fmt.Printf("%-16s %12s %12s %9s\n", "", flag.Arg(0), flag.Arg(1), "delta")
			fmt.Printf("%-16s %12s %12s\n", "commit", orUnknown(oldR.Commit), orUnknown(newR.Commit))
			fmt.Printf("%-16s %20s %20s\n", "measured", orUnknown(oldR.TimestampUTC), orUnknown(newR.TimestampUTC))
			fmt.Printf("%-16s %12.3f %12.3f %9s\n", "wall_s", oldR.WallS, newR.WallS, delta(oldR.WallS, newR.WallS))
			if oldR.WarmWallS > 0 && newR.WarmWallS > 0 {
				fmt.Printf("%-16s %12.3f %12.3f %9s\n", "warm_wall_s", oldR.WarmWallS, newR.WarmWallS, delta(oldR.WarmWallS, newR.WarmWallS))
			}
			fmt.Printf("%-16s %12.0f %12.0f %9s\n", "events", oldR.Events, newR.Events, delta(oldR.Events, newR.Events))
			fmt.Printf("%-16s %12.0f %12.0f %9s\n", "events_per_s", oldR.EventsPerS, newR.EventsPerS, delta(oldR.EventsPerS, newR.EventsPerS))
			if oldR.PeakPending > 0 || newR.PeakPending > 0 {
				fmt.Printf("%-16s %12.0f %12.0f %9s\n", "peak_pending", oldR.PeakPending, newR.PeakPending, delta(oldR.PeakPending, newR.PeakPending))
			}
			if oldR.ProcSwitches > 0 || newR.ProcSwitches > 0 {
				fmt.Printf("%-16s %12.0f %12.0f %9s\n", "proc_switches", oldR.ProcSwitches, newR.ProcSwitches, delta(oldR.ProcSwitches, newR.ProcSwitches))
			}
			if newR.Events != oldR.Events {
				fmt.Printf("note: event counts differ — the simulation changed, not just its speed\n")
			}
			fail := false
			if limit := oldR.WallS * (1 + *maxRegress); newR.WallS > limit {
				fmt.Fprintf(os.Stderr, "benchcompare: FAIL: wall clock %.3fs exceeds %.3fs (old %.3fs + %.0f%% budget)\n",
					newR.WallS, limit, oldR.WallS, *maxRegress*100)
				fail = true
			}
			// Wall clock alone can mask an engine regression when the
			// workload shrinks, so gate per-event throughput with the same
			// budget — unless the old report predates the field.
			if oldR.EventsPerS > 0 && newR.EventsPerS > 0 {
				if floor := oldR.EventsPerS / (1 + *maxRegress); newR.EventsPerS < floor {
					fmt.Fprintf(os.Stderr, "benchcompare: FAIL: throughput %.0f events/s below %.0f (old %.0f - %.0f%% budget)\n",
						newR.EventsPerS, floor, oldR.EventsPerS, *maxRegress*100)
					fail = true
				}
			} else {
				fmt.Printf("note: events_per_s missing from a report — throughput gate skipped\n")
			}
			if fail {
				os.Exit(1)
			}
			fmt.Printf("OK: within the %.0f%% regression budget\n", *maxRegress*100)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
	os.Exit(2)
}
