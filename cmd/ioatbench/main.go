// Command ioatbench reproduces the paper's tables and figures.
//
// Usage:
//
//	ioatbench              # run every experiment
//	ioatbench -run fig3a   # run one experiment
//	ioatbench -list        # list experiment ids
//	ioatbench -scale 0.25  # shorten runs (shape-preserving)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ioatsim/internal/bench"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run (default: all)")
		list  = flag.Bool("list", false, "list experiment ids and exit")
		scale = flag.Float64("scale", 1.0, "scale factor for run lengths and request counts")
		seed  = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	if *list {
		for _, r := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := bench.Config{Seed: *seed, Scale: *scale}
	runners := bench.Experiments()
	if *run != "" {
		r, ok := bench.Find(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "ioatbench: unknown experiment %q (try -list)\n", *run)
			os.Exit(1)
		}
		runners = []bench.Runner{r}
	}

	for _, r := range runners {
		start := time.Now()
		res := r.Run(cfg)
		fmt.Println(res.String())
		fmt.Printf("(%s ran in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
