// Command ioatbench reproduces the paper's tables and figures.
//
// Usage:
//
//	ioatbench                    # run every experiment
//	ioatbench -run fig3a,fig6    # run selected experiments
//	ioatbench -list              # list experiment ids
//	ioatbench -scale 0.25        # shorten runs (shape-preserving)
//	ioatbench -parallel 0        # auto: one worker per core (default)
//	ioatbench -parallel 1        # strictly sequential
//	ioatbench -check             # audit every run with the invariant checker
//	ioatbench -strict            # fail-fast checking (implies -check)
//	ioatbench -fault loss=0.001  # run under a fault plan (see internal/fault)
//	ioatbench -json              # machine-readable results on stdout
//	ioatbench -pointcache on     # memoize sweep points in testdata/pointcache/
//	ioatbench -pointcache mem    # memoize in-process only (also: a directory path)
//	ioatbench -trace t.json      # record a Chrome/Perfetto trace of the runs
//	ioatbench -metrics m.csv     # sample time-series metrics (.csv or .json)
//	ioatbench -profile-report    # print the simulated-CPU self-time profile
//
// Every simulation point is independent and deterministic, so -parallel
// changes wall-clock time only: the tables are byte-identical at any
// setting.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"ioatsim/internal/bench"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/metrics"
	"ioatsim/internal/sim"
	"ioatsim/internal/sweep"
	"ioatsim/internal/trace"
)

// jsonResult is the machine-readable form of one experiment.
type jsonResult struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	XLabel  string    `json:"xlabel"`
	Columns []string  `json:"columns"`
	Rows    []jsonRow `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
	Millis  float64   `json:"wall_ms"`
}

// jsonRow is one table row: the x value, its label, and the column
// values in column order.
type jsonRow struct {
	X      float64   `json:"x"`
	Label  string    `json:"label,omitempty"`
	Values []float64 `json:"values"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Scale       float64      `json:"scale"`
	Seed        uint64       `json:"seed"`
	Parallel    int          `json:"parallel"`
	Workers     int          `json:"workers"`
	GoMaxProcs  int          `json:"go_maxprocs"`
	NumCPU      int          `json:"num_cpu"`
	Results     []jsonResult `json:"results"`
	WallSeconds float64      `json:"wall_s"`
	CPUSeconds  float64      `json:"experiment_s"`
	Speedup     float64      `json:"speedup"`
	Events      uint64       `json:"events"`
	EventsPerS  float64      `json:"events_per_s"`
	// ProcSwitches counts event-loop-to-goroutine handoffs: wakes that
	// crossed a channel into a parked process goroutine rather than
	// running as continuations on the event loop. Each handoff costs two
	// host context switches, so this is exactly the scheduler overhead
	// the continuation-passing hot loops remove.
	ProcSwitches uint64 `json:"proc_switches"`
	// PeakPending is the deepest scheduler pending-event set any
	// simulation reached — the depth the timing wheel absorbed.
	PeakPending uint64 `json:"peak_pending"`
	// CacheHits/CacheMisses count point-cache lookups (both zero when
	// the cache is off).
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// writeArtifact creates path and streams one observability export into
// it, exiting on any error (a truncated trace is worse than no trace).
func writeArtifact(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioatbench: %v\n", err)
		os.Exit(1)
	}
	werr := write(f)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "ioatbench: writing %s: %v\n", path, werr)
		os.Exit(1)
	}
}

func main() {
	var (
		run      = flag.String("run", "", "comma-separated experiment ids to run (default: all)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		scale    = flag.Float64("scale", 1.0, "scale factor for run lengths and request counts")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		parallel = flag.Int("parallel", 0, "concurrent simulation points (0 = one per core, 1 = sequential)")
		checked  = flag.Bool("check", false, "run under the runtime invariant checker (slower; aborts on violations)")
		strict   = flag.Bool("strict", false, "fail-fast invariant checking: panic at the first violation (implies -check)")
		faultStr = flag.String("fault", "", "fault plan spec, e.g. 'loss=0.001,flap=10ms/1ms,slow=2@0.5' (see internal/fault)")
		jsonOut  = flag.Bool("json", false, "emit machine-readable JSON instead of tables")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")

		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON file of the runs (forces -parallel 1)")
		traceBuf    = flag.Int("trace-buffer", trace.DefaultCapacity, "trace ring capacity in records (oldest dropped on overflow)")
		metricsOut  = flag.String("metrics", "", "write sampled time-series metrics to this file (.json for JSON, CSV otherwise; forces -parallel 1)")
		metricsTick = flag.Duration("metrics-interval", metrics.DefaultInterval, "simulated-time sampling interval for -metrics")
		profReport  = flag.Bool("profile-report", false, "print the simulated-CPU self-time profile after the runs")
		pointcache  = flag.String("pointcache", "", "point-result cache: off, mem (in-process only), on (testdata/pointcache), or a directory; IOATSIM_POINTCACHE supplies the default")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioatbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "ioatbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ioatbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "ioatbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *list {
		// The same table the daemon serves at GET /v1/runners.
		for _, r := range bench.Experiments() {
			fmt.Printf("%-8s %-28s %s\n", r.ID, r.Title, r.Desc)
		}
		return
	}

	// Ctrl-C (or SIGTERM) cancels the run between sweep points: in-flight
	// points finish, nothing new starts, and completed experiments still
	// print before the non-zero exit.
	ctx, stopSignals := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Observability sinks. The tracer and metrics registry record from the
	// running simulation's goroutines, so they require sequential execution
	// (which also keeps the artifacts deterministic); the profiler is
	// atomic and composes with any parallelism.
	var obs host.Observability
	if *traceOut != "" {
		obs.Trace = trace.New(*traceBuf)
	}
	if *metricsOut != "" {
		obs.Metrics = metrics.New()
		obs.MetricsInterval = *metricsTick
	}
	if *profReport {
		obs.Profile = trace.NewProfiler()
	}
	if (obs.Trace != nil || obs.Metrics != nil) && *parallel != 1 {
		fmt.Fprintln(os.Stderr, "ioatbench: -trace/-metrics force -parallel 1")
		*parallel = 1
	}

	// Point-result cache. Each sweep point is memoized under its
	// content-addressed key; with a directory, cached rows survive across
	// invocations at the same configuration and code version. The flag
	// wins over the environment so scripts can force a mode.
	var cache *sweep.PointCache
	mode := *pointcache
	if mode == "" {
		mode = os.Getenv("IOATSIM_POINTCACHE")
	}
	switch mode {
	case "", "off":
	case "mem":
		cache = sweep.NewPointCache("")
	case "on":
		cache = sweep.NewPointCache(filepath.Join("testdata", "pointcache"))
	default:
		cache = sweep.NewPointCache(mode)
	}

	var plan *fault.Plan
	if *faultStr != "" {
		p, err := fault.ParseSpec(*faultStr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ioatbench: -fault: %v\n", err)
			os.Exit(1)
		}
		if p.Seed == 0 {
			p.Seed = *seed
		}
		plan = &p
	}

	cfg := bench.Config{Seed: *seed, Scale: *scale, Parallel: *parallel,
		Check: *checked, Strict: *strict, Fault: plan, Obs: obs, Cache: cache,
		Ctx: ctx}
	runners := bench.Experiments()
	if *run != "" {
		runners = runners[:0:0]
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			r, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "ioatbench: unknown experiment %q (try -list)\n", id)
				os.Exit(1)
			}
			runners = append(runners, r)
		}
		if len(runners) == 0 {
			fmt.Fprintln(os.Stderr, "ioatbench: -run selected no experiments")
			os.Exit(1)
		}
	}

	// Whole figures run concurrently on the same pool discipline as the
	// rows inside each figure; results print in registry order.
	type timed struct {
		res     *bench.Result
		elapsed time.Duration
	}
	start := time.Now()
	ev0 := sim.GlobalExecuted()
	ps0 := sim.GlobalProcSwitches()
	all, runErr := sweep.RunCtx(ctx, *parallel, len(runners), func(i int) timed {
		t0 := time.Now()
		res, err := runners[i].RunContext(cfg)
		if err != nil {
			return timed{}
		}
		return timed{res: res, elapsed: time.Since(t0)}
	})
	wall := time.Since(start)
	results := all[:0:0]
	for _, r := range all {
		if r.res != nil {
			results = append(results, r)
		}
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "ioatbench: interrupted after %d of %d experiments\n",
			len(results), len(runners))
	}
	events := sim.GlobalExecuted() - ev0
	procSwitches := sim.GlobalProcSwitches() - ps0
	eventsPerS := float64(events) / wall.Seconds()

	var cum time.Duration
	for _, r := range results {
		cum += r.elapsed
	}
	speedup := 1.0
	if wall > 0 {
		speedup = cum.Seconds() / wall.Seconds()
	}

	if obs.Trace != nil {
		writeArtifact(*traceOut, obs.Trace.WriteJSON)
		fmt.Fprintf(os.Stderr, "ioatbench: trace: %d records (%d dropped) -> %s\n",
			obs.Trace.Len(), obs.Trace.Dropped(), *traceOut)
	}
	if obs.Metrics != nil {
		writer := obs.Metrics.WriteCSV
		if strings.HasSuffix(*metricsOut, ".json") {
			writer = obs.Metrics.WriteJSON
		}
		writeArtifact(*metricsOut, writer)
		fmt.Fprintf(os.Stderr, "ioatbench: metrics: %d rows -> %s\n",
			len(obs.Metrics.Rows()), *metricsOut)
	}
	if obs.Profile != nil {
		// To stderr so it composes with -json on stdout.
		fmt.Fprint(os.Stderr, obs.Profile.Report())
	}

	var cacheHits, cacheMisses uint64
	if cache != nil {
		cacheHits, cacheMisses = cache.Stats()
		where := "in-process"
		if cache.Dir() != "" {
			where = cache.Dir()
		}
		fmt.Fprintf(os.Stderr, "ioatbench: point cache: %d hits, %d misses (%s)\n",
			cacheHits, cacheMisses, where)
	}

	if *jsonOut {
		report := jsonReport{
			Scale:        *scale,
			Seed:         *seed,
			Parallel:     *parallel,
			Workers:      sweep.Workers(*parallel),
			GoMaxProcs:   runtime.GOMAXPROCS(0),
			NumCPU:       runtime.NumCPU(),
			WallSeconds:  wall.Seconds(),
			CPUSeconds:   cum.Seconds(),
			Speedup:      speedup,
			Events:       events,
			EventsPerS:   eventsPerS,
			ProcSwitches: procSwitches,
			PeakPending:  sim.GlobalPeakPending(),
			CacheHits:    cacheHits,
			CacheMisses:  cacheMisses,
		}
		for _, r := range results {
			s := r.res.Series
			jr := jsonResult{
				ID:      r.res.ID,
				Title:   r.res.Title,
				XLabel:  s.XLabel,
				Columns: s.Columns,
				Notes:   r.res.Notes,
				Millis:  float64(r.elapsed.Microseconds()) / 1e3,
			}
			for _, p := range s.Points {
				row := jsonRow{X: p.X, Label: p.Label}
				for _, c := range s.Columns {
					row.Values = append(row.Values, p.Values[c])
				}
				jr.Rows = append(jr.Rows, row)
			}
			report.Results = append(report.Results, jr)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "ioatbench: %v\n", err)
			os.Exit(1)
		}
		if runErr != nil {
			os.Exit(130)
		}
		return
	}

	for _, r := range results {
		fmt.Println(r.res.String())
		fmt.Printf("(%s ran in %v)\n\n", r.res.ID, r.elapsed.Round(time.Millisecond))
	}
	fmt.Printf("total: %d experiments, %.1fs of experiment time in %.1fs wall (%.1fx, %d workers)\n",
		len(results), cum.Seconds(), wall.Seconds(), speedup, sweep.Workers(*parallel))
	fmt.Printf("events: %d dispatched, %.2fM events/s, %d goroutine handoffs\n",
		events, eventsPerS/1e6, procSwitches)
	if runErr != nil {
		os.Exit(130)
	}
}
