// Command ioatlint is the project's static-analysis multichecker. It
// enforces the simulator's determinism, hot-path allocation, probe
// nil-guard and cache-key contracts at compile time; see
// internal/analysis for what each analyzer rejects and why.
//
// Usage:
//
//	ioatlint [-run name,name] [packages...]
//
// With no packages it checks ./... — every package of the module —
// and exits non-zero if any finding survives suppression. Deliberate
// exceptions are annotated in the source:
//
//	//ioatlint:allow <analyzer>[,<analyzer>] — <reason>
//
// on the offending line or the line above it. The reason is mandatory;
// malformed and unused allow comments are findings themselves (unused
// ones only when the full suite runs, since a partial -run cannot tell
// an unused allow from one aimed at a skipped analyzer).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ioatsim/internal/analysis"
)

func main() {
	runList := flag.String("run", "",
		"comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: ioatlint [-run name,name] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	all := analysis.All()
	if *list {
		for _, a := range all {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := all
	if *runList != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ioatlint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader()
	pkgs, err := loader.Patterns(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioatlint: %v\n", err)
		os.Exit(2)
	}
	idx := analysis.NewIndex(pkgs)
	findings, err := analysis.Lint(pkgs, idx, analyzers, len(analyzers) == len(all))
	if err != nil {
		fmt.Fprintf(os.Stderr, "ioatlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "ioatlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
