// Command ttcp drives the socket micro-benchmarks on the simulated
// Testbed 1, in the style of the ttcp tool the paper uses (§4): choose a
// traffic pattern, port count, message size and feature set, and read
// back goodput and CPU utilization.
//
// Examples:
//
//	ttcp -mode bw -ports 6 -ioat            # Fig. 3a's I/OAT point
//	ttcp -mode bidir -ports 6               # Fig. 3b's non-I/OAT point
//	ttcp -mode multi -threads 12 -msg 16384 # Fig. 4's 12-thread point
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

func main() {
	var (
		mode     = flag.String("mode", "bw", "traffic pattern: bw | bidir | multi")
		ports    = flag.Int("ports", 6, "number of 1-GbE ports (1..6)")
		threads  = flag.Int("threads", 0, "streams for -mode multi (default: ports)")
		msgSize  = flag.Int("msg", 64*cost.KB, "message size in bytes")
		useIOAT  = flag.Bool("ioat", false, "enable I/OAT (split headers + DMA copy engine)")
		rss      = flag.Bool("rss", false, "also enable multiple receive queues")
		sockbuf  = flag.Int("sockbuf", 256*cost.KB, "socket buffer bytes")
		mtu      = flag.Int("mtu", 1500, "MTU in bytes")
		tso      = flag.Bool("tso", false, "enable transmit segmentation offload")
		duration = flag.Duration("t", 200*time.Millisecond, "measured (virtual) duration")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if *ports < 1 || *ports > 6 {
		fmt.Fprintln(os.Stderr, "ttcp: ports must be 1..6")
		os.Exit(1)
	}

	p := cost.Default()
	p.SockBuf = *sockbuf
	p.MTU = *mtu
	p.TSO = *tso

	feat := ioat.None()
	if *useIOAT {
		feat = ioat.Linux()
	}
	if *rss {
		feat.MultiQueue = true
	}

	cl, a, b := host.Testbed1(p, feat, *seed)
	nstreams := *ports
	if *mode == "multi" && *threads > 0 {
		nstreams = *threads
	}

	launch := func(from, to *host.Node, port int) {
		ca, cb := tcp.Pair(from.Stack, to.Stack, port, port)
		src := from.Buf(min(*msgSize, 256*cost.KB))
		dst := to.Buf(min(*msgSize, 256*cost.KB))
		from.CPU.RegisterThread()
		to.CPU.RegisterThread()
		cl.S.Spawn("tx", func(pr *sim.Proc) {
			for {
				ca.Send(pr, src, *msgSize)
			}
		})
		cl.S.Spawn("rx", func(pr *sim.Proc) {
			for {
				cb.Recv(pr, dst, *msgSize)
			}
		})
	}

	switch *mode {
	case "bw":
		for i := 0; i < *ports; i++ {
			launch(a, b, i)
		}
	case "bidir":
		for i := 0; i < *ports; i++ {
			launch(a, b, i)
			launch(b, a, i)
		}
	case "multi":
		for i := 0; i < nstreams; i++ {
			launch(a, b, i%*ports)
		}
	default:
		fmt.Fprintf(os.Stderr, "ttcp: unknown mode %q\n", *mode)
		os.Exit(1)
	}

	warm := *duration / 4
	cl.S.RunUntil(sim.Time(warm))
	cl.ResetMeters()
	markB := b.Stack.BytesReceived
	markA := a.Stack.BytesReceived
	cl.S.RunUntil(sim.Time(warm + *duration))

	rx := b.Stack.BytesReceived - markB
	if *mode == "bidir" {
		rx += a.Stack.BytesReceived - markA
	}
	mbps := float64(rx*8) / duration.Seconds() / 1e6
	fmt.Printf("mode=%s ports=%d streams=%d msg=%d feat=%s\n",
		*mode, *ports, nstreams, *msgSize, feat.Label())
	fmt.Printf("goodput: %.1f Mbps\n", mbps)
	fmt.Printf("CPU: node1=%.1f%% node2=%.1f%% (node2 rx-core0 %.1f%%)\n",
		a.CPU.Utilization()*100, b.CPU.Utilization()*100, b.CPU.CoreUtilization(0)*100)
}
