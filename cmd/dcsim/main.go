// Command dcsim runs the two-tier data-center simulation (paper §5):
// closed-loop clients -> Apache-like proxy -> static web tier, with the
// tiers' I/OAT features switchable and single-file or Zipf workloads.
//
// Examples:
//
//	dcsim -size 4096 -ioat            # Fig. 8a's Trace 2 I/OAT point
//	dcsim -files 1000 -alpha 0.9      # Fig. 8b's Zipf point
//	dcsim -emulated 256 -size 16384   # Fig. 9's 256-thread point
package main

import (
	"flag"
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/datacenter"
	"ioatsim/internal/ioat"
)

func main() {
	var (
		useIOAT  = flag.Bool("ioat", false, "enable I/OAT on the server tiers")
		nodes    = flag.Int("clients", 16, "client machines")
		threads  = flag.Int("threads", 4, "request threads per client machine")
		files    = flag.Int("files", 1, "catalog size")
		size     = flag.Int("size", 4*cost.KB, "file size in bytes")
		alpha    = flag.Float64("alpha", 0, "Zipf exponent (0 = single-file trace)")
		cache    = flag.Int("cache", 0, "proxy content cache bytes (0 = off)")
		emulated = flag.Int("emulated", 0, "run the emulated-clients setup with N threads instead")
		meas     = flag.Duration("t", 240*time.Millisecond, "measured (virtual) duration")
		seed     = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	feat := ioat.None()
	if *useIOAT {
		feat = ioat.Linux()
	}
	o := datacenter.Options{
		P: cost.Default(), Feat: feat, Seed: *seed,
		ClientNodes: *nodes, ThreadsPerClient: *threads,
		FileCount: *files, FileSize: *size, Alpha: *alpha,
		CacheBytes: *cache, Meas: *meas,
	}

	if *emulated > 0 {
		m := datacenter.RunEmulated(o, *emulated)
		fmt.Printf("emulated clients=%d size=%d feat=%s\n", *emulated, *size, feat.Label())
		fmt.Printf("TPS: %.0f (%d completed)\n", m.TPS, m.Completed)
		fmt.Printf("CPU: client=%.1f%% web=%.1f%%\n", m.ClientCPU*100, m.WebCPU*100)
		return
	}

	m := datacenter.RunTwoTier(o)
	fmt.Printf("two-tier clients=%dx%d files=%d size=%d alpha=%.2f feat=%s\n",
		*nodes, *threads, *files, *size, *alpha, feat.Label())
	fmt.Printf("TPS: %.0f (%d completed)\n", m.TPS, m.Completed)
	fmt.Printf("CPU: proxy=%.1f%% web=%.1f%%\n", m.ProxyCPU*100, m.WebCPU*100)
}
