GO ?= go

.PHONY: all build vet test race golden fuzz-smoke bench-smoke bench sim-bench profile clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-audit the whole tree, including the parallel sweep runner.
race:
	$(GO) test -race ./...

# Regenerate the golden corpus (testdata/golden/) from the current
# simulator output. Review the diff before committing: every changed
# number is a claim that the simulation intentionally changed.
golden:
	$(GO) test . -run 'TestGoldenCorpus$$' -update

# Short fuzz pass over the transport segmentation and cache invariants;
# CI runs this on every push.
fuzz-smoke:
	$(GO) test ./internal/tcp -run '^$$' -fuzz FuzzTCPSegmentation -fuzztime 15s
	$(GO) test ./internal/mem -run '^$$' -fuzz FuzzCacheAccessRange -fuzztime 15s

# A fast end-to-end pass over every experiment: shapes only, tiny scale.
bench-smoke: build
	$(GO) run ./cmd/ioatbench -scale 0.05 -parallel 0

# Full benchmark run: sequential wall-clock + events/sec, BENCH_PR3.json.
bench:
	./scripts/bench.sh

# Hot-path microbenchmarks: event core, cache model, end-to-end packet
# path. allocs/op must be 0 on every steady-state path.
sim-bench:
	$(GO) test -bench='BenchmarkSchedule|BenchmarkRunHotLoop' -benchmem -run='^$$' ./internal/sim/
	$(GO) test -bench='BenchmarkAccessRange|BenchmarkAccessLines|BenchmarkInvalidate' -benchmem -run='^$$' ./internal/mem/
	$(GO) test -bench='BenchmarkSteadyStatePacketPath' -benchmem -run='^$$' ./internal/tcp/

# CPU + allocation profiles of the heaviest workload (the fig10 app-level
# sweep) at benchmark scale; inspect with `go tool pprof`.
profile: build
	$(GO) run ./cmd/ioatbench -scale 0.25 -parallel 0 -run fig10a,fig10b \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof"

clean:
	$(GO) clean ./...
	rm -f BENCH_PR1.json BENCH_PR3.json cpu.pprof mem.pprof
