GO ?= go

.PHONY: all build vet lint allocbudget test race golden fuzz-smoke bench-smoke trace-smoke fault-smoke serve-smoke bench bench-compare sim-bench profile clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static contract checks: determinism (no wall clock, no map-order or
# goroutine nondeterminism in simulation packages), hot-path allocation
# discipline, nil-guarded probe access, and cache-key completeness.
# See DESIGN.md §4i; suppress single findings with
# `//ioatlint:allow <analyzer> — <reason>`.
lint:
	$(GO) run ./cmd/ioatlint ./...

# Heap-escape budget: compiler escape analysis over the hot-path
# packages diffed against testdata/lint/escape_allowlist.txt. A new
# escape fails; regenerate the allowlist with
# `scripts/allocbudget.sh -update` after justifying the allocation.
allocbudget:
	./scripts/allocbudget.sh

test:
	$(GO) test ./...

# Race-audit the whole tree, including the parallel sweep runner.
race:
	$(GO) test -race ./...

# Regenerate the golden corpus (testdata/golden/) from the current
# simulator output. Review the diff before committing: every changed
# number is a claim that the simulation intentionally changed.
golden:
	$(GO) test . -run 'TestGoldenCorpus$$' -update

# Short fuzz pass over the transport segmentation, loss recovery, cache
# and scheduler invariants; CI runs this on every push.
fuzz-smoke:
	$(GO) test ./internal/tcp -run '^$$' -fuzz FuzzTCPSegmentation -fuzztime 15s
	$(GO) test ./internal/tcp -run '^$$' -fuzz FuzzTCPLossRecovery -fuzztime 15s
	$(GO) test ./internal/mem -run '^$$' -fuzz FuzzCacheAccessRange -fuzztime 15s
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzSchedulerOrdering -fuzztime 15s

# Fault-plane smoke: the loss sweep under strict fail-fast checking, plus
# the benign-plan differential (a non-nil all-zero plan must reproduce
# the golden corpus byte-for-byte).
fault-smoke: build
	$(GO) run ./cmd/ioatbench -run fault_loss -scale 0.05 -strict >/dev/null
	$(GO) test . -run 'TestBenignFaultPlanDifferential'
	$(GO) test ./internal/tcp -run 'TestLossyStreamStrict|TestZeroPlanInert'
	@echo "fault-smoke OK"

# Daemon smoke: boot ioatd, run a golden-config job over HTTP (the
# served table must match testdata/golden/), hit the shared point cache
# on a resubmit, and drain cleanly on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# A fast end-to-end pass over every experiment: shapes only, tiny scale.
bench-smoke: build
	$(GO) run ./cmd/ioatbench -scale 0.05 -parallel 0

# A tiny traced+metered run of fig6: the trace JSON and metrics CSV must
# be non-empty and well-formed, and the export schema tests must pass.
trace-smoke: build
	$(GO) run ./cmd/ioatbench -run fig6 -scale 0.05 \
		-trace trace-smoke.json -metrics trace-smoke.csv -profile-report >/dev/null
	test -s trace-smoke.json && test -s trace-smoke.csv
	$(GO) test . -run 'TestTraceSmoke|TestTraceExportSchema'
	@rm -f trace-smoke.json trace-smoke.csv
	@echo "trace-smoke OK"

# Full benchmark run: sequential wall-clock + events/sec, writing
# BENCH_PR<N>.json at the repo root (see scripts/bench.sh).
bench:
	./scripts/bench.sh

# Gate NEW against OLD: non-zero exit if the sequential wall clock
# regressed by more than 10% (override with MAX_REGRESS).
OLD ?= BENCH_PR6.json
NEW ?= BENCH_PR8.json
MAX_REGRESS ?= 0.10
bench-compare:
	$(GO) run ./cmd/benchcompare -max-regress $(MAX_REGRESS) $(OLD) $(NEW)

# Hot-path microbenchmarks: event core, context resume cost (goroutine
# handoff vs continuation), cache model, end-to-end packet path.
# allocs/op must be 0 on every steady-state path.
sim-bench:
	$(GO) test -bench='BenchmarkSchedule|BenchmarkRunHotLoop|BenchmarkProcResume|BenchmarkTaskResume' -benchmem -run='^$$' ./internal/sim/
	$(GO) test -bench='BenchmarkAccessRange|BenchmarkAccessLines|BenchmarkInvalidate' -benchmem -run='^$$' ./internal/mem/
	$(GO) test -bench='BenchmarkSteadyStatePacketPath' -benchmem -run='^$$' ./internal/tcp/

# CPU + allocation profiles of the heaviest workload (the fig10 app-level
# sweep) at benchmark scale; inspect with `go tool pprof`.
profile: build
	$(GO) run ./cmd/ioatbench -scale 0.25 -parallel 0 -run fig10a,fig10b \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof"

clean:
	$(GO) clean ./...
	rm -f BENCH_PR*.json cpu.pprof mem.pprof trace-smoke.json trace-smoke.csv
