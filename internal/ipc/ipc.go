// Package ipc models intra-node inter-process communication through a
// shared-memory ring, the other use the paper's §7 proposes for the copy
// engine: "the asynchronous copy engine can also be used ... to improve
// the communication performance between two processes within the same
// node". Messages are copied producer-buffer -> ring -> consumer-buffer,
// either by the CPU (through the cache) or by the I/OAT engine.
package ipc

import (
	"ioatsim/internal/host"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
)

// Mode selects who moves the bytes.
type Mode int

const (
	// CPUCopy moves messages with memcpy through the cache.
	CPUCopy Mode = iota
	// EngineCopy offloads both ring copies to the I/OAT engine,
	// overlapping them with the processes' other work.
	EngineCopy
)

// Channel is a unidirectional shared-memory message channel between two
// processes on one node.
type Channel struct {
	Node *host.Node
	Mode Mode

	ring  mem.Buffer
	slots int
	slot  int

	queue *sim.Chan[message]
	// credit bounds the in-flight messages to the ring capacity.
	credit *sim.Resource

	// Messages and Bytes count delivered traffic.
	Messages int64
	Bytes    int64
}

type message struct {
	slotAddr mem.Addr
	n        int
	// done fires when the payload is in the ring (engine mode).
	done *sim.Completion
}

// New returns a channel with the given per-message slot size and slot
// count, allocated in the node's address space.
func New(n *host.Node, slotSize, slots int) *Channel {
	if slotSize <= 0 || slots <= 0 {
		panic("ipc: bad ring geometry")
	}
	return &Channel{
		Node:   n,
		ring:   n.Mem.Space.Alloc(slotSize*slots, 0),
		slots:  slots,
		queue:  sim.NewChan[message](n.S),
		credit: sim.NewResource(n.S, slots),
	}
}

// SlotSize returns the maximum message size.
func (ch *Channel) SlotSize() int { return ch.ring.Size / ch.slots }

// Send publishes n bytes from src. It blocks for ring space and for the
// CPU portion of the copy; in engine mode the producer resumes as soon
// as the transfer is programmed.
func (ch *Channel) Send(p *sim.Proc, src mem.Buffer, n int) {
	if n > ch.SlotSize() {
		panic("ipc: message exceeds slot size")
	}
	ch.credit.Acquire(p)
	slotAddr := ch.ring.Addr + mem.Addr((ch.slot%ch.slots)*ch.SlotSize())
	ch.slot++

	m := message{slotAddr: slotAddr, n: n}
	switch ch.Mode {
	case CPUCopy:
		ch.Node.CPU.Exec(p, ch.Node.Mem.CopyCost(src.Addr, slotAddr, n))
	case EngineCopy:
		ch.Node.CPU.Exec(p, ch.Node.DMA.SetupCost(n))
		m.done = ch.Node.DMA.Submit(src.Addr, slotAddr, n)
	}
	ch.queue.Send(m)
}

// Recv delivers the next message into dst and returns its size. It
// blocks until a message is available and moved; in engine mode the
// consumer waits on the engine instead of burning CPU.
func (ch *Channel) Recv(p *sim.Proc, dst mem.Buffer) int {
	m, ok := ch.queue.Recv(p)
	if !ok {
		panic("ipc: channel closed")
	}
	if m.done != nil {
		m.done.Wait(p) // inbound half still in flight
	}
	switch ch.Mode {
	case CPUCopy:
		ch.Node.CPU.Exec(p, ch.Node.Mem.CopyCost(m.slotAddr, dst.Addr, m.n))
	case EngineCopy:
		ch.Node.CPU.Exec(p, ch.Node.DMA.SetupCost(m.n))
		ch.Node.DMA.Submit(m.slotAddr, dst.Addr, m.n).Wait(p)
	}
	ch.credit.Release()
	ch.Messages++
	ch.Bytes += int64(m.n)
	return m.n
}
