package ipc

import (
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
)

func newNode() (*host.Cluster, *host.Node) {
	cl := host.NewCluster(cost.Default(), 1)
	return cl, cl.Add("n", ioat.Linux(), 1)
}

func TestDelivery(t *testing.T) {
	cl, n := newNode()
	ch := New(n, 64*cost.KB, 8)
	src := n.Buf(64 * cost.KB)
	dst := n.Buf(64 * cost.KB)
	var got []int
	cl.S.Spawn("producer", func(p *sim.Proc) {
		for _, sz := range []int{100, 4 * cost.KB, 64 * cost.KB} {
			ch.Send(p, src, sz)
		}
	})
	cl.S.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(p, dst))
		}
	})
	cl.S.Run()
	want := []int{100, 4 * cost.KB, 64 * cost.KB}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if ch.Messages != 3 || ch.Bytes != int64(100+4*cost.KB+64*cost.KB) {
		t.Fatalf("stats: %d msgs, %d bytes", ch.Messages, ch.Bytes)
	}
}

func TestBackpressure(t *testing.T) {
	cl, n := newNode()
	ch := New(n, 4*cost.KB, 2)
	src := n.Buf(4 * cost.KB)
	dst := n.Buf(4 * cost.KB)
	var thirdSentAt, firstRecvAt sim.Time = -1, -1
	cl.S.Spawn("producer", func(p *sim.Proc) {
		ch.Send(p, src, 4*cost.KB)
		ch.Send(p, src, 4*cost.KB)
		ch.Send(p, src, 4*cost.KB) // must wait for the consumer
		thirdSentAt = p.Now()
	})
	cl.S.Spawn("consumer", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		firstRecvAt = p.Now()
		for i := 0; i < 3; i++ {
			ch.Recv(p, dst)
		}
	})
	cl.S.Run()
	if thirdSentAt < firstRecvAt {
		t.Fatalf("third send at %v before consumer started at %v — ring unbounded",
			thirdSentAt, firstRecvAt)
	}
}

func TestEngineModeFreesProducerCPU(t *testing.T) {
	// Producer-side CPU for a 64K message: engine mode pays setup only.
	run := func(mode Mode) time.Duration {
		cl, n := newNode()
		ch := New(n, 64*cost.KB, 8)
		ch.Mode = mode
		src := n.Buf(64 * cost.KB)
		dst := n.Buf(64 * cost.KB)
		var producerCPU time.Duration
		cl.S.Spawn("producer", func(p *sim.Proc) {
			start := n.CPU.BusyTime()
			for i := 0; i < 16; i++ {
				ch.Send(p, src, 64*cost.KB)
			}
			producerCPU = n.CPU.BusyTime() - start
		})
		cl.S.Spawn("consumer", func(p *sim.Proc) {
			for i := 0; i < 16; i++ {
				ch.Recv(p, dst)
			}
		})
		cl.S.Run()
		return producerCPU
	}
	// Note: BusyTime includes the consumer's concurrent work, so compare
	// whole-run CPU, which is dominated by the copies.
	if run(EngineCopy) >= run(CPUCopy) {
		t.Fatal("engine mode did not reduce CPU")
	}
}

func TestThroughputPipelines(t *testing.T) {
	// With a deep ring, engine-mode messages pipeline: total time for N
	// messages approaches N * transferTime, not N * (2 transfers).
	cl, n := newNode()
	ch := New(n, 64*cost.KB, 16)
	ch.Mode = EngineCopy
	src := n.Buf(64 * cost.KB)
	dst := n.Buf(64 * cost.KB)
	const N = 32
	var done sim.Time
	cl.S.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < N; i++ {
			ch.Send(p, src, 64*cost.KB)
		}
	})
	cl.S.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < N; i++ {
			ch.Recv(p, dst)
		}
		done = p.Now()
	})
	cl.S.Run()
	perMsg := n.DMA.TransferTime(64 * cost.KB)
	// 2 engine transfers per message on one engine: the floor is 2N
	// transfer times; allow 30% overhead.
	floor := time.Duration(2*N) * perMsg
	if time.Duration(done) > floor*13/10 {
		t.Fatalf("32 messages took %v, floor %v — not pipelining", time.Duration(done), floor)
	}
}

func TestOversizeMessagePanics(t *testing.T) {
	cl, n := newNode()
	ch := New(n, 4*cost.KB, 2)
	_ = cl
	defer func() {
		if recover() == nil {
			t.Fatal("oversize message did not panic")
		}
	}()
	// Calling Send outside a proc is fine up to the panic point.
	ch.Send(nil, n.Buf(8*cost.KB), 8*cost.KB)
}
