package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotpathAlloc enforces the 0 allocs/op contract on functions annotated
// //ioat:hotpath (the steady-state packet path: wheel scheduling,
// process/task wakes, chunk delivery, NIC rx, transport steps, DMA
// completion, batched cache pricing). It rejects the constructs that
// heap-allocate: capturing closures and method values, &T{...} /
// new / make / map and slice literals, interface boxing of non-pointer
// values, allocating string operations, and calls to functions that are
// neither //ioat:hotpath themselves nor demonstrably allocation-free.
// Unannotated callees in loaded module packages are summarized (their
// bodies walked transitively); callees the run did not load must be
// annotated so their contract is checked somewhere.
//
// Two escapes are deliberate: plain value composite literals and append
// are allowed, because the engine's arenas and free-lists rely on them
// (amortized-zero growth of recycled storage); scripts/allocbudget.sh
// backstops those with real compiler escape analysis, and the
// BenchmarkSteadyStatePacketPath 0 allocs/op gate backstops everything.
// Two statement classes are also exempt: guard blocks ending in panic
// (they price out failure, not the steady state) and blocks dominated
// by a non-nil check of an optional instrumentation hook (checker,
// tracer, metrics, fault plane) — the benchmarked configuration is
// exactly the one where those hooks are nil.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "forbid allocating constructs in //ioat:hotpath functions " +
		"(the 0 allocs/op packet-path benchmark, made structural)",
	Run: runHotpathAlloc,
}

// allocPkgs are standard-library packages whose package-level functions
// allocate in all but exotic cases. Methods are exempt (accessors on
// value types like time.Duration never allocate).
var allocPkgs = map[string]bool{
	"fmt": true, "errors": true, "strings": true, "strconv": true,
	"sort": true, "bytes": true, "bufio": true, "io": true, "os": true,
	"log": true, "reflect": true, "regexp": true, "context": true,
	"encoding/json": true, "encoding/gob": true, "encoding/binary": true,
	"math/big": true, "net": true, "net/http": true, "time": true,
}

// hotpathChecker carries one package's summarization state: its
// function bodies by FuncID (for walking unannotated callees) and a
// memo of their summaries. Checkers are cached per package on the
// Index, so a callee summarized from several callers is walked once.
type hotpathChecker struct {
	pkg   *Package
	idx   *Index
	decls map[string]*ast.FuncDecl
	memo  map[string]*allocSummary
}

// allocSummary records whether a function body directly or transitively
// contains an allocating construct.
type allocSummary struct {
	allocates bool
	what      string
	pos       token.Pos
	inFlight  bool // cycle guard: treated as clean while being computed
}

// checkerFor returns the (cached) summarizer for pkg.
func checkerFor(idx *Index, pkg *Package) *hotpathChecker {
	if c, ok := idx.hotCheckers[pkg.Path]; ok {
		return c
	}
	c := &hotpathChecker{
		pkg:   pkg,
		idx:   idx,
		decls: map[string]*ast.FuncDecl{},
		memo:  map[string]*allocSummary{},
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					c.decls[FuncID(fn)] = fd
				}
			}
		}
	}
	idx.hotCheckers[pkg.Path] = c
	return c
}

func runHotpathAlloc(pass *Pass) error {
	if pass.Index == nil {
		return nil
	}
	c := checkerFor(pass.Index, pass.Pkg)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !HasHotpathMarker(fd.Doc) {
				continue
			}
			c.walk(fd, fd.Body, func(pos token.Pos, what string) {
				pass.Reportf(pos, "%s", what)
			})
		}
	}
	return nil
}

// walk visits one annotated function body (or, in summary mode, any
// body) and reports each allocating construct through emit. It skips
// guard blocks that terminate in panic, blocks dominated by a non-nil
// instrumentation-hook check, and does not descend into nested function
// literals (the literal itself is judged instead).
func (c *hotpathChecker) walk(fd *ast.FuncDecl, body *ast.BlockStmt, emit func(token.Pos, string)) {
	info := c.pkg.Info
	// callFuns collects expressions in call position, so a method-value
	// selector that is immediately invoked is not mistaken for a bound
	// closure being materialized.
	callFuns := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			callFuns[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if blockPanics(n.Body) {
				// Cold failure guard: visit the condition and any else
				// arm, skip the panicking body.
				ast.Inspect(n.Cond, visit)
				if n.Else != nil {
					ast.Inspect(n.Else, visit)
				}
				return false
			}
			if c.isHookGuard(n.Cond) {
				// Instrumented-only block: it runs when an optional
				// observability/checker hook is installed, which is
				// precisely not the state the 0 allocs/op benchmark
				// measures. probeguard keeps the guard itself honest.
				if n.Init != nil {
					ast.Inspect(n.Init, visit)
				}
				if n.Else != nil {
					ast.Inspect(n.Else, visit)
				}
				return false
			}
		case *ast.GoStmt:
			emit(n.Pos(), "go statement in a hot path spawns a goroutine (and its closure allocates)")
			return false
		case *ast.FuncLit:
			if capt := capturedVar(info, fd, n); capt != "" {
				emit(n.Pos(), fmt.Sprintf(
					"closure captures %q and allocates per call: pre-bind the continuation "+
						"(package-level func + ScheduleArg, or a method value stored at construction)", capt))
			}
			return false // judged as a whole; body runs outside this path's budget
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					emit(n.Pos(), "&composite literal escapes to the heap: recycle from a pool or arena instead")
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				emit(n.Pos(), "map literal allocates: hoist the map to construction time")
			case *types.Slice:
				emit(n.Pos(), "slice literal allocates a backing array: hoist it to construction time")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !isConst(info, n) {
				if t := info.TypeOf(n); t != nil && isString(t) {
					emit(n.Pos(), "string concatenation allocates: format outside the hot path")
				}
			}
		case *ast.SelectorExpr:
			if sel := info.Selections[n]; sel != nil && sel.Kind() == types.MethodVal && !callFuns[ast.Expr(n)] {
				emit(n.Pos(), "method value allocates a bound closure: store it once at construction")
			}
		case *ast.CallExpr:
			c.checkCall(fd, n, emit)
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					c.checkBox(info.TypeOf(n.Lhs[i]), n.Rhs[i], emit)
				}
			}
		case *ast.ReturnStmt:
			if sig, ok := info.TypeOf(fd.Name).(*types.Signature); ok &&
				sig.Results() != nil && len(n.Results) == sig.Results().Len() {
				for i, res := range n.Results {
					c.checkBox(sig.Results().At(i).Type(), res, emit)
				}
			}
		}
		return true
	}
	ast.Inspect(body, visit)
}

// checkCall judges one call inside a hot function: builtin allocators,
// allocating conversions, interface-boxing arguments, and callees that
// are neither annotated nor provably clean.
func (c *hotpathChecker) checkCall(fd *ast.FuncDecl, call *ast.CallExpr, emit func(token.Pos, string)) {
	info := c.pkg.Info
	// Type conversions: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		if src != nil && !isConst(info, call.Args[0]) {
			if (isString(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isString(src)) {
				emit(call.Pos(), "string<->slice conversion copies and allocates")
			}
		}
		c.checkBox(dst, call.Args[0], emit)
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "new":
				emit(call.Pos(), "new(T) allocates: recycle from a pool or arena instead")
			case "make":
				emit(call.Pos(), "make allocates: hoist the container to construction time")
			}
			return
		}
	}
	// Interface-boxing arguments, for any call form with a known
	// signature (including dynamic and func-value calls).
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok && !call.Ellipsis.IsValid() {
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
			case i < sig.Params().Len():
				pt = sig.Params().At(i).Type()
			}
			c.checkBox(pt, arg, emit)
		}
	}
	fn := staticCallee(info, call)
	if fn == nil {
		return // func value: judged where the value was built
	}
	// Dynamic dispatch: the probe/observability hooks are interface
	// calls that only run in instrumented builds; the static contract
	// binds their guards (probeguard), not their bodies.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && types.IsInterface(s.Recv()) {
			return
		}
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return
	}
	if strings.HasPrefix(pkg.Path(), ModulePath+"/") || pkg.Path() == ModulePath {
		id := FuncID(fn)
		if c.idx.Hotpath[id] {
			return // annotated: checked on its own
		}
		if callee := c.idx.Pkg(pkg.Path()); callee != nil {
			if sum := checkerFor(c.idx, callee).summarize(id); sum.allocates {
				emit(call.Pos(), fmt.Sprintf(
					"call to %s, which is not //ioat:hotpath and allocates (%s at %s): "+
						"annotate and fix it, or hoist the call off the hot path",
					id, sum.what, c.pkg.Fset.Position(sum.pos)))
			}
			return
		}
		emit(call.Pos(), fmt.Sprintf(
			"call to %s.%s, which is not annotated //ioat:hotpath and whose package "+
				"is not loaded in this run: annotate the callee so its allocation "+
				"contract is checked too",
			pkg.Path(), fn.Name()))
		return
	}
	if allocPkgs[pkg.Path()] && isPackageFunc(fn) {
		emit(call.Pos(), fmt.Sprintf("%s.%s allocates: hoist it off the hot path", pkg.Path(), fn.Name()))
	}
}

// summarize reports whether the unannotated function with the given
// FuncID contains an allocating construct, directly or through further
// unannotated calls. Cycles are treated as clean while unwinding.
func (c *hotpathChecker) summarize(id string) *allocSummary {
	if sum, ok := c.memo[id]; ok {
		return sum
	}
	sum := &allocSummary{inFlight: true}
	c.memo[id] = sum
	if fd, ok := c.decls[id]; ok {
		c.walk(fd, fd.Body, func(pos token.Pos, what string) {
			if !sum.allocates {
				sum.allocates = true
				sum.what = what
				sum.pos = pos
			}
		})
	}
	sum.inFlight = false
	return sum
}

// checkBox reports arg if assigning it to a slot of type dst boxes a
// non-pointer-shaped value into an interface. Pointers, channels, maps
// and funcs are pointer-shaped (the interface word holds them
// directly); constants are backed by static data; neither allocates.
func (c *hotpathChecker) checkBox(dst types.Type, arg ast.Expr, emit func(token.Pos, string)) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	if _, ok := dst.(*types.TypeParam); ok {
		return
	}
	info := c.pkg.Info
	src := info.TypeOf(arg)
	if src == nil || types.IsInterface(src) || isConst(info, arg) {
		return
	}
	switch u := src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: the interface word holds it directly
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return
		}
	}
	emit(arg.Pos(), fmt.Sprintf(
		"boxing a %s into %s allocates: pass a pooled pointer instead", src, dst))
}

// hotpathHookPtr extends the probe-guard pointer set for the purposes
// of the instrumented-block exemption: the invariant checker, the
// metrics instruments and the fault plan are also optional hooks whose
// nil (disabled) state is the one the benchmark measures.
var hotpathHookPtr = map[string]bool{
	ModulePath + "/internal/check.Checker":        true,
	ModulePath + "/internal/fault.Plan":           true,
	ModulePath + "/internal/metrics.TimeWeighted": true,
	ModulePath + "/internal/metrics.Histogram":    true,
}

// isHookGuard reports whether cond guarantees an optional
// instrumentation hook (observability, probe, fault, metrics or checker
// pointer/interface) is non-nil: a `x != nil` comparison on a hook
// type, or a conjunction with such a comparison on either side. A block
// dominated by such a guard only executes in instrumented runs.
func (c *hotpathChecker) isHookGuard(cond ast.Expr) bool {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			return c.isHookGuard(e.X) || c.isHookGuard(e.Y)
		case token.NEQ:
			var x ast.Expr
			switch {
			case isNilIdent(e.Y):
				x = e.X
			case isNilIdent(e.X):
				x = e.Y
			default:
				return false
			}
			t := c.pkg.Info.TypeOf(x)
			if t == nil {
				return false
			}
			if guardedTypeName(t) != "" {
				return true
			}
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Pkg() != nil {
					return hotpathHookPtr[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
				}
			}
		}
	}
	return false
}

// capturedVar returns the name of a variable the literal captures from
// the enclosing function, or "" if it captures nothing (a capture-free
// literal compiles to a static func value and is allocation-free).
func capturedVar(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	found := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			found = v.Name()
		}
		return true
	})
	return found
}

// blockPanics reports whether the block's final statement is a direct
// panic call — the shape of a cold validation guard.
func blockPanics(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
