package analysis

import (
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment. Grammar (README
// "Static contracts" section documents it for users):
//
//	//ioatlint:allow <analyzer>[,<analyzer>...] — <reason>
//
// The comment suppresses matching findings on its own line and on the
// line immediately below it (so it can trail the flagged statement or
// sit on its own line above). The em dash may be written "—", "--" or
// "-". An empty reason or empty analyzer list is malformed; an allow
// that suppresses nothing is reported as unused when the full suite
// runs.
const allowPrefix = "//ioatlint:allow"

// allowEntry is one parsed suppression comment.
type allowEntry struct {
	pos       token.Position
	analyzers []string
	reason    string
	malformed string // non-empty: why the comment failed to parse
	used      bool
}

// allowSet indexes a package's allow comments by file:line.
type allowSet struct {
	byLine map[string][]*allowEntry
	all    []*allowEntry
}

// parseAllow splits one comment's text into analyzers and reason.
func parseAllow(text string) (analyzers []string, reason string, malformed string) {
	rest := strings.TrimPrefix(text, allowPrefix)
	if rest == text {
		return nil, "", "" // not an allow comment
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", "missing space after " + allowPrefix
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", "missing analyzer name and reason"
	}
	for _, name := range strings.Split(fields[0], ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, "", "empty analyzer name in list"
		}
		analyzers = append(analyzers, name)
	}
	rest = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	for _, sep := range []string{"—", "--", "-"} {
		if cut, ok := strings.CutPrefix(rest, sep); ok {
			rest = strings.TrimSpace(cut)
			break
		}
	}
	if rest == "" {
		return nil, "", "missing reason: write //ioatlint:allow <analyzer> — <why this exception is sound>"
	}
	return analyzers, rest, ""
}

// collectAllows parses every allow comment in the package.
func collectAllows(pkg *Package) *allowSet {
	s := &allowSet{byLine: map[string][]*allowEntry{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				analyzers, reason, malformed := parseAllow(c.Text)
				e := &allowEntry{
					pos:       pkg.Fset.Position(c.Pos()),
					analyzers: analyzers,
					reason:    reason,
					malformed: malformed,
				}
				s.all = append(s.all, e)
				if malformed != "" {
					continue
				}
				// The comment covers its own line (trailing form) and
				// the next line (preceding form).
				for _, line := range []int{e.pos.Line, e.pos.Line + 1} {
					key := lineKey(e.pos.Filename, line)
					s.byLine[key] = append(s.byLine[key], e)
				}
			}
		}
	}
	return s
}

func lineKey(file string, line int) string {
	// Line numbers are bounded by file size; a rune far outside any
	// source text keeps the join unambiguous.
	return file + "\x00" + itoa(line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// suppress reports whether a finding from the named analyzer at pos is
// covered by an allow comment, marking the comment used.
func (s *allowSet) suppress(analyzer string, pos token.Position) bool {
	for _, e := range s.byLine[lineKey(pos.Filename, pos.Line)] {
		for _, name := range e.analyzers {
			if name == analyzer {
				e.used = true
				return true
			}
		}
	}
	return false
}

// problems returns findings for malformed and (optionally) unused allow
// comments, attributed to the pseudo-analyzer "ioatlint".
func (s *allowSet) problems(checkUnused bool) []Finding {
	var out []Finding
	for _, e := range s.all {
		switch {
		case e.malformed != "":
			out = append(out, Finding{Analyzer: "ioatlint", Pos: e.pos,
				Message: "malformed allow comment: " + e.malformed})
		case checkUnused && !e.used:
			out = append(out, Finding{Analyzer: "ioatlint", Pos: e.pos,
				Message: "unused allow comment (suppresses nothing); delete it or fix the analyzer list"})
		}
	}
	return out
}
