package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages with the stdlib source
// importer, sharing one FileSet and one import cache across loads so a
// dependency (including the standard library) is type-checked at most
// once per process.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with an empty cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// Patterns expands go package patterns (e.g. "./...") and loads every
// matched package. Test files are not loaded: the determinism and
// allocation contracts bind the simulator itself, while tests are free
// to use wall clocks, goroutines and unseeded randomness.
func (l *Loader) Patterns(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list -json: %v", err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := l.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Dir loads the non-test .go files of one directory as the package with
// the given import path. The path need not match the directory's
// location — the fixture harness uses this to type-check testdata
// packages as if they were the real internal packages the analyzers
// key on.
func (l *Loader) Dir(dir, pkgpath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var files []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		files = append(files, m)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	return l.check(pkgpath, dir, files)
}

// check parses and type-checks one package.
func (l *Loader) check(pkgpath, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(pkgpath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", pkgpath, err)
	}
	return &Package{
		Path:  pkgpath,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
