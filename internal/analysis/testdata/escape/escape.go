// Package escape is a deliberate heap-escape fixture for the
// allocbudget.sh regression test: Leak forces its local to the heap, so
// running the script over this package against an empty allowlist must
// fail and name this file. It lives under testdata so ./... never
// builds it; the test names the import path explicitly.
package escape

// sink keeps the escaping pointer reachable so the compiler cannot
// stack-allocate it.
var sink *int

// Leak allocates: n is moved to the heap because its address outlives
// the call.
func Leak(n int) *int {
	x := n
	sink = &x
	return sink
}
