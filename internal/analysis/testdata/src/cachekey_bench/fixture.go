// Package bench is the cachekey fixture for the Config contract. The
// test loads it as ioatsim/internal/bench so the path gate fires; the
// exclusion set is the real one (Parallel, Check, Strict, Obs, Cache,
// Ctx), so this Config declares every excluded name.
package bench

type Config struct {
	Seed     int64
	Scale    float64
	Parallel int
	Check    bool // want `Config.Check is consumed by Config.key AND listed in the exclusion set`
	Strict   bool
	Obs      int
	Cache    *int
	Ctx      any
	Extra    string // want `Config.Extra is not consumed by Config.key and not in the exclusion set`
	//ioatlint:allow cachekey — fixture: deliberate exception, exercised by the suppression test
	Legacy int

	hidden int // unexported: not part of the contract
}

func (c Config) key(kind string) string {
	_ = c.Seed
	_ = c.Scale
	_ = c.Check
	_ = c.hidden
	return kind
}
