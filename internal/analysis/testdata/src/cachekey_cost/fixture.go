// Package cost is the cachekey fixture for the Params encodability
// contract: figures pass *Params wholesale into sweep.Key, so every
// exported field must survive the canonical reflection encoder.
package cost

import "time"

type Params struct {
	MTU      int
	Window   time.Duration
	Names    []string
	Nested   inner          // want `Params.Nested contains a map`
	Weights  map[string]int // want `Params.Weights contains a map`
	Hook     func()         // want `Params.Hook contains a func value`
	Signal   chan int       // want `Params.Signal contains a channel`
	Opaque   any            // want `Params.Opaque contains an interface`
	internal map[int]int    // unexported: the reflection walk skips it
}

// inner shows that the walk descends into exported struct fields.
type inner struct {
	Deep map[string]bool
}
