// Package hotfixture is the hotpathalloc fixture: annotated functions
// exercising each rejected construct, the accepted patterns, and the
// suppression form.
package hotfixture

import (
	"fmt"

	"ioatsim/internal/check"
	"ioatsim/internal/sim"
)

type item struct {
	n    int
	next *item
}

type pool struct {
	free  []*item
	obs   *sink
	names map[string]int
}

// sink stands in for an observability hook; it is not one of the
// recognized hook types, so guarding on it does not exempt a block.
type sink struct{ calls int }

func (s *sink) hit() { s.calls++ }

//ioat:hotpath
func (p *pool) badConstructs(n int, name string) {
	x := &item{n: n} // want `&composite literal escapes to the heap`
	_ = x
	m := map[string]int{"a": 1} // want `map literal allocates`
	_ = m
	s := []int{1, 2, 3} // want `slice literal allocates a backing array`
	_ = s
	y := new(item) // want `new\(T\) allocates`
	_ = y
	b := make([]byte, n) // want `make allocates`
	_ = b
	lbl := "item:" + name // want `string concatenation allocates`
	_ = lbl
	go p.badConstructs(n, name) // want `go statement in a hot path spawns a goroutine`
}

//ioat:hotpath
func badClosure(n int) func() int {
	return func() int { return n } // want `closure captures "n" and allocates per call`
}

//ioat:hotpath
func (p *pool) badMethodValue() func() {
	return p.refill // want `method value allocates a bound closure`
}

//ioat:hotpath
func (p *pool) badBoxing(n int) {
	var a any
	a = n // want `boxing a int into`
	_ = a
}

// helper is unannotated and allocates; annotated callers are told so.
func (p *pool) helper() *item {
	return &item{}
}

//ioat:hotpath
func (p *pool) badCallee() *item {
	return p.helper() // want `which is not //ioat:hotpath and allocates`
}

//ioat:hotpath
func badUnloaded() uint64 {
	return sim.GlobalExecuted() // want `whose package is not loaded in this run`
}

//ioat:hotpath
func badStdlib(n int) {
	fmt.Println(n) // want `fmt.Println allocates` `boxing a int into`
}

// refill is the accepted pool pattern: append and value literals are
// allowed (amortized arena growth), and the refill allocation carries a
// suppression with its justification.
//
//ioat:hotpath
func (p *pool) refill() {
	if len(p.free) == 0 {
		//ioatlint:allow hotpathalloc — fixture pool refill: amortized to zero by recycling
		p.free = append(p.free, &item{})
	}
}

// goodPatterns collects the accepted shapes: panic guards, hook-guarded
// instrumentation, pointer and constant boxing, capture-free literals,
// value composites, calls to clean same-package helpers.
//
//ioat:hotpath
func (p *pool) goodPatterns(n int, x *item) {
	if n < 0 {
		panic(fmt.Sprintf("hotfixture: negative count %d", n))
	}
	if o := obsOf(p); o != nil {
		lbl := "hot:" + itoa(n) // instrumented-only: exempt
		_ = lbl
	}
	var a any
	a = x   // pointer-shaped: no boxing allocation
	a = 42  // constant: static backing
	a = nil // untyped nil
	_ = a
	v := item{n: n} // value composite stays on the stack
	_ = v
	p.free = append(p.free, x) // append is the arena idiom
	f := func() {}             // capture-free literal is a static func value
	f()
	_ = clean(n)
}

// obsOf returns a recognized hook type so the guard above is exempt.
func obsOf(p *pool) *check.Checker { return nil }

func clean(n int) int { return n * 2 }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
