// Package bench is the cachekey fixture for the missing-key-method
// diagnostic: a Config with no key cannot form cache identities at all.
package bench

type Config struct { // want `bench.Config has no key method`
	Seed int64
}
