// Package sim is the simdeterminism fixture. The test loads it under
// the engine's real import path so the path-gated analyzer fires; the
// expectations are analysistest-style `// want` comments.
package sim

import (
	"math/rand" // want `import of math/rand in a simulation package`
	"time"
)

// counts is ranged over both illegally and with a suppression below.
var counts = map[string]int{"a": 1, "b": 2}

func wallClock() time.Duration {
	t0 := time.Now()             // want `time.Now reads the host clock`
	time.Sleep(time.Millisecond) // want `time.Sleep reads the host clock`
	return time.Since(t0)        // want `time.Since reads the host clock`
}

func draw() int { return rand.Intn(6) }

func sum() int {
	total := 0
	for _, v := range counts { // want `range over a map iterates in nondeterministic order`
		total += v
	}
	return total
}

// sumAllowed is the accepted suppression form: the reason records why
// iteration order provably cannot affect the result.
func sumAllowed() int {
	total := 0
	//ioatlint:allow simdeterminism — integer sums are commutative; iteration order cannot affect the result
	for _, v := range counts {
		total += v
	}
	return total
}

func spawn() {
	go sum() // want `raw go statement in a simulation package`
}

func spawnAllowed() {
	go draw() //ioatlint:allow simdeterminism — fixture: trailing-form suppression, hand-off is deterministic by construction
}

// virtualOK is the accepted pattern: durations as plain values, method
// calls on time.Duration, no host clock.
func virtualOK(d time.Duration) float64 { return d.Seconds() }
