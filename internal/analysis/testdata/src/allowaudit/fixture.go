// Package allowaudit is the fixture for the suppression grammar audit:
// malformed allow comments are findings, and valid ones that suppress
// nothing are reported as unused when the full suite runs.
package allowaudit

//ioatlint:allow
func missingEverything() {}

//ioatlint:allow simdeterminism
func missingReason() {}

//ioatlint:allow simdeterminism — suppresses nothing on this line or the next
func unused() {}
