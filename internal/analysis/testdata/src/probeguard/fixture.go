// Package host is the probeguard fixture. The test loads it under a
// real determinism-set import path (outside the guarded types' defining
// packages) so the dominance analysis fires on the real hook types.
package host

import (
	"ioatsim/internal/fault"
	"ioatsim/internal/trace"
)

type node struct {
	obs *trace.Obs
	nf  *fault.NICFault
}

func unguarded(n *node) int64 {
	_ = n.obs.Pid            // want `selector on possibly-nil ioatsim/internal/trace.Obs`
	return n.nf.DroppedBytes // want `selector on possibly-nil ioatsim/internal/fault.NICFault`
}

func guarded(n *node) int64 {
	if n.obs != nil {
		_ = n.obs.Pid
	}
	if n.nf == nil {
		return 0
	}
	return n.nf.DroppedBytes
}

func guardedConjunction(n *node, hot bool) {
	if n.obs != nil && hot {
		_ = n.obs.Pid
	}
}

// reassigned shows that facts are per-expression: copying the guarded
// pointer into a fresh variable requires that variable's own check.
func reassigned(n *node, other *trace.Obs) int32 {
	if n.obs == nil {
		return 0
	}
	_ = n.obs.Pid
	o := n.obs
	_ = o.Pid // want `selector on possibly-nil ioatsim/internal/trace.Obs`
	return 0
}

// closureNeedsOwnCheck: a guard outside a closure does not dominate the
// closure body, which may run long after the hook was torn down.
func closureNeedsOwnCheck(n *node) func() {
	if n.obs == nil {
		return nil
	}
	return func() {
		_ = n.obs.Pid // want `selector on possibly-nil ioatsim/internal/trace.Obs`
	}
}

// allowed is the suppression form: the reason records the installation
// invariant that makes the unguarded use sound.
func allowed(n *node) int64 {
	//ioatlint:allow probeguard — fixture: hook installed unconditionally at construction in this scenario
	return n.nf.DroppedBytes
}
