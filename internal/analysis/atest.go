package analysis

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// RunFixture type-checks the fixture directory as the package with the
// given import path, runs the analyzer (with suppression filtering),
// and compares the surviving findings against `// want "regexp"`
// expectations in the fixture source — the analysistest convention:
//
//	_ = time.Now() // want `time\.Now reads the host clock`
//
// Each expectation must be matched by a finding on its line, and each
// finding must be matched by an expectation. Multiple back-quoted or
// quoted patterns may follow one want comment.
//
// Fixture loads share one process-wide loader so the (expensive) first
// source-import of the standard library is paid once per test binary.
func RunFixture(t *testing.T, a *Analyzer, dir, pkgpath string) {
	t.Helper()
	pkg, err := fixtureLoader.Dir(dir, pkgpath)
	if err != nil {
		t.Fatalf("loading fixture %s as %s: %v", dir, pkgpath, err)
	}
	pkgs := []*Package{pkg}
	findings, err := Lint(pkgs, NewIndex(pkgs), []*Analyzer{a}, false)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	checkExpectations(t, pkg, findings)
}

// fixtureLoader is shared across fixture runs (see RunFixture).
var fixtureLoader = NewLoader()

// wantRe matches one expectation pattern after a `// want` marker:
// back-quoted or double-quoted.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// expectation is one `// want` pattern at a file:line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// checkExpectations diffs findings against the fixture's want comments.
func checkExpectations(t *testing.T, pkg *Package, findings []Finding) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(c.Text[idx+len("// want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	for _, f := range findings {
		if exp := matchWant(wants, f); exp != nil {
			exp.matched = true
		} else {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, exp := range wants {
		if !exp.matched {
			t.Errorf("%s:%d: no finding matched want %q", exp.file, exp.line, exp.pattern)
		}
	}
}

// matchWant finds an unmatched expectation on the finding's line whose
// pattern matches its message.
func matchWant(wants []*expectation, f Finding) *expectation {
	for _, exp := range wants {
		if !exp.matched && exp.file == f.Pos.Filename && exp.line == f.Pos.Line &&
			exp.pattern.MatchString(f.Message) {
			return exp
		}
	}
	return nil
}

// FormatFindings renders findings one per line for test failure output.
func FormatFindings(findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}
