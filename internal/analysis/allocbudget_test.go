package analysis_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test working directory")
		}
		dir = parent
	}
}

func runAllocBudget(t *testing.T, root, allowlist string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(root, "scripts", "allocbudget.sh"), args...)
	cmd.Dir = root
	cmd.Env = append(os.Environ(), "ALLOWLIST="+allowlist)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("allocbudget.sh did not run: %v\n%s", err, out)
	}
	return string(out), ee.ExitCode()
}

// TestAllocBudgetCatchesEscape seeds a deliberate heap escape (the
// testdata/escape fixture) and asserts the script fails against an
// empty allowlist, naming the escape site — the regression the script
// exists to catch. It then regenerates the allowlist from the same
// output and asserts the check passes, proving failure came from the
// diff, not the harness.
func TestAllocBudgetCatchesEscape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the compiler; skipped in -short")
	}
	root := repoRoot(t)
	allowlist := filepath.Join(t.TempDir(), "allowlist.txt")
	if err := os.WriteFile(allowlist, []byte("# empty baseline\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	const pkg = "ioatsim/internal/analysis/testdata/escape"

	out, code := runAllocBudget(t, root, allowlist, pkg)
	if code != 1 {
		t.Fatalf("empty allowlist: want exit 1, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "escape.go") || !strings.Contains(out, "moved to heap") {
		t.Fatalf("failure output does not name the seeded escape site:\n%s", out)
	}

	out, code = runAllocBudget(t, root, allowlist, "-update", pkg)
	if code != 0 {
		t.Fatalf("-update: want exit 0, got %d\n%s", code, out)
	}
	out, code = runAllocBudget(t, root, allowlist, pkg)
	if code != 0 {
		t.Fatalf("after -update: want exit 0, got %d\n%s", code, out)
	}
	if !strings.Contains(out, "0 new") {
		t.Fatalf("clean run did not report zero new escapes:\n%s", out)
	}
}

// TestAllocBudgetRealTree runs the committed allowlist against the real
// hot-path packages: the tree must introduce no escapes the allowlist
// does not know about.
func TestAllocBudgetRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the compiler; skipped in -short")
	}
	root := repoRoot(t)
	out, code := runAllocBudget(t, root, filepath.Join(root, "testdata", "lint", "escape_allowlist.txt"))
	if code != 0 {
		t.Fatalf("committed allowlist: want exit 0, got %d\n%s", code, out)
	}
}
