package analysis

import (
	"go/ast"
	"go/types"
	"sort"
)

// CacheKey turns the point-cache reflection gate tests into a
// compile-time diagnostic. Two contracts:
//
//   - bench.Config: every exported field must either be consumed by
//     Config.key (a selector on the receiver inside the method body) or
//     appear in CacheKeyExclude with a recorded justification. A new
//     field that silently stays out of the key makes distinct
//     configurations collide in the point cache — the worst kind of
//     wrong-answer bug.
//   - cost.Params: every exported field must be canonically encodable
//     by sweep.Key's reflection walk (figures pass the whole *Params as
//     a key part, so fields are consumed wholesale). A map, func, chan
//     or interface field would panic the encoder or hash
//     nondeterministically.
var CacheKey = &Analyzer{
	Name: "cachekey",
	Doc: "require every exported bench.Config field to be consumed by " +
		"Config.key or explicitly excluded, and every cost.Params field to " +
		"stay canonically encodable (the PointCache reflection gate, made structural)",
	Run: runCacheKey,
}

// CacheKeyExclude is the explicit exclusion set: exported bench.Config
// fields that deliberately stay out of the point-cache key because they
// change how a run executes or what it records, never what the tables
// say. Every entry carries its justification; the golden/parallel tests
// pin the corresponding runtime property.
var CacheKeyExclude = map[string]string{
	"Parallel": "worker count never changes point results (TestParallelDeterminism)",
	"Check":    "invariant checking observes, never steers (golden corpus runs checked)",
	"Strict":   "fail-fast variant of Check; same observer-only property",
	"Obs":      "observability sinks record, never steer (TestTraceDisabledByteIdentity)",
	"Cache":    "the cache itself cannot feed its own key",
	"Ctx":      "cancellation aborts between points; finished tables are unchanged",
}

func runCacheKey(pass *Pass) error {
	switch pass.Pkg.Path {
	case ModulePath + "/internal/bench":
		checkConfigKey(pass)
	case ModulePath + "/internal/cost":
		checkParamsEncodable(pass)
	}
	return nil
}

// checkConfigKey verifies the consumed-or-excluded contract on the
// exported fields of bench.Config.
func checkConfigKey(pass *Pass) {
	cfgDecl := findStruct(pass, "Config")
	if cfgDecl == nil {
		return
	}
	keyFields, keyFound := keyConsumedFields(pass)
	if !keyFound {
		pass.Reportf(cfgDecl.Pos(),
			"bench.Config has no key method: the point cache cannot form content-addressed identities")
		return
	}
	declared := map[string]bool{}
	for _, field := range cfgDecl.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			declared[name.Name] = true
			consumed := keyFields[name.Name]
			_, excluded := CacheKeyExclude[name.Name]
			switch {
			case consumed && excluded:
				pass.Reportf(name.Pos(),
					"Config.%s is consumed by Config.key AND listed in the exclusion set: "+
						"remove it from analysis.CacheKeyExclude", name.Name)
			case !consumed && !excluded:
				pass.Reportf(name.Pos(),
					"Config.%s is not consumed by Config.key and not in the exclusion set: "+
						"distinct configs will collide in the point cache — hash it in Config.key, "+
						"or record why it cannot affect results in analysis.CacheKeyExclude",
					name.Name)
			}
		}
	}
	// A stale exclusion (field renamed or deleted) is reported once, on
	// the struct, in deterministic order.
	var stale []string
	for name := range CacheKeyExclude {
		if !declared[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		pass.Reportf(cfgDecl.Pos(),
			"exclusion set entry %q matches no exported Config field: remove it from analysis.CacheKeyExclude", name)
	}
}

// keyConsumedFields collects the receiver-field names Config.key reads.
func keyConsumedFields(pass *Pass) (map[string]bool, bool) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "key" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			recvType := pass.Pkg.Info.TypeOf(fd.Recv.List[0].Type)
			if ptr, ok := recvType.(*types.Pointer); ok {
				recvType = ptr.Elem()
			}
			named, ok := recvType.(*types.Named)
			if !ok || named.Obj().Name() != "Config" {
				continue
			}
			var recvVar types.Object
			if len(fd.Recv.List[0].Names) == 1 {
				recvVar = pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
			}
			used := map[string]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && recvVar != nil &&
					pass.Pkg.Info.Uses[id] == recvVar {
					used[sel.Sel.Name] = true
				}
				return true
			})
			return used, true
		}
	}
	return nil, false
}

// checkParamsEncodable verifies every exported cost.Params field holds
// a type sweep.Key's canonical encoder supports.
func checkParamsEncodable(pass *Pass) {
	paramsDecl := findStruct(pass, "Params")
	if paramsDecl == nil {
		return
	}
	for _, field := range paramsDecl.Fields.List {
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			t := pass.Pkg.Info.TypeOf(field.Type)
			if bad := unencodable(t, map[types.Type]bool{}); bad != "" {
				pass.Reportf(name.Pos(),
					"Params.%s contains %s, which the point-cache canonical encoder cannot hash "+
						"deterministically (sweep.Key panics on it): use scalars, strings, structs or slices",
					name.Name, bad)
			}
		}
	}
}

// unencodable returns a description of the first sub-type the canonical
// encoder rejects, or "".
func unencodable(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return "an unsafe.Pointer"
		}
		return ""
	case *types.Map:
		return "a map (iteration order is nondeterministic)"
	case *types.Signature:
		return "a func value"
	case *types.Chan:
		return "a channel"
	case *types.Interface:
		return "an interface (dynamic type is not part of the hash)"
	case *types.Pointer:
		return unencodable(u.Elem(), seen)
	case *types.Slice:
		return unencodable(u.Elem(), seen)
	case *types.Array:
		return unencodable(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue // the reflection walk reads exported fields only
			}
			if bad := unencodable(f.Type(), seen); bad != "" {
				return bad
			}
		}
		return ""
	}
	return ""
}

// findStruct returns the AST struct type declared under the given name.
func findStruct(pass *Pass, name string) *ast.StructType {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					return st
				}
			}
		}
	}
	return nil
}
