package analysis

import (
	"strings"
	"testing"
)

// The fixture tests load each testdata/src directory under a chosen
// module import path (so path-gated analyzers fire) and diff findings
// against the fixtures' `// want` expectations. Every analyzer has at
// least one caught violation and one accepted suppression.

func TestSimDeterminismFixture(t *testing.T) {
	RunFixture(t, SimDeterminism, "testdata/src/simdeterminism", ModulePath+"/internal/sim")
}

func TestHotpathAllocFixture(t *testing.T) {
	RunFixture(t, HotpathAlloc, "testdata/src/hotpathalloc", ModulePath+"/internal/hotfixture")
}

func TestProbeGuardFixture(t *testing.T) {
	RunFixture(t, ProbeGuard, "testdata/src/probeguard", ModulePath+"/internal/host")
}

func TestCacheKeyConfigFixture(t *testing.T) {
	RunFixture(t, CacheKey, "testdata/src/cachekey_bench", ModulePath+"/internal/bench")
}

func TestCacheKeyNoKeyMethodFixture(t *testing.T) {
	RunFixture(t, CacheKey, "testdata/src/cachekey_nokey", ModulePath+"/internal/bench")
}

func TestCacheKeyParamsFixture(t *testing.T) {
	RunFixture(t, CacheKey, "testdata/src/cachekey_cost", ModulePath+"/internal/cost")
}

// TestAllowAudit checks the suppression grammar's own diagnostics:
// malformed comments are always findings; an allow that suppresses
// nothing is reported only when the full suite runs (checkUnused).
func TestAllowAudit(t *testing.T) {
	pkg, err := fixtureLoader.Dir("testdata/src/allowaudit", ModulePath+"/internal/allowaudit")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pkgs := []*Package{pkg}
	findings, err := Lint(pkgs, NewIndex(pkgs), All(), true)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	var malformed, unused int
	for _, f := range findings {
		switch {
		case strings.Contains(f.Message, "malformed allow comment"):
			malformed++
		case strings.Contains(f.Message, "unused allow comment"):
			unused++
		default:
			t.Errorf("unexpected finding: %s", f)
		}
	}
	if malformed != 2 || unused != 1 {
		t.Errorf("got %d malformed + %d unused findings, want 2 + 1:\n%s",
			malformed, unused, FormatFindings(findings))
	}

	// A partial run cannot distinguish an unused allow from one aimed
	// at a skipped analyzer, so only malformed comments survive.
	findings, err = Lint(pkgs, NewIndex(pkgs), []*Analyzer{SimDeterminism}, false)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, f := range findings {
		if strings.Contains(f.Message, "unused allow comment") {
			t.Errorf("unused-allow finding on a partial run: %s", f)
		}
	}
}

// TestParseAllow pins the grammar corner cases directly.
func TestParseAllow(t *testing.T) {
	cases := []struct {
		text      string
		analyzers string
		reason    string
		malformed bool
	}{
		{"//ioatlint:allow probeguard — hook installed at construction", "probeguard", "hook installed at construction", false},
		{"//ioatlint:allow a,b -- two analyzers, ascii dash", "a,b", "two analyzers, ascii dash", false},
		{"//ioatlint:allow cachekey - single dash", "cachekey", "single dash", false},
		{"//ioatlint:allow", "", "", true},
		{"//ioatlint:allow probeguard", "", "", true},
		{"//ioatlint:allowprobeguard — glued", "", "", true},
	}
	for _, c := range cases {
		analyzers, reason, malformed := parseAllow(c.text)
		if (malformed != "") != c.malformed {
			t.Errorf("parseAllow(%q): malformed = %q, want malformed=%v", c.text, malformed, c.malformed)
			continue
		}
		if c.malformed {
			continue
		}
		if got := strings.Join(analyzers, ","); got != c.analyzers {
			t.Errorf("parseAllow(%q): analyzers = %q, want %q", c.text, got, c.analyzers)
		}
		if reason != c.reason {
			t.Errorf("parseAllow(%q): reason = %q, want %q", c.text, reason, c.reason)
		}
	}
}

// TestRealTreeClean runs the full suite over the actual module — the
// same invocation `make lint` gates CI on — and requires zero findings.
func TestRealTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader := NewLoader()
	pkgs, err := loader.Patterns("ioatsim/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	idx := NewIndex(pkgs)
	findings, err := Lint(pkgs, idx, All(), true)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	if len(findings) > 0 {
		t.Errorf("the tree must lint clean; findings:\n%s", FormatFindings(findings))
	}
	if len(idx.Hotpath) == 0 {
		t.Error("no //ioat:hotpath annotations found: the steady-state path must be annotated")
	}
}
