// Package analysis implements ioatlint, the project's static-analysis
// suite. It enforces, at compile time, the contracts the simulator
// otherwise enforces only at run time:
//
//   - simdeterminism: simulation packages must be reproducible — no wall
//     clock, no global math/rand, no map-iteration order, no raw
//     goroutines outside the whitelisted sweep worker pool (the golden
//     corpus is the runtime counterpart);
//   - hotpathalloc: functions annotated //ioat:hotpath must not contain
//     allocating constructs (the 0 allocs/op packet-path benchmark is
//     the runtime counterpart);
//   - probeguard: selectors on nullable observability/fault pointers
//     must be dominated by a nil check (the "disabled = one nil
//     compare" guarantee);
//   - cachekey: every exported bench.Config field must be consumed by
//     Config.key or listed in the exclusion set, and every cost.Params
//     field must stay canonically encodable (the PR 6 reflection gate
//     tests are the runtime counterpart).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is self-contained on the standard
// library: packages are loaded with `go list` and type-checked with the
// stdlib source importer, so the linter builds with no dependencies
// beyond the Go toolchain.
//
// # Suppression
//
// A finding is suppressed by an allow comment on the flagged line or on
// the line immediately above it:
//
//	//ioatlint:allow <analyzer>[,<analyzer>...] — <reason>
//
// The separator may be "—", "--" or "-"; the reason is mandatory, so
// every deliberate exception is visible and auditable in the source. A
// malformed or unused allow comment is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the import-path prefix of the repository. The analyzers
// key their package sets and type names off it.
const ModulePath = "ioatsim"

// HotpathMarker is the doc-comment annotation that opts a function into
// hotpathalloc checking.
const HotpathMarker = "//ioat:hotpath"

// determinismPkgs lists the packages (relative to ModulePath) whose
// code feeds simulated outcomes or exported results, and must therefore
// be deterministic. internal/rng is deliberately absent: it is the
// sanctioned seeded wrapper around math/rand. internal/sweep is
// deliberately absent from the goroutine rule's point of view — it is
// the one whitelisted worker pool — and, holding no simulation
// semantics of its own, is left out of the set entirely. internal/serve
// is a wall-clock HTTP daemon and exempt by design.
var determinismPkgs = map[string]bool{
	"internal/sim":        true,
	"internal/cpu":        true,
	"internal/mem":        true,
	"internal/nic":        true,
	"internal/tcp":        true,
	"internal/dma":        true,
	"internal/link":       true,
	"internal/msg":        true,
	"internal/fault":      true,
	"internal/host":       true,
	"internal/bench":      true,
	"internal/datacenter": true,
	"internal/pvfs":       true,
	"internal/workload":   true,
	// Result-export paths: ordering nondeterminism here corrupts
	// rendered artifacts (trace JSON, metrics CSV) even when the
	// simulation itself is sound.
	"internal/trace":   true,
	"internal/metrics": true,
	"internal/check":   true,
	"internal/stats":   true,
	"internal/ioat":    true,
	"internal/ipc":     true,
	"internal/ramfs":   true,
	"internal/cost":    true,
}

// InDeterminismSet reports whether the import path is covered by the
// simdeterminism (and probeguard) contracts.
func InDeterminismSet(pkgpath string) bool {
	rel, ok := strings.CutPrefix(pkgpath, ModulePath+"/")
	if !ok {
		return false
	}
	return determinismPkgs[rel]
}

// Diagnostic is one finding at a position, before suppression filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one named check. Run reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Index    *Index

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Index is the module-wide knowledge shared by every pass: which
// functions are annotated //ioat:hotpath, across all loaded packages,
// and the loaded packages themselves so analyzers can summarize
// cross-package callees instead of demanding annotations on every
// trivially-clean accessor.
type Index struct {
	// Hotpath maps FuncID strings of annotated functions to true.
	Hotpath map[string]bool
	// pkgs maps import path to the loaded package, for cross-package
	// body summaries. A callee outside this set cannot be summarized
	// and must be annotated instead.
	pkgs map[string]*Package
	// hotCheckers caches one hotpathalloc summarizer per package.
	hotCheckers map[string]*hotpathChecker
}

// Pkg returns the loaded package with the given import path, or nil.
func (idx *Index) Pkg(path string) *Package { return idx.pkgs[path] }

// NewIndex builds the index over the given packages.
func NewIndex(pkgs []*Package) *Index {
	idx := &Index{
		Hotpath:     map[string]bool{},
		pkgs:        map[string]*Package{},
		hotCheckers: map[string]*hotpathChecker{},
	}
	for _, pkg := range pkgs {
		idx.pkgs[pkg.Path] = pkg
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !HasHotpathMarker(fd.Doc) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx.Hotpath[FuncID(obj)] = true
				}
			}
		}
	}
	return idx
}

// HasHotpathMarker reports whether a doc comment group contains the
// //ioat:hotpath annotation line.
func HasHotpathMarker(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == HotpathMarker {
			return true
		}
	}
	return false
}

// FuncID returns a stable identity for a function or method:
// "pkgpath.Name" or "pkgpath.(Recv).Name".
func FuncID(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), named.Obj().Name(), fn.Name())
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Finding is one post-suppression diagnostic with its source position
// resolved, ready to print.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// All returns the full analyzer suite in report order.
func All() []*Analyzer {
	return []*Analyzer{SimDeterminism, HotpathAlloc, ProbeGuard, CacheKey}
}

// Lint runs the analyzers over the packages, applies the allow-comment
// suppressions, and returns the surviving findings sorted by position.
// Malformed allow comments are always reported; unused ones only when
// checkUnused is set (pass true only when running the full suite, since
// an allow for an analyzer that did not run is trivially unused).
func Lint(pkgs []*Package, idx *Index, analyzers []*Analyzer, checkUnused bool) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allows := collectAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Index: idx}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				if allows.suppress(a.Name, pos) {
					continue
				}
				out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
		out = append(out, allows.problems(checkUnused)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
