package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ProbeGuard keeps the "disabled = one nil compare" guarantee
// structural: every selector through a nullable observability or fault
// hook pointer (*trace.Obs, the per-entity *fault.{Injector,LinkFault,
// NICFault,NodeFault} hooks) and every call through the sim.Probe /
// sim.ProcProbe interfaces must be dominated by a nil check of that
// same expression. An unguarded use either crashes a probe-free run or
// silently forces callers to install probes, destroying the zero-cost
// disabled path the benchmarks rely on.
var ProbeGuard = &Analyzer{
	Name: "probeguard",
	Doc: "require selectors on nullable observability/fault pointers to be " +
		"dominated by a nil check (disabled hooks stay one nil compare)",
	Run: runProbeGuard,
}

// probeGuardPtr lists the pointer-pointee types whose selectors need a
// dominating nil check, as "pkgpath.TypeName".
var probeGuardPtr = map[string]bool{
	ModulePath + "/internal/trace.Obs":       true,
	ModulePath + "/internal/fault.Injector":  true,
	ModulePath + "/internal/fault.LinkFault": true,
	ModulePath + "/internal/fault.NICFault":  true,
	ModulePath + "/internal/fault.NodeFault": true,
}

// probeGuardIface lists the interface types whose method calls need a
// dominating nil check on the interface value.
var probeGuardIface = map[string]bool{
	ModulePath + "/internal/sim.Probe":     true,
	ModulePath + "/internal/sim.ProcProbe": true,
}

// guardedTypeName returns the qualified name of the guarded type t
// refers to, or "" if t is not guarded.
func guardedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Pkg() != nil {
			name := named.Obj().Pkg().Path() + "." + named.Obj().Name()
			if probeGuardPtr[name] {
				return name
			}
		}
		return ""
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && types.IsInterface(t) {
		name := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if probeGuardIface[name] {
			return name
		}
	}
	return ""
}

func runProbeGuard(pass *Pass) error {
	if !InDeterminismSet(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &guardWalker{pass: pass}
			// Methods on a guarded type may use their own receiver
			// freely: the caller held the non-nil pointer to invoke
			// them (value-receiver methods got a non-nil copy source).
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				if obj, ok := pass.Pkg.Info.Defs[fd.Recv.List[0].Names[0]].(*types.Var); ok {
					if guardedTypeName(obj.Type()) != "" {
						w.recv = obj
					}
				}
			}
			w.stmts(fd.Body.List, map[string]bool{})
		}
	}
	return nil
}

// guardWalker tracks, per structured-control-flow region, the set of
// canonical expression strings known to be non-nil.
type guardWalker struct {
	pass *Pass
	recv *types.Var // exempt receiver of a guarded-type method, or nil
}

// stmts visits a statement list; facts established by terminating nil
// guards (`if x == nil { return }`) flow to the following statements.
func (w *guardWalker) stmts(list []ast.Stmt, guarded map[string]bool) {
	g := copyGuards(guarded)
	for _, s := range list {
		w.stmt(s, g)
	}
}

// stmt visits one statement, mutating g with facts that hold for the
// remainder of the enclosing list.
func (w *guardWalker) stmt(s ast.Stmt, g map[string]bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		inner := g
		if s.Init != nil {
			inner = copyGuards(g)
			w.stmt(s.Init, inner)
		}
		w.expr(s.Cond, inner)
		thenG := copyGuards(inner)
		addFacts(thenG, factsWhenTrue(s.Cond))
		w.stmts(s.Body.List, thenG)
		elseFacts := factsWhenFalse(s.Cond)
		if s.Else != nil {
			elseG := copyGuards(inner)
			addFacts(elseG, elseFacts)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				w.stmts(e.List, elseG)
			default:
				w.stmt(e, elseG)
			}
		}
		// `if x == nil { return }` guards everything after the if;
		// `if x != nil { ... } else { return }` likewise.
		if terminates(s.Body) {
			addFacts(g, elseFacts)
		}
		if s.Else != nil && terminates(s.Else) {
			addFacts(g, factsWhenTrue(s.Cond))
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			w.expr(r, g)
		}
		for _, l := range s.Lhs {
			w.expr(l, g)
			// Reassignment invalidates any fact about the target.
			delete(g, types.ExprString(l))
		}
	case *ast.BlockStmt:
		w.stmts(s.List, g)
	case *ast.ForStmt:
		inner := copyGuards(g)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Cond != nil {
			w.expr(s.Cond, inner)
			addFacts(inner, factsWhenTrue(s.Cond))
		}
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.expr(s.X, g)
		w.stmts(s.Body.List, copyGuards(g))
	case *ast.SwitchStmt:
		inner := copyGuards(g)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		if s.Tag != nil {
			w.expr(s.Tag, inner)
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e, inner)
			}
			w.stmts(cc.Body, copyGuards(inner))
		}
	case *ast.TypeSwitchStmt:
		inner := copyGuards(g)
		if s.Init != nil {
			w.stmt(s.Init, inner)
		}
		w.stmt(s.Assign, inner)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, copyGuards(inner))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			inner := copyGuards(g)
			if cc.Comm != nil {
				w.stmt(cc.Comm, inner)
			}
			w.stmts(cc.Body, inner)
		}
	case *ast.ExprStmt:
		w.expr(s.X, g)
	case *ast.SendStmt:
		w.expr(s.Chan, g)
		w.expr(s.Value, g)
	case *ast.IncDecStmt:
		w.expr(s.X, g)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, g)
		}
	case *ast.DeferStmt:
		w.expr(s.Call, copyGuards(g))
	case *ast.GoStmt:
		w.expr(s.Call, copyGuards(g))
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, g)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, g)
	}
}

// expr visits one expression, honoring && / || short-circuit guards and
// reporting unguarded selectors on guarded-type expressions.
func (w *guardWalker) expr(e ast.Expr, g map[string]bool) {
	switch e := e.(type) {
	case nil:
	case *ast.ParenExpr:
		w.expr(e.X, g)
	case *ast.BinaryExpr:
		w.expr(e.X, g)
		yg := g
		switch e.Op {
		case token.LAND:
			yg = copyGuards(g)
			addFacts(yg, factsWhenTrue(e.X))
		case token.LOR:
			yg = copyGuards(g)
			addFacts(yg, factsWhenFalse(e.X))
		}
		w.expr(e.Y, yg)
	case *ast.UnaryExpr:
		w.expr(e.X, g)
	case *ast.StarExpr:
		w.expr(e.X, g)
	case *ast.CallExpr:
		w.expr(e.Fun, g)
		for _, a := range e.Args {
			w.expr(a, g)
		}
	case *ast.IndexExpr:
		w.expr(e.X, g)
		w.expr(e.Index, g)
	case *ast.IndexListExpr:
		w.expr(e.X, g)
		for _, i := range e.Indices {
			w.expr(i, g)
		}
	case *ast.SliceExpr:
		w.expr(e.X, g)
		w.expr(e.Low, g)
		w.expr(e.High, g)
		w.expr(e.Max, g)
	case *ast.TypeAssertExpr:
		w.expr(e.X, g)
	case *ast.KeyValueExpr:
		w.expr(e.Value, g)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, g)
		}
	case *ast.FuncLit:
		// A closure may run long after the guard was checked; require
		// its own checks inside.
		w.stmts(e.Body.List, map[string]bool{})
	case *ast.SelectorExpr:
		w.checkSelector(e, g)
		w.expr(e.X, g)
	}
}

// checkSelector reports e when it selects through a guarded-type
// expression that is not known non-nil here.
func (w *guardWalker) checkSelector(e *ast.SelectorExpr, g map[string]bool) {
	info := w.pass.Pkg.Info
	if info.Selections[e] == nil {
		return // qualified identifier (pkg.Name), not a selection
	}
	t := info.TypeOf(e.X)
	name := guardedTypeName(t)
	if name == "" {
		return
	}
	// The defining package is the implementation, not a hook site: its
	// constructors build the values (`lf := &LinkFault{...}`) and its
	// aggregators walk injector-owned slices that only ever hold
	// constructor results. The nil-guard contract binds consumers.
	if strings.HasPrefix(name, w.pass.Pkg.Path+".") {
		return
	}
	if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && w.recv != nil && info.Uses[id] == w.recv {
		return
	}
	key := types.ExprString(e.X)
	if g[key] {
		return
	}
	w.pass.Reportf(e.Pos(),
		"selector on possibly-nil %s (%s) must be dominated by a nil check "+
			"(`if %s != nil { ... }`): a disabled hook is exactly one nil compare",
		name, key, key)
}

// factsWhenTrue returns the canonical expressions known non-nil when
// cond evaluates true.
func factsWhenTrue(cond ast.Expr) []string {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return append(factsWhenTrue(c.X), factsWhenTrue(c.Y)...)
		case token.NEQ:
			if isNilIdent(c.Y) {
				return []string{types.ExprString(c.X)}
			}
			if isNilIdent(c.X) {
				return []string{types.ExprString(c.Y)}
			}
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return factsWhenFalse(c.X)
		}
	}
	return nil
}

// factsWhenFalse returns the canonical expressions known non-nil when
// cond evaluates false.
func factsWhenFalse(cond ast.Expr) []string {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LOR:
			return append(factsWhenFalse(c.X), factsWhenFalse(c.Y)...)
		case token.EQL:
			if isNilIdent(c.Y) {
				return []string{types.ExprString(c.X)}
			}
			if isNilIdent(c.X) {
				return []string{types.ExprString(c.Y)}
			}
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return factsWhenTrue(c.X)
		}
	}
	return nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminates reports whether control cannot flow past s: a return, a
// panic, a branch, or a block/if ending in one.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return len(s.List) > 0 && terminates(s.List[len(s.List)-1])
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body) && terminates(s.Else)
	case *ast.LabeledStmt:
		return terminates(s.Stmt)
	}
	return false
}

func copyGuards(g map[string]bool) map[string]bool {
	out := make(map[string]bool, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

func addFacts(g map[string]bool, facts []string) {
	for _, f := range facts {
		g[f] = true
	}
}
