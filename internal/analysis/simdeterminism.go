package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or wait on the
// host's wall clock. Simulated time is the only clock a simulation
// package may consult; one stray time.Now in a figure runner poisons
// byte-identical seeded results without failing any unit test.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// SimDeterminism rejects the four constructs that have historically
// broken seeded reproducibility in simulation packages: wall-clock
// reads, global math/rand, map-iteration order feeding results, and raw
// goroutines outside the internal/sweep worker pool.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock time, math/rand, map ranges and raw goroutines " +
		"in simulation packages (golden-corpus determinism, made structural)",
	Run: runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	if !InDeterminismSet(pass.Pkg.Path) {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				path := importPath(n)
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(n.Pos(),
						"import of %s in a simulation package: use the seeded %s/internal/rng instead "+
							"(global rand state is shared across the process and breaks seeded reproducibility)",
						path, ModulePath)
				}
			case *ast.CallExpr:
				if fn := staticCallee(info, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && isPackageFunc(fn) && wallClockFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"time.%s reads the host clock: simulation code must use sim.Time "+
							"(wall-clock values feeding results break byte-identical seeded runs)", fn.Name())
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(),
							"range over a map iterates in nondeterministic order: "+
								"iterate a sorted key slice, or suppress with an allow comment "+
								"if provably order-insensitive")
					}
				}
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw go statement in a simulation package: concurrency belongs to the "+
						"%s/internal/sweep worker pool (goroutine interleaving is nondeterministic)",
					ModulePath)
			}
			return true
		})
	}
	return nil
}

// importPath returns the unquoted import path of a spec.
func importPath(spec *ast.ImportSpec) string {
	s := spec.Path.Value
	if len(s) >= 2 {
		return s[1 : len(s)-1]
	}
	return s
}

// staticCallee resolves the *types.Func a call statically invokes, or
// nil for builtins, func values and dynamic (interface) calls.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// isPackageFunc reports whether fn is a package-level function (not a
// method): methods on stdlib value types (time.Duration.Seconds) are
// pure accessors and never subject to package-level denylists.
func isPackageFunc(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}
