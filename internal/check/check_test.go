package check

import (
	"math"
	"strings"
	"testing"

	"ioatsim/internal/sim"
)

func TestEnabledDiscovery(t *testing.T) {
	if Enabled(sim.New()) != nil {
		t.Error("unchecked simulator reported a checker")
	}
	c := New()
	s := sim.New(sim.WithProbe(c))
	if Enabled(s) != c {
		t.Error("Enabled did not return the installed checker")
	}
}

func TestEventProbes(t *testing.T) {
	c := New()
	s := sim.New(sim.WithProbe(c))
	var order []sim.Time
	s.At(sim.Time(20), func() { order = append(order, sim.Time(20)) })
	s.At(sim.Time(10), func() { order = append(order, sim.Time(10)) })
	s.Run()
	if c.Events() != 2 {
		t.Errorf("observed %d dispatches, want 2", c.Events())
	}
	c.Finish()
	if err := c.Err(); err != nil {
		t.Errorf("clean run reported violations: %v", err)
	}
}

func TestDispatchMonotonicity(t *testing.T) {
	c := New()
	c.EventDispatched(100)
	c.EventDispatched(50)
	if len(c.Violations()) != 1 {
		t.Fatalf("backwards dispatch recorded %d violations, want 1", len(c.Violations()))
	}
}

func TestScheduleIntoPast(t *testing.T) {
	c := New()
	c.EventScheduled(100, 99)
	if len(c.Violations()) != 1 {
		t.Fatalf("past scheduling recorded %d violations, want 1", len(c.Violations()))
	}
}

func TestLedgerConservation(t *testing.T) {
	c := New()
	l := c.Ledger("bytes")
	l.In(100)
	l.Out(60)
	if l.InFlight() != 40 {
		t.Errorf("in-flight = %d, want 40", l.InFlight())
	}
	c.Finish()
	if err := c.Err(); err != nil {
		t.Errorf("balanced ledger reported violations: %v", err)
	}
}

func TestLedgerDuplicationDetected(t *testing.T) {
	c := New()
	l := c.Ledger("bytes")
	l.In(10)
	l.Out(11)
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "duplication") {
		t.Errorf("over-delivery not flagged as duplication: %v", err)
	}
}

func TestLedgerNegativeFlows(t *testing.T) {
	c := New()
	l := c.Ledger("bytes")
	l.In(-1)
	l.Out(-1)
	if n := len(c.Violations()); n != 2 {
		t.Errorf("negative flows recorded %d violations, want 2", n)
	}
}

func TestLedgerSharedAcrossCallers(t *testing.T) {
	c := New()
	if c.Ledger("x") != c.Ledger("x") {
		t.Error("same name returned different ledgers")
	}
}

func TestInRange(t *testing.T) {
	c := New()
	c.InRange("cpu", "utilization", 0.5, 0, 1)
	if len(c.Violations()) != 0 {
		t.Errorf("in-range value flagged: %v", c.Violations())
	}
	c.InRange("cpu", "utilization", 1.5, 0, 1)
	c.InRange("cpu", "utilization", math.NaN(), 0, 1)
	if n := len(c.Violations()); n != 2 {
		t.Errorf("out-of-range and NaN recorded %d violations, want 2", n)
	}
}

func TestStrictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("strict checker did not panic")
		}
	}()
	c := New()
	c.Strict = true
	c.Failf("test", "boom")
}

func TestViolationCap(t *testing.T) {
	c := New()
	for i := 0; i < maxViolations+10; i++ {
		c.Failf("test", "violation %d", i)
	}
	if n := len(c.Violations()); n != maxViolations {
		t.Errorf("recorded %d diagnostics, want cap %d", n, maxViolations)
	}
	if err := c.Err(); !strings.Contains(err.Error(), "10 more") {
		t.Errorf("dropped count missing from summary: %v", err)
	}
}

func TestFinishRunsAuditsOnce(t *testing.T) {
	c := New()
	runs := 0
	c.OnFinish(func(*Checker) { runs++ })
	c.Finish()
	c.Finish()
	if runs != 1 {
		t.Errorf("final audit ran %d times, want 1", runs)
	}
}
