// Package check is the simulator's runtime invariant checker: a debug
// harness the device models drive while a simulation runs, enforcing
// cross-layer conservation laws that no single package can see on its
// own — bytes entering the fabric equal bytes delivered plus in flight,
// event dispatch times never move backwards, utilizations stay inside
// [0, 1], DMA descriptor chains sum to their transfer lengths.
//
// A Checker is installed per simulator via sim.WithProbe (host.WithCheck
// does the wiring for whole clusters); device constructors discover it
// with Enabled and hold the resulting pointer. When no checker is
// installed every probe site reduces to one nil comparison, so the
// benchmark configurations stay on the allocation-free fast path.
//
// Violations are recorded, not thrown: a run completes and the harness
// (host.Cluster.Verify, the golden-corpus test, the fuzz targets) asks
// for the verdict once at the end. Set Strict to panic at the first
// violation instead, which pins the failure to its simulated instant.
package check

import (
	"fmt"

	"ioatsim/internal/sim"
)

// maxViolations bounds the recorded diagnostics; further failures are
// counted but not formatted.
const maxViolations = 32

// Checker accumulates invariant state for one simulator.
type Checker struct {
	// Strict makes every failed assertion panic immediately instead of
	// recording a violation for later collection.
	Strict bool

	// Event-causality state (fed by the sim.Probe hooks).
	events       uint64
	lastDispatch sim.Time
	haveDispatch bool

	ledgers map[string]*Ledger
	order   []string

	finals   []func(*Checker)
	finished bool

	violations []string
	dropped    int
}

// New returns an empty checker. It implements sim.Probe, so it can be
// handed straight to sim.WithProbe.
func New() *Checker {
	return &Checker{ledgers: make(map[string]*Ledger)}
}

// Enabled returns the Checker installed on the simulator, or nil when
// the simulator runs unchecked. Device constructors call this once and
// keep the pointer.
func Enabled(s *sim.Simulator) *Checker {
	for _, p := range s.Probes() {
		if c, ok := p.(*Checker); ok {
			return c
		}
	}
	return nil
}

// EventScheduled implements sim.Probe: no event may be scheduled into
// the past. (The engine independently panics on this; the probe records
// it so unchecked-panic refactors cannot silently drop the guarantee.)
func (c *Checker) EventScheduled(now, at sim.Time) {
	if at < now {
		c.Failf("sim", "event scheduled at %v before now %v", at, now)
	}
}

// EventDispatched implements sim.Probe: dispatch order is the heap's
// core contract — timestamps handed to callbacks must be monotone.
func (c *Checker) EventDispatched(at sim.Time) {
	c.events++
	if c.haveDispatch && at < c.lastDispatch {
		c.Failf("sim", "dispatch time moved backwards: %v after %v", at, c.lastDispatch)
	}
	c.haveDispatch = true
	c.lastDispatch = at
}

// Events reports how many dispatches the checker has observed.
func (c *Checker) Events() uint64 { return c.events }

// Failf records one violation.
func (c *Checker) Failf(component, format string, args ...any) {
	msg := component + ": " + fmt.Sprintf(format, args...)
	if c.Strict {
		panic("check: " + msg)
	}
	if len(c.violations) >= maxViolations {
		c.dropped++
		return
	}
	c.violations = append(c.violations, msg)
}

// Assert records a violation when cond is false.
func (c *Checker) Assert(cond bool, component, format string, args ...any) {
	if !cond {
		c.Failf(component, format, args...)
	}
}

// InRange asserts lo <= v <= hi (NaN always fails).
func (c *Checker) InRange(component, what string, v, lo, hi float64) {
	if !(v >= lo && v <= hi) { // negated so NaN fails
		c.Failf(component, "%s = %v outside [%v, %v]", what, v, lo, hi)
	}
}

// OnFinish registers an end-of-run audit (e.g. a full cache-structure
// walk too expensive to run per operation). Finish runs each exactly
// once.
func (c *Checker) OnFinish(f func(*Checker)) {
	c.finals = append(c.finals, f)
}

// Finish runs the registered end-of-run audits and the final ledger
// balance checks. It is idempotent.
func (c *Checker) Finish() {
	if c.finished {
		return
	}
	c.finished = true
	for _, f := range c.finals {
		f(c)
	}
	for _, name := range c.order {
		l := c.ledgers[name]
		if l.out > l.in {
			c.Failf("ledger", "%s: delivered %d units but only %d entered", name, l.out, l.in)
		}
	}
}

// Violations returns the recorded diagnostics in detection order.
func (c *Checker) Violations() []string {
	return append([]string(nil), c.violations...)
}

// Err summarizes the run: nil when clean, otherwise one error listing
// every recorded violation.
func (c *Checker) Err() error {
	if len(c.violations) == 0 {
		return nil
	}
	msg := fmt.Sprintf("check: %d invariant violation(s)", len(c.violations)+c.dropped)
	for _, v := range c.violations {
		msg += "\n  " + v
	}
	if c.dropped > 0 {
		msg += fmt.Sprintf("\n  ... and %d more", c.dropped)
	}
	return fmt.Errorf("%s", msg)
}

// Ledger is one named conservation account: units (bytes, envelopes,
// descriptors) enter with In and leave with Out, and at no instant may
// more have left than entered. The difference is the in-flight amount.
type Ledger struct {
	chk     *Checker
	name    string
	in, out int64
}

// Ledger returns the account with the given name, creating it on first
// use. All devices on one simulator share the checker, so accounts with
// the same name aggregate across devices — that is what makes the
// cross-layer laws (NIC in == transport out + in flight) checkable.
func (c *Checker) Ledger(name string) *Ledger {
	if l, ok := c.ledgers[name]; ok {
		return l
	}
	l := &Ledger{chk: c, name: name}
	c.ledgers[name] = l
	c.order = append(c.order, name)
	return l
}

// In records n units entering the account.
func (l *Ledger) In(n int64) {
	if n < 0 {
		l.chk.Failf("ledger", "%s: negative inflow %d", l.name, n)
		return
	}
	l.in += n
}

// Out records n units leaving the account; leaving more than ever
// entered is a conservation violation (bytes were duplicated or
// fabricated somewhere between the endpoints).
func (l *Ledger) Out(n int64) {
	if n < 0 {
		l.chk.Failf("ledger", "%s: negative outflow %d", l.name, n)
		return
	}
	l.out += n
	if l.out > l.in {
		l.chk.Failf("ledger", "%s: delivered %d units but only %d entered (duplication)",
			l.name, l.out, l.in)
	}
}

// InFlight returns units currently inside the account.
func (l *Ledger) InFlight() int64 { return l.in - l.out }

// Inflow returns total inflow.
func (l *Ledger) Inflow() int64 { return l.in }

// Outflow returns total outflow.
func (l *Ledger) Outflow() int64 { return l.out }
