// Package httpm is a minimal HTTP-like request/response protocol over
// framed messages: enough structure for the paper's §5 data-center
// (static GETs through a proxy tier) without parsing real header text.
package httpm

import (
	"ioatsim/internal/mem"
	"ioatsim/internal/msg"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

// RequestBytes is the on-wire size of a GET request (method + path +
// headers), beyond the framing header.
const RequestBytes = 200

// Request is a static-content GET.
type Request struct {
	Path string
}

// Response carries the served document.
type Response struct {
	Status int
	Path   string
}

// WriteRequest sends a GET over the connection.
func WriteRequest(p *sim.Proc, c *msg.Conn, r Request) {
	c.Send(p, r, RequestBytes, mem.Buffer{}, tcp.SendOptions{})
}

// ReadRequest receives the next GET.
func ReadRequest(p *sim.Proc, c *msg.Conn) Request {
	env := c.Recv(p, mem.Buffer{})
	r, ok := env.Meta.(Request)
	if !ok {
		panic("httpm: expected a request")
	}
	return r
}

// WriteResponse sends a response of size bytes whose payload is charged
// against src (use zeroCopy for sendfile-style serving from the page
// cache).
func WriteResponse(p *sim.Proc, c *msg.Conn, r Response, size int, src mem.Buffer, zeroCopy bool) {
	c.Send(p, r, size, src, tcp.SendOptions{ZeroCopy: zeroCopy})
}

// ReadResponse receives a response into dst and returns it with the body
// size.
func ReadResponse(p *sim.Proc, c *msg.Conn, dst mem.Buffer) (Response, int) {
	env := c.Recv(p, dst)
	r, ok := env.Meta.(Response)
	if !ok {
		panic("httpm: expected a response")
	}
	return r, env.Body
}
