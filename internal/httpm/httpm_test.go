package httpm

import (
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/msg"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

func TestGetRoundTrip(t *testing.T) {
	cl, a, b := host.Testbed1(cost.Default(), ioat.Linux(), 1)
	ca, cb := tcp.Pair(a.Stack, b.Stack, 0, 0)
	client, server := msg.Wrap(ca), msg.Wrap(cb)

	var served Request
	var gotResp Response
	var gotBody int
	file := b.Buf(8 * cost.KB)
	cl.S.Spawn("server", func(p *sim.Proc) {
		served = ReadRequest(p, server)
		WriteResponse(p, server, Response{Status: 200, Path: served.Path}, file.Size, file, true)
	})
	cl.S.Spawn("client", func(p *sim.Proc) {
		WriteRequest(p, client, Request{Path: "/index.html"})
		dst := a.Buf(8 * cost.KB)
		gotResp, gotBody = ReadResponse(p, client, dst)
	})
	cl.S.Run()

	if served.Path != "/index.html" {
		t.Fatalf("server saw %+v", served)
	}
	if gotResp.Status != 200 || gotBody != 8*cost.KB {
		t.Fatalf("client got %+v body=%d", gotResp, gotBody)
	}
}

func TestPipelinedRequests(t *testing.T) {
	cl, a, b := host.Testbed1(cost.Default(), ioat.None(), 1)
	ca, cb := tcp.Pair(a.Stack, b.Stack, 0, 0)
	client, server := msg.Wrap(ca), msg.Wrap(cb)

	const n = 10
	var served int
	cl.S.Spawn("server", func(p *sim.Proc) {
		buf := b.Buf(4 * cost.KB)
		for i := 0; i < n; i++ {
			req := ReadRequest(p, server)
			WriteResponse(p, server, Response{Status: 200, Path: req.Path}, 4*cost.KB, buf, false)
			served++
		}
	})
	var completed int
	cl.S.Spawn("client", func(p *sim.Proc) {
		dst := a.Buf(4 * cost.KB)
		for i := 0; i < n; i++ {
			WriteRequest(p, client, Request{Path: "/x"})
			ReadResponse(p, client, dst)
			completed++
		}
	})
	cl.S.Run()
	if served != n || completed != n {
		t.Fatalf("served=%d completed=%d, want %d", served, completed, n)
	}
}
