package fault

import (
	"testing"
	"time"

	"ioatsim/internal/sim"
)

func TestParseSpec(t *testing.T) {
	p, err := ParseSpec("loss=0.01,seed=7,flap=50ms/5ms,ring=256,slow=1.5@0.5,mask=0x2/8,retries=16,rtomin=1ms,rtomax=50ms,dupack=4,burst=0.3,pgb=0.05,pbg=0.25")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed: 7, LossRate: 0.01,
		BurstLossRate: 0.3, PGoodBad: 0.05, PBadGood: 0.25,
		DropMask: 2, MaskBits: 8,
		FlapPeriod: 50 * time.Millisecond, FlapDown: 5 * time.Millisecond,
		RxRingFrames: 256, SlowFactor: 1.5, SlowFraction: 0.5,
		RTOMin: time.Millisecond, RTOMax: 50 * time.Millisecond,
		MaxRetries: 16, DupAckThresh: 4,
	}
	if p != want {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	if got, err := ParseSpec(""); err != nil || got != (Plan{}) {
		t.Fatalf("empty spec: %+v, %v", got, err)
	}
	for _, bad := range []string{"loss", "loss=x", "wat=1", "loss=1.5", "mask=0xff", "flap=5ms/50ms"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

func TestZeroPlanNeverDrops(t *testing.T) {
	in := NewInjector(Plan{})
	lf := in.Link("a", 0)
	nf := in.NIC("a")
	nd := in.Node("a")
	for i := 0; i < 10000; i++ {
		if lf.Drop(sim.Time(i)*sim.Time(time.Microsecond), 45, 64<<10) {
			t.Fatal("zero plan dropped a chunk")
		}
		if !nf.Admit(45, 64<<10) {
			t.Fatal("zero plan refused ring admission")
		}
		nf.Drain(45)
	}
	if nd.Degraded() || nd.Scale(time.Microsecond) != time.Microsecond {
		t.Fatal("zero plan degraded a node")
	}
	tot := in.Totals()
	if tot != (Totals{}) {
		t.Fatalf("zero plan accumulated drops: %+v", tot)
	}
}

func TestBernoulliLossRoughlyCalibrated(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, LossRate: 0.1})
	lf := in.Link("a", 0)
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if lf.Drop(0, 1, 1500) { // single-frame chunks: per-chunk = per-frame rate
			drops++
		}
	}
	got := float64(drops) / n
	if got < 0.08 || got > 0.12 {
		t.Fatalf("single-frame drop rate %v, want ~0.1", got)
	}
	// Multi-frame chunks must drop strictly more often.
	lf2 := NewInjector(Plan{Seed: 3, LossRate: 0.1}).Link("a", 0)
	multi := 0
	for i := 0; i < n; i++ {
		if lf2.Drop(0, 10, 15000) {
			multi++
		}
	}
	if multi <= drops {
		t.Fatalf("10-frame chunks dropped %d times, single-frame %d; want more", multi, drops)
	}
}

func TestMaskSchedule(t *testing.T) {
	// mask 0b0101 over 4 bits: chunks 0, 2, 4, 6, ... drop.
	lf := NewInjector(Plan{DropMask: 0b0101, MaskBits: 4}).Link("a", 0)
	for i := 0; i < 16; i++ {
		want := i%2 == 0
		if got := lf.Drop(0, 1, 100); got != want {
			t.Fatalf("chunk %d: drop=%v, want %v", i, got, want)
		}
	}
}

func TestFlapWindow(t *testing.T) {
	in := NewInjector(Plan{FlapPeriod: 100 * time.Microsecond, FlapDown: 10 * time.Microsecond})
	lf := in.Link("a", 0)
	period := 100 * time.Microsecond
	// Scan one full period at fine granularity: exactly the down window
	// (10% of offers, phase-shifted) must drop.
	drops := 0
	const steps = 1000
	for i := 0; i < steps; i++ {
		at := sim.Time(0).Add(time.Duration(i) * period / steps)
		if lf.Drop(at, 1, 100) {
			drops++
		}
	}
	if drops != steps/10 {
		t.Fatalf("flap dropped %d of %d offers, want exactly %d", drops, steps, steps/10)
	}
	if lf.FlapDrops != int64(drops) {
		t.Fatalf("FlapDrops %d != %d", lf.FlapDrops, drops)
	}
}

func TestGilbertElliottBursts(t *testing.T) {
	// Bad state drops 80% of frames; chain spends ~1/3 of chunks bad.
	in := NewInjector(Plan{Seed: 9, BurstLossRate: 0.8, PGoodBad: 0.1, PBadGood: 0.2})
	lf := in.Link("a", 0)
	const n = 30000
	drops := 0
	for i := 0; i < n; i++ {
		if lf.Drop(0, 1, 100) {
			drops++
		}
	}
	// Stationary bad fraction = pgb/(pgb+pbg) = 1/3; expected drop rate ~0.267.
	got := float64(drops) / n
	if got < 0.2 || got > 0.33 {
		t.Fatalf("GE drop rate %v, want ~0.27", got)
	}
}

func TestSeedChangesPattern(t *testing.T) {
	pattern := func(seed uint64) (drops [64]bool) {
		lf := NewInjector(Plan{Seed: seed, LossRate: 0.3}).Link("a", 0)
		for i := range drops {
			drops[i] = lf.Drop(0, 1, 100)
		}
		return
	}
	if pattern(1) == pattern(2) {
		t.Fatal("seeds 1 and 2 produced identical drop patterns")
	}
	if pattern(1) != pattern(1) {
		t.Fatal("same seed produced differing drop patterns")
	}
}

func TestPerLinkIndependence(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, LossRate: 0.3})
	a0, a1 := in.Link("a", 0), in.Link("a", 1)
	same := true
	for i := 0; i < 64; i++ {
		if a0.Drop(0, 1, 100) != a1.Drop(0, 1, 100) {
			same = false
		}
	}
	if same {
		t.Fatal("two links share one drop pattern")
	}
	// Construction order must not matter: a fresh injector handing out
	// the same identity reproduces the same pattern.
	in2 := NewInjector(Plan{Seed: 1, LossRate: 0.3})
	_ = in2.Link("zzz", 5) // allocate something else first
	b0 := in2.Link("a", 0)
	a0b := NewInjector(Plan{Seed: 1, LossRate: 0.3}).Link("a", 0)
	for i := 0; i < 64; i++ {
		if b0.Drop(0, 1, 100) != a0b.Drop(0, 1, 100) {
			t.Fatal("drop pattern depends on injector construction order")
		}
	}
}

func TestRingOverflow(t *testing.T) {
	nf := NewInjector(Plan{RxRingFrames: 100}).NIC("a")
	if !nf.Admit(60, 1000) {
		t.Fatal("first chunk must fit")
	}
	if nf.Admit(60, 1000) {
		t.Fatal("second chunk must overflow a 100-frame ring")
	}
	nf.Drain(60)
	if !nf.Admit(60, 1000) {
		t.Fatal("chunk must fit after drain")
	}
	if nf.DroppedChunks != 1 || nf.DroppedBytes != 1000 {
		t.Fatalf("counters %d/%d, want 1/1000", nf.DroppedChunks, nf.DroppedBytes)
	}
}

func TestSlowNodeSelection(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, SlowFactor: 2})
	nd := in.Node("a")
	if !nd.Degraded() || nd.Scale(time.Microsecond) != 2*time.Microsecond {
		t.Fatal("SlowFraction 0 with a factor must degrade every node")
	}
	// A fractional selection must be stable and select roughly its share.
	in2 := NewInjector(Plan{Seed: 1, SlowFactor: 2, SlowFraction: 0.5})
	slow := 0
	for i := 0; i < 200; i++ {
		if in2.Node("node" + string(rune('a'+i%26)) + string(rune('0'+i/26))).Degraded() {
			slow++
		}
	}
	if slow < 60 || slow > 140 {
		t.Fatalf("SlowFraction 0.5 degraded %d of 200 nodes", slow)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Plan{
		{LossRate: -0.1},
		{LossRate: 1},
		{BurstLossRate: 1.2},
		{PGoodBad: 2},
		{MaskBits: 65},
		{FlapPeriod: time.Millisecond, FlapDown: 2 * time.Millisecond},
		{RxRingFrames: -1},
		{SlowFactor: -1},
		{SlowFraction: 2},
		{RTOMin: 2 * time.Millisecond, RTOMax: time.Millisecond},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("plan %d (%+v): want validation error", i, p)
		}
	}
	if err := (&Plan{}).Validate(); err != nil {
		t.Errorf("zero plan must validate: %v", err)
	}
}
