// Package fault is the simulator's adversarial plane: a deterministic,
// seed-derived source of the imperfections the paper's dedicated testbed
// never sees — per-link packet loss (Bernoulli or bursty Gilbert-Elliott),
// link up/down flap schedules, NIC receive-ring overflow under burst, and
// degraded (slowed) nodes.
//
// A Plan describes the fault regime declaratively; host construction
// turns it into an Injector that hands each device a small per-entity
// fault state (LinkFault, NICFault, NodeFault). Devices hold the pointer
// and consult it inline; a nil pointer is the lossless fabric and costs
// exactly one pointer compare, so the steady-state packet path stays
// allocation-free when no plan is installed.
//
// Determinism: every random decision draws from a per-entity RNG whose
// seed is derived from (Plan.Seed, node name, port index) by hashing, so
// outcomes do not depend on construction order or on how many other
// entities exist, and sweeps stay byte-identical at any parallelism. The
// fault RNG is entirely separate from the workload RNG — a Plan with all
// rates at zero perturbs nothing.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"ioatsim/internal/rng"
	"ioatsim/internal/sim"
)

// Plan declares a fault regime. The zero value is a fully benign plan:
// hooks are installed (and the transport's recovery machinery armed) but
// nothing ever drops, flaps, or slows — the differential tests pin that a
// zero plan reproduces every golden table byte-for-byte.
//
// All fields are exported scalars so a Plan embeds directly in the
// content-addressed sweep cache key and gob-encodes with cached rows.
type Plan struct {
	// Seed derives every per-entity RNG. Plans differing only in Seed
	// produce different drop patterns (the seed-sensitivity test pins
	// this); Seed 0 is a valid, distinct seed.
	Seed uint64

	// LossRate is the per-frame Bernoulli drop probability in [0, 1).
	// A chunk (burst of frames) is dropped if any of its frames would be,
	// so the per-chunk drop probability is 1-(1-LossRate)^frames.
	LossRate float64

	// Gilbert-Elliott burst loss: in the bad state frames drop at
	// BurstLossRate instead of LossRate; the chain moves good->bad with
	// probability PGoodBad and bad->good with PBadGood, evaluated once
	// per offered chunk. BurstLossRate = 0 disables the model.
	BurstLossRate float64
	PGoodBad      float64
	PBadGood      float64

	// DropMask, when MaskBits > 0, overrides the probabilistic models
	// with an exact schedule: offered chunk number i (per link, counted
	// from 0) is dropped iff bit i%MaskBits of DropMask is set. Unit and
	// fuzz tests use it to force specific loss patterns.
	DropMask uint64
	MaskBits int

	// Link flapping: every FlapPeriod the link goes down for FlapDown
	// (chunks offered inside the window are dropped). Each link's window
	// is phase-shifted by its RNG so flaps do not synchronize across
	// ports. Either duration at zero disables flapping.
	FlapPeriod time.Duration
	FlapDown   time.Duration

	// RxRingFrames bounds the NIC receive ring: frames from chunks whose
	// softirq processing has not yet drained count against it, and a
	// chunk that would overflow the ring is dropped at the NIC. Zero
	// means unbounded (the seed behaviour). Must be at least one
	// ChunkMax worth of frames, or host construction panics (a smaller
	// ring could never admit a full-size chunk and would livelock the
	// retransmitting sender).
	RxRingFrames int

	// Degraded nodes: a node chosen by SlowFraction runs all CPU work
	// SlowFactor times slower (1 or 0 = no slowdown). Selection hashes
	// the node name against Seed, so it is stable across runs; a
	// SlowFraction <= 0 with SlowFactor set degrades every node,
	// otherwise each node is degraded with probability SlowFraction.
	SlowFactor   float64
	SlowFraction float64

	// Transport recovery tuning (consumed by internal/tcp). Zero values
	// select the defaults noted on each field.
	RTOMin       time.Duration // initial/minimum RTO (default 1ms)
	RTOMax       time.Duration // backoff cap (default 100ms)
	MaxRetries   int           // consecutive RTOs without progress before the run aborts (default 24; negative = unlimited)
	DupAckThresh int           // duplicate ACKs that trigger fast retransmit (default 3)
}

// Validate rejects out-of-range rates and nonsensical schedules.
func (p *Plan) Validate() error {
	check01 := func(name string, v float64) error {
		if v < 0 || v >= 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1)", name, v)
		}
		return nil
	}
	if err := check01("LossRate", p.LossRate); err != nil {
		return err
	}
	if err := check01("BurstLossRate", p.BurstLossRate); err != nil {
		return err
	}
	if p.PGoodBad < 0 || p.PGoodBad > 1 || p.PBadGood < 0 || p.PBadGood > 1 {
		return fmt.Errorf("fault: state-transition probabilities outside [0, 1]")
	}
	if p.MaskBits < 0 || p.MaskBits > 64 {
		return fmt.Errorf("fault: MaskBits %d outside [0, 64]", p.MaskBits)
	}
	if p.FlapPeriod < 0 || p.FlapDown < 0 || p.FlapDown > p.FlapPeriod {
		return fmt.Errorf("fault: flap window %v/%v invalid", p.FlapPeriod, p.FlapDown)
	}
	if p.RxRingFrames < 0 {
		return fmt.Errorf("fault: negative RxRingFrames %d", p.RxRingFrames)
	}
	if p.SlowFactor < 0 || p.SlowFraction < 0 || p.SlowFraction > 1 {
		return fmt.Errorf("fault: slowdown %v@%v invalid", p.SlowFactor, p.SlowFraction)
	}
	if p.RTOMin < 0 || p.RTOMax < 0 || (p.RTOMax > 0 && p.RTOMin > p.RTOMax) {
		return fmt.Errorf("fault: RTO bounds %v/%v invalid", p.RTOMin, p.RTOMax)
	}
	return nil
}

// ParseSpec parses the ioatbench -fault flag syntax: comma-separated
// key=value entries, e.g.
//
//	loss=0.01,seed=7
//	burst=0.3,pgb=0.05,pbg=0.25
//	flap=50ms/5ms,ring=256,slow=1.5@0.5
//	mask=0x2/8,retries=16,rtomin=1ms,rtomax=50ms,dupack=3
func ParseSpec(spec string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("fault: entry %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 0, 64)
		case "loss":
			p.LossRate, err = strconv.ParseFloat(v, 64)
		case "burst":
			p.BurstLossRate, err = strconv.ParseFloat(v, 64)
		case "pgb":
			p.PGoodBad, err = strconv.ParseFloat(v, 64)
		case "pbg":
			p.PBadGood, err = strconv.ParseFloat(v, 64)
		case "mask":
			bits, nbits, ok := strings.Cut(v, "/")
			if !ok {
				return p, fmt.Errorf("fault: mask %q wants <bits>/<nbits>", v)
			}
			if p.DropMask, err = strconv.ParseUint(bits, 0, 64); err == nil {
				p.MaskBits, err = strconv.Atoi(nbits)
			}
		case "flap":
			period, down, ok := strings.Cut(v, "/")
			if !ok {
				return p, fmt.Errorf("fault: flap %q wants <period>/<down>", v)
			}
			if p.FlapPeriod, err = time.ParseDuration(period); err == nil {
				p.FlapDown, err = time.ParseDuration(down)
			}
		case "ring":
			p.RxRingFrames, err = strconv.Atoi(v)
		case "slow":
			factor, frac, has := strings.Cut(v, "@")
			if p.SlowFactor, err = strconv.ParseFloat(factor, 64); err == nil && has {
				p.SlowFraction, err = strconv.ParseFloat(frac, 64)
			}
		case "rtomin":
			p.RTOMin, err = time.ParseDuration(v)
		case "rtomax":
			p.RTOMax, err = time.ParseDuration(v)
		case "retries":
			p.MaxRetries, err = strconv.Atoi(v)
		case "dupack":
			p.DupAckThresh, err = strconv.Atoi(v)
		default:
			return p, fmt.Errorf("fault: unknown key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("fault: bad value for %s: %v", k, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// ---- seed derivation ----

// hash64 is FNV-1a over the label, mixed through splitmix-style avalanche
// so nearby labels land far apart.
func hash64(seed uint64, label string) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hash01 maps a label deterministically to [0, 1).
func hash01(seed uint64, label string) float64 {
	return float64(hash64(seed, label)>>11) / (1 << 53)
}

// ---- injector ----

// Injector instantiates a Plan's per-entity fault state for one cluster.
// Host construction builds one and attaches the resulting hooks to every
// device it assembles.
type Injector struct {
	plan  Plan
	links []*LinkFault
	nics  []*NICFault
	nodes []*NodeFault
}

// NewInjector validates the plan and returns its injector.
func NewInjector(p Plan) *Injector {
	if err := p.Validate(); err != nil {
		panic(err.Error())
	}
	return &Injector{plan: p}
}

// Plan returns the injector's plan.
func (in *Injector) Plan() *Plan { return &in.plan }

// Link returns the fault state for the transmit side of port index on
// the named node. Each (node, port) pair gets its own RNG and flap
// phase, derived purely from the plan seed and the pair's identity.
func (in *Injector) Link(node string, port int) *LinkFault {
	label := "link:" + node + ":" + strconv.Itoa(port)
	lf := &LinkFault{
		plan: &in.plan,
		r:    rng.New(hash64(in.plan.Seed, label)),
	}
	if in.plan.FlapPeriod > 0 && in.plan.FlapDown > 0 {
		lf.flapPhase = time.Duration(hash01(in.plan.Seed, label+":phase") * float64(in.plan.FlapPeriod))
	}
	in.links = append(in.links, lf)
	return lf
}

// NIC returns the receive-ring fault state for the named node's NIC.
func (in *Injector) NIC(node string) *NICFault {
	nf := &NICFault{plan: &in.plan}
	in.nics = append(in.nics, nf)
	return nf
}

// Node returns the CPU fault state for the named node. The slowdown
// decision is made here, once, from the plan seed and the node name.
func (in *Injector) Node(node string) *NodeFault {
	nf := &NodeFault{factor: 1}
	if f := in.plan.SlowFactor; f > 0 && f != 1 {
		frac := in.plan.SlowFraction
		if frac <= 0 {
			frac = 1
		}
		if hash01(in.plan.Seed, "node:"+node) < frac {
			nf.factor = f
		}
	}
	in.nodes = append(in.nodes, nf)
	return nf
}

// Totals aggregates drop counters across every entity the injector
// built, for reports and post-run assertions.
type Totals struct {
	LinkDroppedChunks int64
	LinkDroppedBytes  int64
	FlapDroppedChunks int64
	NICDroppedChunks  int64
	NICDroppedBytes   int64
	SlowNodes         int
}

// Totals sums the per-entity counters.
func (in *Injector) Totals() Totals {
	var t Totals
	for _, lf := range in.links {
		t.LinkDroppedChunks += lf.DroppedChunks
		t.LinkDroppedBytes += lf.DroppedBytes
		t.FlapDroppedChunks += lf.FlapDrops
	}
	for _, nf := range in.nics {
		t.NICDroppedChunks += nf.DroppedChunks
		t.NICDroppedBytes += nf.DroppedBytes
	}
	for _, nf := range in.nodes {
		if nf.factor != 1 {
			t.SlowNodes++
		}
	}
	return t
}

// ---- per-entity fault state ----

// LinkFault decides, chunk by chunk, whether one link direction eats a
// transmission. The link layer consults it inside Send.
type LinkFault struct {
	plan      *Plan
	r         *rng.Rand
	flapPhase time.Duration
	txIdx     uint64 // offered chunks, for mask mode
	bad       bool   // Gilbert-Elliott state

	// Counters (exported for metrics and tests).
	OfferedChunks int64
	DroppedChunks int64
	DroppedBytes  int64
	FlapDrops     int64
}

// Drop reports whether the chunk offered now, spanning frames wire
// frames and carrying payloadBytes, is lost. Flap windows are checked
// first (a down link drops everything), then the exact mask schedule if
// configured, then the probabilistic frame-loss models.
func (lf *LinkFault) Drop(now sim.Time, frames, payloadBytes int) bool {
	lf.OfferedChunks++
	p := lf.plan
	if p.FlapPeriod > 0 && p.FlapDown > 0 {
		if (time.Duration(now)+lf.flapPhase)%p.FlapPeriod < p.FlapDown {
			lf.FlapDrops++
			return lf.drop(payloadBytes)
		}
	}
	if p.MaskBits > 0 {
		bit := lf.txIdx % uint64(p.MaskBits)
		lf.txIdx++
		if p.DropMask&(1<<bit) != 0 {
			return lf.drop(payloadBytes)
		}
		return false
	}
	rate := p.LossRate
	if p.BurstLossRate > 0 {
		if lf.bad {
			if lf.r.Float64() < p.PBadGood {
				lf.bad = false
			}
		} else if p.PGoodBad > 0 && lf.r.Float64() < p.PGoodBad {
			lf.bad = true
		}
		if lf.bad {
			rate = p.BurstLossRate
		}
	}
	if rate <= 0 {
		return false
	}
	// A chunk is one wire burst; it is lost if any of its frames is.
	if lf.r.Float64() < 1-math.Pow(1-rate, float64(frames)) {
		return lf.drop(payloadBytes)
	}
	return false
}

func (lf *LinkFault) drop(payloadBytes int) bool {
	lf.DroppedChunks++
	lf.DroppedBytes += int64(payloadBytes)
	return true
}

// NICFault models a bounded receive ring: frames whose softirq
// processing has not drained occupy slots, and a chunk that does not fit
// is dropped before any protocol work is priced.
type NICFault struct {
	plan    *Plan
	pending int // frames admitted but not yet drained

	OfferedChunks int64
	DroppedChunks int64
	DroppedBytes  int64
}

// Admit reserves ring slots for a chunk's frames, or reports overflow.
func (nf *NICFault) Admit(frames, payloadBytes int) bool {
	nf.OfferedChunks++
	if limit := nf.plan.RxRingFrames; limit > 0 && nf.pending+frames > limit {
		nf.DroppedChunks++
		nf.DroppedBytes += int64(payloadBytes)
		return false
	}
	nf.pending += frames
	return true
}

// Drain releases the ring slots of a chunk whose softirq work finished.
func (nf *NICFault) Drain(frames int) {
	nf.pending -= frames
	if nf.pending < 0 {
		panic("fault: NIC ring drained below zero")
	}
}

// NodeFault scales a node's CPU work. Factor 1 (the common case, and
// every node under a benign plan) is skipped exactly so durations pass
// through bit-identical.
type NodeFault struct {
	factor float64
}

// Degraded reports whether this node was selected for slowdown.
func (nf *NodeFault) Degraded() bool { return nf.factor != 1 }

// Scale stretches one work item's duration by the node's slowdown.
func (nf *NodeFault) Scale(d time.Duration) time.Duration {
	if nf.factor == 1 {
		return d
	}
	return time.Duration(float64(d) * nf.factor)
}
