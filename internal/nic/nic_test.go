package nic

import (
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/ioat"
	"ioatsim/internal/link"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
)

type testFlow struct {
	id    int
	state mem.Buffer
}

func (f *testFlow) FlowID() int         { return f.id }
func (f *testFlow) StateAddr() mem.Addr { return f.state.Addr }

type rig struct {
	s    *sim.Simulator
	p    *cost.Params
	src  *NIC // sender
	dst  *NIC // receiver under test
	flow *testFlow
}

func newRig(feat ioat.Features) *rig {
	s := sim.New()
	p := cost.Default()
	mkNode := func(name string, f ioat.Features) *NIC {
		m := mem.NewModel(p)
		c := cpu.New(s, p)
		e := dma.New(s, p, m)
		return New(s, p, c, m, e, f, name, 2)
	}
	src := mkNode("src", ioat.None())
	dst := mkNode("dst", feat)
	flow := &testFlow{id: 1, state: dst.Mem.Space.Alloc(4*64, 0)}
	return &rig{s: s, p: p, src: src, dst: dst, flow: flow}
}

// sendChunk pushes one chunk of n payload bytes from src port 0 to dst
// port 0.
func (r *rig) sendChunk(n int) {
	c := &link.Chunk{
		Bytes:     n,
		Frames:    r.p.Frames(n),
		WireBytes: r.p.WireBytes(n),
		Meta:      r.flow,
	}
	r.src.Port(0).Send(r.dst.Port(0), c)
}

func TestDeliverReachesTransport(t *testing.T) {
	r := newRig(ioat.None())
	var got *RxChunk
	r.dst.OnReceive = func(rx *RxChunk) { got = rx }
	r.sendChunk(16 * cost.KB)
	r.s.Run()
	if got == nil {
		t.Fatal("transport never received the chunk")
	}
	if got.Chunk.Bytes != 16*cost.KB {
		t.Fatalf("bytes = %d", got.Chunk.Bytes)
	}
	if len(got.Bufs) != r.p.Frames(16*cost.KB) {
		t.Fatalf("bufs = %d, want one per frame (%d)", len(got.Bufs), r.p.Frames(16*cost.KB))
	}
	if got.ReadyAt <= 0 {
		t.Fatal("ReadyAt not set")
	}
}

func TestSoftirqDelaysDelivery(t *testing.T) {
	// Receipt must land strictly after the wire time: protocol
	// processing costs CPU time on the rx core.
	r := newRig(ioat.None())
	var at sim.Time
	r.dst.OnReceive = func(rx *RxChunk) { at = r.s.Now() }
	r.sendChunk(16 * cost.KB)
	r.s.Run()
	wire := sim.Time(r.p.WireTime(16*cost.KB) + r.p.PropDelay)
	if at <= wire {
		t.Fatalf("delivered at %v, wire alone is %v — no processing cost?", at, wire)
	}
}

func TestRxCoreDefaultIsZero(t *testing.T) {
	r := newRig(ioat.None())
	if r.dst.RxCore(0, r.flow) != 0 {
		t.Fatal("rx processing must pin to core 0 without multi-queue")
	}
}

func TestRxCoreMultiQueueSpreads(t *testing.T) {
	r := newRig(ioat.Full())
	seen := map[int]bool{}
	for id := 0; id < 8; id++ {
		f := &testFlow{id: id, state: r.flow.state}
		seen[r.dst.RxCore(0, f)] = true
	}
	if len(seen) != r.dst.CPU.NumCores() {
		t.Fatalf("multi-queue used %d cores, want %d", len(seen), r.dst.CPU.NumCores())
	}
}

func TestInterruptCoalescing(t *testing.T) {
	r := newRig(ioat.None())
	r.dst.OnReceive = func(rx *RxChunk) { rx.Free() }
	r.sendChunk(64 * cost.KB) // 46 frames
	r.s.Run()
	frames := int64(r.p.Frames(64 * cost.KB))
	wantIntrs := (frames + int64(r.p.CoalesceFrames) - 1) / int64(r.p.CoalesceFrames)
	if r.dst.Interrupts != wantIntrs {
		t.Fatalf("interrupts = %d, want %d", r.dst.Interrupts, wantIntrs)
	}
}

func TestCoalescingReducesCPU(t *testing.T) {
	busy := func(coalesce int) time.Duration {
		r := newRig(ioat.None())
		r.p.CoalesceFrames = coalesce
		r.dst.OnReceive = func(rx *RxChunk) { rx.Free() }
		r.sendChunk(64 * cost.KB)
		r.s.Run()
		return r.dst.CPU.BusyTime()
	}
	if busy(8) >= busy(1) {
		t.Fatal("coalescing did not reduce receive CPU time")
	}
}

func TestSplitHeaderHitsAfterWarmup(t *testing.T) {
	// With split headers the ring stays cache-resident, so after one
	// pass, header accesses hit and per-chunk cost drops below the
	// non-split cold cost.
	costOf := func(feat ioat.Features) time.Duration {
		r := newRig(feat)
		r.dst.OnReceive = func(rx *RxChunk) { rx.Free() }
		// Warm up, measure second batch.
		for i := 0; i < 4; i++ {
			r.sendChunk(64 * cost.KB)
		}
		r.s.Run()
		r.dst.CPU.ResetWindow()
		start := r.dst.CPU.BusyTime()
		for i := 0; i < 4; i++ {
			r.sendChunk(64 * cost.KB)
		}
		r.s.Run()
		return r.dst.CPU.BusyTime() - start
	}
	split := costOf(ioat.Features{SplitHeader: true})
	plain := costOf(ioat.None())
	if split >= plain {
		t.Fatalf("split-header rx cost %v not below non-split %v", split, plain)
	}
}

func TestFullPacketDCAPollutionGrowsWithBacklog(t *testing.T) {
	// When chunks are freed promptly the pool stays small and installs
	// mostly refresh their own lines; when buffers accumulate past the
	// cache size, installs evict valid lines and the penalty shows up.
	run := func(hold bool) time.Duration {
		r := newRig(ioat.DMAOnly())
		var held []*RxChunk
		r.dst.OnReceive = func(rx *RxChunk) {
			if hold {
				held = append(held, rx)
			} else {
				rx.Free()
			}
		}
		for i := 0; i < 64; i++ { // 64 x 64K = 4 MB inflight when held
			r.sendChunk(64 * cost.KB)
		}
		r.s.Run()
		for _, rx := range held {
			rx.Free()
		}
		return r.dst.Evictions
	}
	prompt := run(false)
	held := run(true)
	if held <= prompt {
		t.Fatalf("pollution penalty with backlog (%v) not above prompt free (%v)", held, prompt)
	}
}

func TestTxCostTSO(t *testing.T) {
	r := newRig(ioat.None())
	noTSO := r.dst.TxCost(64 * cost.KB)
	r.p.TSO = true
	withTSO := r.dst.TxCost(64 * cost.KB)
	if withTSO >= noTSO {
		t.Fatalf("TSO tx cost %v not below host segmentation %v", withTSO, noTSO)
	}
}

func TestRxBufSizeCoversJumbo(t *testing.T) {
	p := cost.Default()
	p.MTU = 2048
	if got := rxBufSize(p); got < p.MSS()+p.HeaderBytes {
		t.Fatalf("rx buffer %d too small for jumbo frame", got)
	}
	p.MTU = 9000
	if got := rxBufSize(p); got < p.MSS()+p.HeaderBytes {
		t.Fatalf("rx buffer %d too small for 9000 MTU", got)
	}
}

func TestPoolRecycling(t *testing.T) {
	r := newRig(ioat.None())
	r.dst.OnReceive = func(rx *RxChunk) { rx.Free() }
	for i := 0; i < 50; i++ {
		r.sendChunk(16 * cost.KB)
	}
	r.s.Run()
	if r.dst.PoolLiveBytes() != 0 {
		t.Fatalf("pool leak: %d live bytes", r.dst.PoolLiveBytes())
	}
}
