// Package nic models the network interface and its receive path: kernel
// receive buffers, interrupt coalescing, per-frame protocol processing
// priced through the cache, transmit segmentation (with or without TSO),
// and the three I/OAT features — split-header delivery, full-packet vs
// header-only direct cache placement, and multiple receive queues.
//
// Granularity is the chunk: a burst of back-to-back frames delivered by
// the link layer as one event, with per-frame costs computed in closed
// form (and through the cache model) inside the chunk.
package nic

import (
	"fmt"
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/fault"
	"ioatsim/internal/ioat"
	"ioatsim/internal/link"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
	"ioatsim/internal/trace"
)

// Flow is what the NIC needs to know about a transport flow: a stable id
// for receive-queue hashing and the address of its connection state, whose
// cache residency the cost model tracks.
type Flow interface {
	FlowID() int
	StateAddr() mem.Addr
}

// RxChunk is one received burst after protocol processing: the payload
// sits in kernel buffers awaiting its copy to user space.
type RxChunk struct {
	Chunk *link.Chunk
	Flow  Flow
	// Bufs holds one kernel buffer per frame; payload fills each up to
	// the MSS. They are returned to the pool by Free.
	Bufs []mem.Buffer
	nic  *NIC
	// Port is the index of the port the chunk arrived on.
	Port int
	// ReadyAt is when softirq processing finished.
	ReadyAt sim.Time
	// arrived is when the last bit hit the wire-side of the port, kept
	// for the softirq-ordering invariant.
	arrived sim.Time
}

// Free returns the chunk's kernel buffers to the NIC's pool and recycles
// the chunk descriptors. The receive path calls this when the owning recv
// call returns (the skbs stay on the socket queue until then, as in the
// kernel's net_dma).
//
//ioat:hotpath
func (rx *RxChunk) Free() {
	n := rx.nic
	for _, b := range rx.Bufs {
		n.rxPool.Put(b)
	}
	rx.Bufs = rx.Bufs[:0]
	rx.Chunk.Release()
	rx.Chunk = nil
	rx.Flow = nil
	n.rxFree = append(n.rxFree, rx)
}

// NIC is one node's network interface: a set of ports sharing the node's
// receive resources.
type NIC struct {
	S    *sim.Simulator
	P    *cost.Params
	CPU  *cpu.CPU
	Mem  *mem.Model
	DMA  *dma.Engine
	Feat ioat.Features
	Node string

	Ports []*link.Port

	rxPool       *mem.Pool
	hdrRing      mem.Buffer
	hdrOff       int
	hdrSlotBytes int        // bytes consumed per split-header ring slot
	rxFree       []*RxChunk // recycled chunk descriptors (with their Bufs backing)

	// OnReceive is invoked (in event context, after softirq processing)
	// for every received chunk. The transport installs it.
	OnReceive func(rx *RxChunk)

	// Fault, when non-nil, bounds the receive ring: chunks that do not
	// fit are dropped before any protocol work is priced. Installed by
	// host construction under a fault plan; nil is unbounded (the seed
	// behaviour) and costs one pointer compare per chunk.
	Fault *fault.NICFault

	// Stats.
	RxChunks   int64
	RxFrames   int64
	Interrupts int64
	Evictions  time.Duration // total pollution penalty charged

	chk *check.Checker
	obs *trace.Obs
}

// SetObs attaches the node's observability sinks to the NIC and all its
// ports: chunk arrivals become instants on the nic track and softirq
// work is attributed per receive core.
func (n *NIC) SetObs(o *trace.Obs) {
	n.obs = o
	for _, p := range n.Ports {
		p.SetObs(o)
	}
}

// New returns a NIC with nports ports attached to the node.
func New(s *sim.Simulator, p *cost.Params, c *cpu.CPU, m *mem.Model,
	e *dma.Engine, feat ioat.Features, node string, nports int) *NIC {
	n := &NIC{S: s, P: p, CPU: c, Mem: m, DMA: e, Feat: feat, Node: node,
		chk: check.Enabled(s)}
	n.rxPool = mem.NewPool(m.Space, rxBufSize(p))
	n.hdrRing = m.Space.Alloc(p.HeaderRingBytes, 0)
	n.hdrSlotBytes = p.HeaderLines * p.CacheLine
	for i := 0; i < nports; i++ {
		i := i
		port := link.NewPort(s, node, i, p.PortRateBps, p.PropDelay)
		port.Deliver = func(c *link.Chunk) { n.deliver(i, c) }
		n.Ports = append(n.Ports, port)
	}
	return n
}

// rxBufSize picks a kernel receive-buffer size that holds one frame.
func rxBufSize(p *cost.Params) int {
	need := p.MSS() + p.HeaderBytes
	size := p.RxBufSize
	if size <= 0 {
		// Doubling a non-positive size would loop forever; Params.Validate
		// rejects this upstream, so reaching it means a runner skipped
		// validation.
		panic(fmt.Sprintf("nic: non-positive RxBufSize %d", size))
	}
	for size < need {
		size *= 2
	}
	return size
}

// Port returns port i.
func (n *NIC) Port(i int) *link.Port { return n.Ports[i] }

// RxCore returns the core that processes receive interrupts for the
// given flow. Without multiple receive queues, all protocol processing
// lands on the single CPU that handles the controllers' interrupts
// (paper §2.2.3: "even on multi-CPU systems, processing occurs on a
// single CPU"); with them, flows spread across all cores.
//
//ioat:hotpath
func (n *NIC) RxCore(port int, f Flow) int {
	if n.Feat.MultiQueue {
		return f.FlowID() % n.CPU.NumCores()
	}
	return 0
}

// hdrSlot returns the next split-header ring slot (2 lines per frame).
//
//ioat:hotpath
func (n *NIC) hdrSlot() mem.Addr {
	if n.hdrOff+n.hdrSlotBytes > n.hdrRing.Size {
		n.hdrOff = 0
	}
	a := n.hdrRing.Addr + mem.Addr(n.hdrOff)
	n.hdrOff += n.hdrSlotBytes
	return a
}

// deliver is the link-layer entry point: it prices the interrupt and
// per-frame protocol work of the chunk, runs it on the flow's receive
// core, and then hands the chunk to the transport.
//
//ioat:hotpath
func (n *NIC) deliver(port int, c *link.Chunk) {
	flow, ok := c.Meta.(Flow)
	if !ok {
		panic("nic: chunk without transport flow metadata")
	}
	p := n.P
	frames := c.Frames
	if n.Fault != nil && !n.Fault.Admit(frames, c.Bytes) {
		// Receive-ring overflow: the frames arrived but had no
		// descriptors to land in. The chunk vanishes before any
		// interrupt or protocol work; the transport's retransmission
		// path recovers the bytes.
		if n.chk != nil {
			n.chk.Ledger("fault:nic-dropped").In(int64(c.Bytes))
		}
		if n.obs != nil {
			n.obs.Instant(trace.TidNIC, trace.SiteNICDrop, int64(c.Bytes))
		}
		c.Release()
		return
	}
	n.RxChunks++
	n.RxFrames += int64(frames)

	// Interrupts: the driver coalesces up to CoalesceFrames back-to-back
	// frames per interrupt.
	intrs := (frames + p.CoalesceFrames - 1) / p.CoalesceFrames
	if n.chk != nil {
		// Exactly enough interrupts to cover the burst, never more.
		n.chk.Assert(intrs*p.CoalesceFrames >= frames && (intrs-1)*p.CoalesceFrames < frames,
			"nic", "%d interrupts for %d frames at budget %d", intrs, frames, p.CoalesceFrames)
		n.chk.Assert(p.Frames(c.Bytes) == frames,
			"nic", "chunk of %d bytes arrived in %d frames, segmentation says %d",
			c.Bytes, frames, p.Frames(c.Bytes))
	}
	n.Interrupts += int64(intrs)
	work := time.Duration(intrs) * p.Intr

	// Per-frame driver + protocol work.
	work += time.Duration(frames) * (p.FrameProc + p.BufMgmt)

	// Buffer placement and header access, frame by frame, through the
	// cache model. The chunk descriptor and its buffer slice come from
	// the NIC's free list, so a steady-state flow allocates nothing here.
	var rx *RxChunk
	if nf := len(n.rxFree); nf > 0 {
		rx = n.rxFree[nf-1]
		n.rxFree = n.rxFree[:nf-1]
	} else {
		//ioatlint:allow hotpathalloc — rx-descriptor free-list refill: Free recycles every descriptor
		rx = &RxChunk{nic: n}
	}
	bufs := rx.Bufs[:0]
	remaining := c.Bytes
	mss := p.MSS()
	stateAddr := flow.StateAddr()
	for i := 0; i < frames; i++ {
		payload := mss
		if payload > remaining {
			payload = remaining
		}
		remaining -= payload
		b := n.rxPool.Get()
		bufs = append(bufs, b)

		switch {
		case n.Feat.SplitHeader:
			// Header -> dedicated ring, placed directly in cache;
			// payload -> kernel buffer, memory only.
			n.Mem.DMAWrite(b.Addr, payload)
			slot := n.hdrSlot()
			n.Mem.InstallHeader(slot, p.HeaderBytes)
			work += n.Mem.RandomCost(slot, p.HeaderLines)
		case n.Feat.DMACopy:
			// I/OAT platform without split headers: the whole frame is
			// placed in the cache (full-packet DCA); the valid lines it
			// displaces are the pollution the paper describes.
			pen := n.Mem.InstallPacket(b.Addr, payload+p.HeaderBytes)
			n.Evictions += pen
			work += pen
			work += n.Mem.RandomCost(b.Addr, p.HeaderLines)
		default:
			// Traditional path: NIC DMA to memory, headers read from
			// DRAM (the cached copy, if any, was just invalidated).
			n.Mem.DMAWrite(b.Addr, payload+p.HeaderBytes)
			work += n.Mem.RandomCost(b.Addr, p.HeaderLines)
		}

		// Connection-state accesses for this frame.
		work += n.Mem.RandomCost(stateAddr, p.ConnStateLines)
	}

	if n.chk != nil {
		// The per-frame loop must distribute the chunk's payload exactly
		// once across its kernel buffers.
		n.chk.Assert(remaining == 0,
			"nic", "chunk of %d bytes left %d bytes unplaced after %d frames",
			c.Bytes, remaining, frames)
		n.chk.Assert(n.rxPool.Live <= n.rxPool.Total,
			"nic", "pool has %d live buffers but only %d were ever created",
			n.rxPool.Live, n.rxPool.Total)
		n.chk.Ledger("nic:rx-bytes").In(int64(c.Bytes))
	}

	rx.Chunk, rx.Flow, rx.Bufs, rx.Port, rx.arrived = c, flow, bufs, port, n.S.Now()
	if n.obs != nil {
		n.obs.Instant(trace.TidNIC, trace.SiteNICRx, int64(c.Bytes))
	}
	n.CPU.SubmitOnArgSite(n.RxCore(port, flow), trace.SiteSoftirq, work, rxReady, rx)
}

// rxReady is the pre-bound softirq-completion event: it fires on the
// receive core when the chunk's protocol work has drained, and hands the
// chunk to the transport. Package-level so scheduling it costs no closure.
//
//ioat:hotpath
func rxReady(a any) {
	rx := a.(*RxChunk)
	n := rx.nic
	rx.ReadyAt = n.S.Now()
	if n.Fault != nil {
		n.Fault.Drain(rx.Chunk.Frames)
	}
	if n.chk != nil {
		// Softirq completion cannot precede frame arrival.
		n.chk.Assert(rx.ReadyAt >= rx.arrived,
			"nic", "chunk ready at %v before arrival at %v", rx.ReadyAt, rx.arrived)
		n.chk.Ledger("nic:rx-bytes").Out(int64(rx.Chunk.Bytes))
	}
	if n.OnReceive == nil {
		panic("nic: no transport handler installed")
	}
	n.OnReceive(rx)
}

// TxComplete charges the transmit-completion work (interrupt, descriptor
// reclaim, skb free) for n payload bytes sent on the given port to the
// interrupt core. It runs asynchronously to the sending thread.
//
//ioat:hotpath
func (n *NIC) TxComplete(port int, f Flow, bytes int) {
	frames := n.P.Frames(bytes)
	n.CPU.SubmitOnSite(n.RxCore(port, f), trace.SiteTxComplete,
		time.Duration(frames)*n.P.TxCompleteFrame, nil)
}

// TxCost returns the sender-side CPU cost of segmenting and queueing n
// payload bytes: per-frame work on the host unless TSO lets the NIC
// segment.
//
//ioat:hotpath
func (n *NIC) TxCost(bytes int) time.Duration {
	frames := n.P.Frames(bytes)
	per := n.P.TxFrame
	if n.P.TSO {
		per = n.P.TSOFrame
	}
	return time.Duration(frames) * per
}

// PoolLiveBytes reports the kernel receive buffers currently in use —
// the receive-path working set whose size drives cache behaviour.
func (n *NIC) PoolLiveBytes() int {
	return n.rxPool.Live * n.rxPool.BufSize()
}
