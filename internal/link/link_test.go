package link

import (
	"testing"
	"time"

	"ioatsim/internal/sim"
)

const gig = 1000 * 1000 * 1000

func pair(s *sim.Simulator) (*Port, *Port) {
	a := NewPort(s, "a", 0, gig, time.Microsecond)
	b := NewPort(s, "b", 0, gig, time.Microsecond)
	return a, b
}

func TestSingleChunkLatency(t *testing.T) {
	s := sim.New()
	a, b := pair(s)
	var gotAt sim.Time = -1
	b.Deliver = func(c *Chunk) { gotAt = s.Now() }
	// 1250 wire bytes = 10000 bits = 10 us at 1 Gb/s, +1 us prop.
	a.Send(b, &Chunk{Bytes: 1200, Frames: 1, WireBytes: 1250})
	s.Run()
	if gotAt != sim.Time(11*time.Microsecond) {
		t.Fatalf("gotAt = %v, want 11us", gotAt)
	}
}

func TestTxSerialization(t *testing.T) {
	s := sim.New()
	a, b := pair(s)
	var arrivals []sim.Time
	b.Deliver = func(c *Chunk) { arrivals = append(arrivals, s.Now()) }
	for i := 0; i < 3; i++ {
		a.Send(b, &Chunk{Bytes: 1200, Frames: 1, WireBytes: 1250})
	}
	s.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	// Back-to-back chunks are spaced by serialization time (10 us).
	for i := 1; i < 3; i++ {
		if arrivals[i]-arrivals[i-1] != sim.Time(10*time.Microsecond) {
			t.Fatalf("spacing = %v, want 10us", arrivals[i]-arrivals[i-1])
		}
	}
}

func TestRxContention(t *testing.T) {
	// Two senders funnel into one receive port: the receive side must
	// serialize, halving each sender's delivered rate.
	s := sim.New()
	recv := NewPort(s, "proxy", 0, gig, time.Microsecond)
	var arrivals []sim.Time
	recv.Deliver = func(c *Chunk) { arrivals = append(arrivals, s.Now()) }
	c1 := NewPort(s, "c1", 0, gig, time.Microsecond)
	c2 := NewPort(s, "c2", 0, gig, time.Microsecond)
	c1.Send(recv, &Chunk{Bytes: 1200, Frames: 1, WireBytes: 1250})
	c2.Send(recv, &Chunk{Bytes: 1200, Frames: 1, WireBytes: 1250})
	s.Run()
	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %v", arrivals)
	}
	if arrivals[1]-arrivals[0] != sim.Time(10*time.Microsecond) {
		t.Fatalf("rx not serialized: %v", arrivals)
	}
}

func TestFullDuplex(t *testing.T) {
	// Opposite directions must not interfere.
	s := sim.New()
	a, b := pair(s)
	var aGot, bGot sim.Time
	a.Deliver = func(c *Chunk) { aGot = s.Now() }
	b.Deliver = func(c *Chunk) { bGot = s.Now() }
	a.Send(b, &Chunk{Bytes: 1200, Frames: 1, WireBytes: 1250})
	b.Send(a, &Chunk{Bytes: 1200, Frames: 1, WireBytes: 1250})
	s.Run()
	want := sim.Time(11 * time.Microsecond)
	if aGot != want || bGot != want {
		t.Fatalf("aGot=%v bGot=%v, want both %v (full duplex)", aGot, bGot, want)
	}
}

func TestAccounting(t *testing.T) {
	s := sim.New()
	a, b := pair(s)
	b.Deliver = func(c *Chunk) {}
	a.Send(b, &Chunk{Bytes: 1000, Frames: 1, WireBytes: 1100})
	a.Send(b, &Chunk{Bytes: 2000, Frames: 2, WireBytes: 2200})
	s.Run()
	if a.TxBytes != 3000 || b.RxBytes != 3000 {
		t.Fatalf("payload accounting: tx=%d rx=%d", a.TxBytes, b.RxBytes)
	}
	if a.TxWireBytes != 3300 || b.RxWireBytes != 3300 {
		t.Fatalf("wire accounting: tx=%d rx=%d", a.TxWireBytes, b.RxWireBytes)
	}
}

func TestLineRateCeiling(t *testing.T) {
	// Saturating one port for 10 ms of virtual time must deliver at most
	// line rate.
	s := sim.New()
	a, b := pair(s)
	b.Deliver = func(c *Chunk) {}
	const wire = 64 * 1024
	n := 0
	for sim.Time(0).Add(a.TxBacklog()) < sim.Time(10*time.Millisecond) {
		a.Send(b, &Chunk{Bytes: wire - 2000, Frames: 45, WireBytes: wire})
		n++
	}
	end := s.Run()
	rate := float64(b.RxWireBytes*8) / time.Duration(end).Seconds()
	if rate > gig*1.001 {
		t.Fatalf("delivered above line rate: %.0f bps", rate)
	}
	if rate < gig*0.95 {
		t.Fatalf("saturated port below 95%% line rate: %.0f bps", rate)
	}
}

func TestBackpressureVisible(t *testing.T) {
	s := sim.New()
	a, b := pair(s)
	b.Deliver = func(c *Chunk) {}
	a.Send(b, &Chunk{Bytes: 1, Frames: 1, WireBytes: 12500}) // 100 us
	if got := a.TxBacklog(); got != 100*time.Microsecond {
		t.Fatalf("backlog = %v, want 100us", got)
	}
	s.Run()
}
