// Package link models the Ethernet fabric: full-duplex ports with line-
// rate serialization on both the transmit and receive side, and a fixed
// switch/propagation latency. Simulation granularity is the chunk — a
// burst of back-to-back frames belonging to one transport segment group —
// with per-frame wire overheads folded into the chunk's wire size.
package link

import (
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/fault"
	"ioatsim/internal/sim"
	"ioatsim/internal/trace"
)

// Chunk is one burst of frames in flight.
type Chunk struct {
	// Bytes is the transport payload carried.
	Bytes int
	// Frames is how many wire frames the chunk spans.
	Frames int
	// WireBytes is the on-wire size including all per-frame overheads.
	WireBytes int
	// Seq is the transport stream offset of the chunk's first payload
	// byte. The fabric never reads it; the transport's loss-recovery
	// path uses it to detect gaps and duplicates at the receiver.
	Seq int64
	// Meta carries transport-layer context opaquely through the fabric.
	Meta any

	// pool, when non-nil, is where Release returns the chunk; src and
	// dst carry the in-flight endpoints between Send and its delivery
	// event, so delivery needs no per-chunk closure.
	pool *ChunkPool
	src  *Port
	dst  *Port
}

// ChunkPool recycles Chunks through a free list so a steady-state flow
// allocates no chunk per send. A transport owns one pool per stack; the
// receive path calls Release when the payload's kernel buffers are
// freed, which returns the chunk to the pool it came from (chunks cross
// nodes, so the consumer and producer differ).
type ChunkPool struct {
	free []*Chunk
}

// NewChunkPool returns an empty pool.
func NewChunkPool() *ChunkPool { return &ChunkPool{} }

// Get returns a zeroed chunk backed by this pool.
//
//ioat:hotpath
func (cp *ChunkPool) Get() *Chunk {
	if n := len(cp.free); n > 0 {
		c := cp.free[n-1]
		cp.free = cp.free[:n-1]
		return c
	}
	//ioatlint:allow hotpathalloc — pool refill when the free list is empty: Release recycles every chunk, so the steady state reuses
	return &Chunk{pool: cp}
}

// Release returns the chunk to its origin pool. Chunks built without a
// pool (struct literals in tests and custom drivers) are left to the
// garbage collector.
//
//ioat:hotpath
func (c *Chunk) Release() {
	cp := c.pool
	if cp == nil {
		return
	}
	*c = Chunk{pool: cp}
	cp.free = append(cp.free, c)
}

// Port is one full-duplex Ethernet port. The transmit and receive
// directions serialize independently at the port's line rate.
type Port struct {
	S       *sim.Simulator
	Node    string
	Index   int
	RateBps int64
	Prop    time.Duration

	// Deliver is invoked at this port when a chunk has been fully
	// received. The NIC layer installs it.
	Deliver func(c *Chunk)

	// Fault, when non-nil, decides per chunk whether the wire eats the
	// transmission (loss, flap windows). Installed by host construction
	// under a fault plan; nil — the seed configuration — costs one
	// pointer compare per send.
	Fault *fault.LinkFault

	txFree sim.Time
	rxFree sim.Time

	TxBytes     int64 // payload bytes transmitted
	RxBytes     int64 // payload bytes received
	TxWireBytes int64
	RxWireBytes int64

	chk *check.Checker
	obs *trace.Obs
}

// SetObs attaches the owning node's observability sinks; each chunk then
// records its wire-occupancy span on the port's link track.
func (p *Port) SetObs(o *trace.Obs) { p.obs = o }

// NewPort returns an idle port.
func NewPort(s *sim.Simulator, node string, index int, rateBps int64, prop time.Duration) *Port {
	if rateBps <= 0 {
		panic("link: non-positive rate")
	}
	return &Port{S: s, Node: node, Index: index, RateBps: rateBps, Prop: prop,
		chk: check.Enabled(s)}
}

// serTime returns the serialization time of n wire bytes at the port rate.
func (p *Port) serTime(n int) time.Duration {
	return time.Duration(int64(n) * 8 * int64(time.Second) / p.RateBps)
}

// Send transmits c to dst. The chunk occupies this port's transmit side
// and dst's receive side for its serialization time; dst.Deliver fires
// when the last bit has arrived.
//
//ioat:hotpath
func (p *Port) Send(dst *Port, c *Chunk) {
	if c.WireBytes <= 0 {
		panic("link: empty chunk")
	}
	now := p.S.Now()
	ser := p.serTime(c.WireBytes)
	if p.chk != nil {
		// Every chunk entering the fabric is accounted; the delivery
		// event balances it. WireBytes carries payload plus per-frame
		// overhead, so it can never be smaller than the payload.
		p.chk.Assert(c.Bytes >= 0 && c.WireBytes >= c.Bytes,
			"link", "chunk with %d payload bytes in %d wire bytes", c.Bytes, c.WireBytes)
		p.chk.Assert(c.Frames >= 1,
			"link", "chunk of %d bytes spans %d frames", c.Bytes, c.Frames)
		p.chk.Ledger("link:payload").In(int64(c.Bytes))
		p.chk.Ledger("link:wire").In(int64(c.WireBytes))
	}

	txStart := p.txFree
	if txStart < now {
		txStart = now
	}
	txEnd := txStart.Add(ser)
	p.txFree = txEnd
	p.TxBytes += int64(c.Bytes)
	p.TxWireBytes += int64(c.WireBytes)
	if p.obs != nil {
		// The transmit-side serialization window only: per-port spans
		// stay non-overlapping, which trace viewers require per track.
		p.obs.Span(trace.TidLinkBase+int32(p.Index), trace.SiteLinkChunk, txStart, ser, int64(c.WireBytes))
	}

	if p.Fault != nil && p.Fault.Drop(now, c.Frames, c.Bytes) {
		// The wire eats the chunk: the transmit side still paid its
		// serialization window (the sender cannot know), but nothing
		// arrives. The link ledgers close immediately — the bytes left
		// the fabric — and the fault ledger records where they went, so
		// strict runs stay balanced under loss.
		if p.chk != nil {
			p.chk.Ledger("link:payload").Out(int64(c.Bytes))
			p.chk.Ledger("link:wire").Out(int64(c.WireBytes))
			p.chk.Ledger("fault:link-dropped").In(int64(c.Bytes))
		}
		if p.obs != nil {
			p.obs.Instant(trace.TidLinkBase+int32(p.Index), trace.SiteLinkDrop, int64(c.Bytes))
		}
		c.Release()
		return
	}

	arrive := txEnd.Add(p.Prop)
	deliverAt := arrive
	if earliest := dst.rxFree.Add(dst.serTime(c.WireBytes)); earliest > deliverAt {
		deliverAt = earliest
	}
	dst.rxFree = deliverAt

	c.src, c.dst = p, dst
	p.S.AtArg(deliverAt, deliverChunk, c)
}

// deliverChunk is the pre-bound delivery event: the chunk itself carries
// its endpoints, so the steady-state fabric path schedules without a
// per-chunk closure.
//
//ioat:hotpath
func deliverChunk(a any) {
	c := a.(*Chunk)
	p, dst := c.src, c.dst
	c.src, c.dst = nil, nil
	dst.RxBytes += int64(c.Bytes)
	dst.RxWireBytes += int64(c.WireBytes)
	if p.chk != nil {
		p.chk.Ledger("link:payload").Out(int64(c.Bytes))
		p.chk.Ledger("link:wire").Out(int64(c.WireBytes))
	}
	if dst.Deliver == nil {
		panic("link: chunk delivered to port with no NIC attached")
	}
	dst.Deliver(c)
}

// TxBacklog reports how far in the future the transmit side is committed.
func (p *Port) TxBacklog() time.Duration {
	now := p.S.Now()
	if p.txFree <= now {
		return 0
	}
	return p.txFree.Sub(now)
}
