package ioat

import (
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
)

func TestLabels(t *testing.T) {
	cases := map[string]Features{
		"non-I/OAT":  None(),
		"I/OAT":      Linux(),
		"I/OAT-DMA":  DMAOnly(),
		"I/OAT-FULL": Full(),
	}
	for want, f := range cases {
		if got := f.Label(); got != want {
			t.Errorf("Label(%+v) = %q, want %q", f, got, want)
		}
	}
}

func TestLinuxMatchesPaper(t *testing.T) {
	f := Linux()
	if !f.DMACopy || !f.SplitHeader {
		t.Fatal("Linux feature set must enable DMA copy and split headers")
	}
	if f.MultiQueue {
		t.Fatal("multiple receive queues were disabled in the paper's kernel")
	}
}

func newNode() (*sim.Simulator, *Copier) {
	s := sim.New()
	p := cost.Default()
	m := mem.NewModel(p)
	c := cpu.New(s, p)
	e := dma.New(s, p, m)
	return s, NewCopier(c, e, m)
}

func TestAsyncCopyOverlap(t *testing.T) {
	s, c := newNode()
	src := c.Mem.Space.Alloc(64*cost.KB, 0)
	dst := c.Mem.Space.Alloc(64*cost.KB, 0)
	var setupDone, copyDone, computeDone sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		done := c.Start(p, src.Addr, dst.Addr, 64*cost.KB)
		setupDone = p.Now()
		// Overlap: compute while the engine copies.
		c.CPU.Exec(p, 20*time.Microsecond)
		computeDone = p.Now()
		done.Wait(p)
		copyDone = p.Now()
	})
	s.Run()
	if setupDone >= sim.Time(10*time.Microsecond) {
		t.Fatalf("setup blocked the CPU too long: %v", setupDone)
	}
	if computeDone >= copyDone {
		t.Fatalf("no overlap: compute finished at %v, copy at %v", computeDone, copyDone)
	}
	// Total elapsed should be ~ transfer time, not transfer + compute.
	xfer := c.Engine.TransferTime(64 * cost.KB)
	if copyDone > sim.Time(setupDone).Add(xfer+time.Microsecond) {
		t.Fatalf("copy took %v, want ~%v after setup", copyDone, xfer)
	}
}

func TestSyncCopyBlocksCaller(t *testing.T) {
	s, c := newNode()
	src := c.Mem.Space.Alloc(64*cost.KB, 0)
	dst := c.Mem.Space.Alloc(64*cost.KB, 0)
	var elapsed sim.Time
	s.Spawn("app", func(p *sim.Proc) {
		c.CopySync(p, src.Addr, dst.Addr, 64*cost.KB)
		elapsed = p.Now()
	})
	s.Run()
	// Cold 64K copy is ~43 us of CPU time, all blocking.
	if elapsed < sim.Time(30*time.Microsecond) {
		t.Fatalf("sync copy returned too fast: %v", elapsed)
	}
}

func TestAsyncBeatsSyncForLargeColdCopies(t *testing.T) {
	// The paper's Fig. 6 crossover, end to end: above 8K an async copy
	// (setup cost only, engine overlapped) beats a cold CPU copy.
	s, c := newNode()
	src := c.Mem.Space.Alloc(64*cost.KB, 0)
	dst := c.Mem.Space.Alloc(64*cost.KB, 0)
	var cpuBusyAsync time.Duration
	s.Spawn("app", func(p *sim.Proc) {
		start := c.CPU.BusyTime()
		done := c.Start(p, src.Addr, dst.Addr, 64*cost.KB)
		cpuBusyAsync = c.CPU.BusyTime() - start
		done.Wait(p)
	})
	s.Run()

	s2, c2 := newNode()
	var cpuBusySync time.Duration
	s2.Spawn("app", func(p *sim.Proc) {
		start := c2.CPU.BusyTime()
		c2.CopySync(p, src.Addr, dst.Addr, 64*cost.KB)
		cpuBusySync = c2.CPU.BusyTime() - start
	})
	s2.Run()

	if cpuBusyAsync >= cpuBusySync {
		t.Fatalf("async CPU cost %v not below sync %v", cpuBusyAsync, cpuBusySync)
	}
}

func TestPinRegistrationCache(t *testing.T) {
	s, c := newNode()
	src := c.Mem.Space.Alloc(64*cost.KB, 0)
	dst := c.Mem.Space.Alloc(64*cost.KB, 0)
	var first, second, afterFlush time.Duration
	s.Spawn("app", func(p *sim.Proc) {
		b0 := c.CPU.BusyTime()
		c.Start(p, src.Addr, dst.Addr, 64*cost.KB).Wait(p)
		first = c.CPU.BusyTime() - b0

		b0 = c.CPU.BusyTime()
		c.Start(p, src.Addr, dst.Addr, 64*cost.KB).Wait(p)
		second = c.CPU.BusyTime() - b0

		c.FlushPins()
		b0 = c.CPU.BusyTime()
		c.Start(p, src.Addr, dst.Addr, 64*cost.KB).Wait(p)
		afterFlush = c.CPU.BusyTime() - b0
	})
	s.Run()
	if second >= first {
		t.Fatalf("second copy (%v) did not skip pinning (%v)", second, first)
	}
	if afterFlush != first {
		t.Fatalf("flush did not force re-pin: %v vs %v", afterFlush, first)
	}
}
