// Package ioat models Intel's I/O Acceleration Technology as a
// configurable feature set (paper §2.2): split headers, the asynchronous
// DMA copy engine, and multiple receive queues. It also provides the
// user-level asynchronous memcpy API the paper's §7/§8 proposes as future
// work, built on the same copy engine.
package ioat

import (
	"time"

	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
)

// Features selects which I/OAT capabilities a node's platform exposes.
type Features struct {
	// DMACopy offloads the kernel-to-user receive copy onto the
	// asynchronous copy engine (paper §2.2.2). On the I/OAT platform it
	// also implies full-packet direct cache placement unless SplitHeader
	// confines placement to headers.
	DMACopy bool
	// SplitHeader delivers protocol headers into a small dedicated ring
	// placed directly in the cache, keeping application payload out of
	// it (paper §2.2.1).
	SplitHeader bool
	// MultiQueue spreads receive processing across cores by flow
	// (paper §2.2.3). Disabled by default, as it was in the paper's
	// Linux kernel; the ablation benches turn it on.
	MultiQueue bool
}

// None returns the traditional (non-I/OAT) configuration.
func None() Features { return Features{} }

// Linux returns the feature set the paper's kernel patch enabled:
// split headers and the DMA copy engine, with multiple receive queues
// disabled (paper §2.2.3).
func Linux() Features { return Features{DMACopy: true, SplitHeader: true} }

// DMAOnly returns the copy engine without split headers — the
// intermediate "I/OAT-DMA" configuration of the paper's §4.5 split-up.
func DMAOnly() Features { return Features{DMACopy: true} }

// Full returns every feature including multiple receive queues, the
// configuration the paper could not measure.
func Full() Features {
	return Features{DMACopy: true, SplitHeader: true, MultiQueue: true}
}

// Label returns the name the paper uses for this configuration.
func (f Features) Label() string {
	switch {
	case f.DMACopy && f.SplitHeader && f.MultiQueue:
		return "I/OAT-FULL"
	case f.DMACopy && f.SplitHeader:
		return "I/OAT"
	case f.DMACopy:
		return "I/OAT-DMA"
	case !f.DMACopy && !f.SplitHeader && !f.MultiQueue:
		return "non-I/OAT"
	default:
		return "I/OAT-partial"
	}
}

// Copier is the user-level asynchronous memory-copy service (paper §8's
// "asynchronous memory copy operation to user applications"): it pins the
// buffers, programs the engine, and lets the caller overlap computation
// with the copy.
type Copier struct {
	CPU    *cpu.CPU
	Engine *dma.Engine
	Mem    *mem.Model

	// pinned is the registration cache: buffers pinned once stay pinned
	// (like RDMA memory registration), so steady-state copies pay only
	// the descriptor setup. FlushPins models an application without
	// buffer reuse.
	pinned map[mem.Addr]int
}

// NewCopier returns a copier bound to one node's CPU, engine and memory.
func NewCopier(c *cpu.CPU, e *dma.Engine, m *mem.Model) *Copier {
	return &Copier{CPU: c, Engine: e, Mem: m, pinned: make(map[mem.Addr]int)}
}

// pinCost returns the CPU cost to pin [addr, addr+n), zero if that exact
// region is already registered.
func (c *Copier) pinCost(addr mem.Addr, n int) time.Duration {
	if c.pinned[addr] >= n {
		return 0
	}
	c.pinned[addr] = n
	return c.Engine.PinCost(n)
}

// FlushPins drops the registration cache, forcing the next copies to
// re-pin (the paper §7's caveat scenario).
func (c *Copier) FlushPins() { c.pinned = make(map[mem.Addr]int) }

// Start begins an asynchronous copy of n bytes from src to dst. The
// calling process is blocked only for the CPU setup portion (page
// pinning on first use + descriptor programming); the returned
// completion fires when the engine has moved the data. Between Start and
// Wait the caller's CPU is free — that is the point of the engine.
func (c *Copier) Start(p *sim.Proc, src, dst mem.Addr, n int) *sim.Completion {
	setup := c.Engine.SetupCost(n) + c.pinCost(src, n) + c.pinCost(dst, n)
	c.CPU.Exec(p, setup)
	return c.Engine.Submit(src, dst, n)
}

// CopySync performs a blocking CPU memcpy through the cache, for
// comparison with Start (the paper's Fig. 6 copy-cache / copy-nocache
// bars).
func (c *Copier) CopySync(p *sim.Proc, src, dst mem.Addr, n int) time.Duration {
	d := c.Mem.CopyCost(src, dst, n)
	c.CPU.Exec(p, d)
	return d
}
