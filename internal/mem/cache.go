package mem

import "fmt"

// Cache is a set-associative LRU cache with write-allocate semantics,
// indexed by synthetic physical address. It tracks only presence, not
// data; the cost model turns hit/miss outcomes into time.
type Cache struct {
	lineSize int
	ways     int
	nsets    int
	shift    uint // log2(lineSize)
	mask     uint64

	lines []cacheLine // nsets * ways
	tick  uint64

	Hits   uint64
	Misses uint64
}

type cacheLine struct {
	tag  uint64 // line address + 1 (0 = invalid)
	last uint64 // LRU timestamp
}

// NewCache returns a cache of the given total size, line size and
// associativity. Size must be a multiple of lineSize*ways and the derived
// set count must be a power of two.
func NewCache(size, lineSize, ways int) *Cache {
	if size <= 0 || lineSize <= 0 || ways <= 0 {
		panic("mem: bad cache geometry")
	}
	nsets := size / (lineSize * ways)
	if nsets == 0 || nsets&(nsets-1) != 0 {
		panic("mem: cache set count must be a power of two")
	}
	if lineSize&(lineSize-1) != 0 {
		panic("mem: line size must be a power of two")
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &Cache{
		lineSize: lineSize,
		ways:     ways,
		nsets:    nsets,
		shift:    shift,
		mask:     uint64(nsets - 1),
		lines:    make([]cacheLine, nsets*ways),
	}
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Size returns the total capacity in bytes.
func (c *Cache) Size() int { return c.nsets * c.ways * c.lineSize }

// Access touches the line containing addr, allocating it on miss, and
// reports whether it was a hit.
func (c *Cache) Access(addr Addr) bool {
	line := uint64(addr) >> c.shift
	set := int(line & c.mask)
	base := set * c.ways
	c.tick++
	tag := line + 1
	victim := base
	oldest := ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			c.lines[i].last = c.tick
			c.Hits++
			return true
		}
		if c.lines[i].last < oldest {
			oldest = c.lines[i].last
			victim = i
		}
	}
	c.lines[victim] = cacheLine{tag: tag, last: c.tick}
	c.Misses++
	return false
}

// Contains reports whether the line holding addr is resident, without
// updating LRU state or statistics.
func (c *Cache) Contains(addr Addr) bool {
	line := uint64(addr) >> c.shift
	set := int(line & c.mask)
	base := set * c.ways
	tag := line + 1
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// AccessRange touches every line of [addr, addr+n) and returns the hit
// and miss counts. It is the bulk path under every modeled copy and
// checksum, so the set scan is inlined per line rather than routed
// through Access: one pass, set-local slices, no per-line call.
func (c *Cache) AccessRange(addr Addr, n int) (hits, misses int) {
	if n <= 0 {
		return 0, 0
	}
	first := uint64(addr) >> c.shift
	last := (uint64(addr) + uint64(n) - 1) >> c.shift
	for l := first; l <= last; l++ {
		ways := c.lines[int(l&c.mask)*c.ways:][:c.ways]
		c.tick++
		tag := l + 1
		hit := false
		victim := 0
		oldest := ^uint64(0)
		for i := range ways {
			if ways[i].tag == tag {
				ways[i].last = c.tick
				hit = true
				break
			}
			if ways[i].last < oldest {
				oldest = ways[i].last
				victim = i
			}
		}
		if hit {
			c.Hits++
			hits++
		} else {
			ways[victim] = cacheLine{tag: tag, last: c.tick}
			c.Misses++
			misses++
		}
	}
	return hits, misses
}

// Install brings every line of [addr, addr+n) into the cache without
// counting hits or misses — the model for direct cache placement (DCA).
// It returns how many valid lines belonging to other addresses were
// evicted to make room: the pollution a full-packet placement inflicts
// on the rest of the system.
func (c *Cache) Install(addr Addr, n int) (evicted int) {
	if n <= 0 {
		return 0
	}
	first := uint64(addr) >> c.shift
	last := (uint64(addr) + uint64(n) - 1) >> c.shift
	for l := first; l <= last; l++ {
		ways := c.lines[int(l&c.mask)*c.ways:][:c.ways]
		c.tick++
		tag := l + 1
		victim := 0
		oldest := ^uint64(0)
		found := false
		for i := range ways {
			if ways[i].tag == tag {
				ways[i].last = c.tick
				found = true
				break
			}
			if ways[i].last < oldest {
				oldest = ways[i].last
				victim = i
			}
		}
		if !found {
			if ways[victim].tag != 0 {
				evicted++
			}
			ways[victim] = cacheLine{tag: tag, last: c.tick}
		}
	}
	return evicted
}

// Invalidate drops every line of [addr, addr+n) — the coherence action a
// DMA write forces on the CPU cache (paper §2.2.2).
func (c *Cache) Invalidate(addr Addr, n int) {
	if n <= 0 {
		return
	}
	first := uint64(addr) >> c.shift
	last := (uint64(addr) + uint64(n) - 1) >> c.shift
	for l := first; l <= last; l++ {
		ways := c.lines[int(l&c.mask)*c.ways:][:c.ways]
		tag := l + 1
		for i := range ways {
			if ways[i].tag == tag {
				ways[i] = cacheLine{}
				break
			}
		}
	}
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}

// OccupiedLines returns how many valid lines the cache currently holds.
func (c *Cache) OccupiedLines() int {
	count := 0
	for i := range c.lines {
		if c.lines[i].tag != 0 {
			count++
		}
	}
	return count
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return c.nsets * c.ways }

// Audit walks the whole structure and verifies its invariants: total
// occupancy within capacity, every valid tag indexed into the set that
// holds it, no duplicate tags within a set, and no LRU stamp from the
// future. It returns the first violation found, or nil. The walk is
// O(lines), so the invariant checker runs it periodically and at the
// end of a run, not per access.
func (c *Cache) Audit() error {
	if occ := c.OccupiedLines(); occ > c.Lines() {
		return fmt.Errorf("mem: cache occupancy %d exceeds capacity %d lines", occ, c.Lines())
	}
	for set := 0; set < c.nsets; set++ {
		ways := c.lines[set*c.ways:][:c.ways]
		for i := range ways {
			if ways[i].last > c.tick {
				return fmt.Errorf("mem: set %d way %d LRU stamp %d is from the future (tick %d)",
					set, i, ways[i].last, c.tick)
			}
			if ways[i].tag == 0 {
				continue
			}
			if got := int((ways[i].tag - 1) & c.mask); got != set {
				return fmt.Errorf("mem: set %d way %d holds tag %#x which indexes set %d",
					set, i, ways[i].tag, got)
			}
			for j := i + 1; j < len(ways); j++ {
				if ways[j].tag == ways[i].tag {
					return fmt.Errorf("mem: set %d holds duplicate tag %#x (ways %d and %d)",
						set, ways[i].tag, i, j)
				}
			}
		}
	}
	return nil
}

// Resident returns how many lines of [addr, addr+n) are currently cached.
func (c *Cache) Resident(addr Addr, n int) int {
	if n <= 0 {
		return 0
	}
	count := 0
	first := uint64(addr) >> c.shift
	last := (uint64(addr) + uint64(n) - 1) >> c.shift
	for l := first; l <= last; l++ {
		if c.Contains(Addr(l << c.shift)) {
			count++
		}
	}
	return count
}
