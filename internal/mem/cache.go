package mem

import (
	"fmt"
	"math/bits"
)

// Cache is a set-associative LRU cache with write-allocate semantics,
// indexed by synthetic physical address. It tracks only presence, not
// data; the cost model turns hit/miss outcomes into time.
//
// Line state is stored structure-of-arrays per set: each set owns one
// contiguous block of 2*ways words — its tag array followed by its LRU
// stamp array — so a lookup touches two adjacent simulator cache lines
// instead of two lines half the structure apart (the layout an AoS
// []struct{tag, last} or two whole-cache arrays would force). Every bulk
// operation walks consecutive cache lines, which map to consecutive
// sets, so the walkers advance a set-base cursor (one add + wrap per
// line) instead of re-deriving set*stride from the address, and
// accumulate the LRU tick in a register, writing it back once per call.
// Outcomes — hit/miss sequences, LRU stamps, eviction choices — are
// bit-identical to the per-line AoS form.
type Cache struct {
	lineSize int
	ways     int
	nsets    int
	stride   int  // 2*ways: words of state per set
	shift    uint // log2(lineSize)
	mask     uint64

	// state holds per-set blocks: state[set*stride : set*stride+ways] are
	// the tags (line address + 1; 0 = invalid), the next ways words the
	// parallel LRU stamps.
	state []uint64
	tick  uint64

	Hits   uint64
	Misses uint64
}

// NewCache returns a cache of the given total size, line size and
// associativity. Size must be a multiple of lineSize*ways and the derived
// set count must be a power of two.
func NewCache(size, lineSize, ways int) *Cache {
	if size <= 0 || lineSize <= 0 || ways <= 0 {
		panic("mem: bad cache geometry")
	}
	nsets := size / (lineSize * ways)
	if nsets == 0 || nsets&(nsets-1) != 0 {
		panic("mem: cache set count must be a power of two")
	}
	if lineSize&(lineSize-1) != 0 {
		panic("mem: line size must be a power of two")
	}
	shift := uint(0)
	for 1<<shift != lineSize {
		shift++
	}
	return &Cache{
		lineSize: lineSize,
		ways:     ways,
		nsets:    nsets,
		stride:   2 * ways,
		shift:    shift,
		mask:     uint64(nsets - 1),
		state:    make([]uint64, nsets*2*ways),
	}
}

// LineSize returns the cache line size in bytes.
func (c *Cache) LineSize() int { return c.lineSize }

// Size returns the total capacity in bytes.
func (c *Cache) Size() int { return c.nsets * c.ways * c.lineSize }

// touch references the line with the given tag in the set whose state
// block starts at base, allocating it (with LRU eviction) on miss,
// stamping it with tick, and reports whether it hit. The tag scan runs
// before any victim tracking: a hit never pays for LRU bookkeeping, and
// a miss scans all ways anyway, so the split is outcome-identical to a
// merged scan (the victim is the lowest-indexed way with the minimal
// stamp either way).
func (c *Cache) touch(base int, tag, tick uint64) bool {
	if c.ways == 8 {
		// Constant-width fast path for the default 8-way geometry: one
		// 16-word view of the set block lets the compiler drop per-way
		// bounds checks, and tags+stamps share two adjacent lines. The
		// match scan is branchless — the hit way lands at a random
		// position, so an early-exit loop mispredicts nearly every
		// lookup; building a match bitmask costs eight flag-sets but
		// only one (well-predicted) hit/miss branch.
		st := (*[16]uint64)(c.state[base:])
		m := uint(0)
		if st[0] == tag {
			m |= 1 << 0
		}
		if st[1] == tag {
			m |= 1 << 1
		}
		if st[2] == tag {
			m |= 1 << 2
		}
		if st[3] == tag {
			m |= 1 << 3
		}
		if st[4] == tag {
			m |= 1 << 4
		}
		if st[5] == tag {
			m |= 1 << 5
		}
		if st[6] == tag {
			m |= 1 << 6
		}
		if st[7] == tag {
			m |= 1 << 7
		}
		if m != 0 {
			st[8+bits.TrailingZeros(m)] = tick
			return true
		}
		victim, oldest := 0, st[8]
		for w := 1; w < 8; w++ {
			if st[8+w] < oldest {
				oldest = st[8+w]
				victim = w
			}
		}
		st[victim] = tag
		st[8+victim] = tick
		return false
	}
	ways := c.ways
	tags := c.state[base : base+ways]
	last := c.state[base+ways : base+2*ways]
	for w := range tags {
		if tags[w] == tag {
			last[w] = tick
			return true
		}
	}
	victim, oldest := 0, last[0]
	for w := 1; w < len(last); w++ {
		if last[w] < oldest {
			oldest = last[w]
			victim = w
		}
	}
	tags[victim] = tag
	last[victim] = tick
	return false
}

// Access touches the line containing addr, allocating it on miss, and
// reports whether it was a hit.
//
//ioat:hotpath
func (c *Cache) Access(addr Addr) bool {
	line := uint64(addr) >> c.shift
	base := int(line&c.mask) * c.stride
	c.tick++
	tag := line + 1
	if c.ways == 1 {
		// Direct-mapped: the single way is both the lookup and the victim.
		hit := c.state[base] == tag
		c.state[base] = tag
		c.state[base+1] = c.tick
		if hit {
			c.Hits++
		} else {
			c.Misses++
		}
		return hit
	}
	if c.touch(base, tag, c.tick) {
		c.Hits++
		return true
	}
	c.Misses++
	return false
}

// Contains reports whether the line holding addr is resident, without
// updating LRU state or statistics.
func (c *Cache) Contains(addr Addr) bool {
	line := uint64(addr) >> c.shift
	base := int(line&c.mask) * c.stride
	tag := line + 1
	for _, t := range c.state[base : base+c.ways] {
		if t == tag {
			return true
		}
	}
	return false
}

// accessLines touches n consecutive cache lines starting at line number
// first, allocating on miss, and returns the hit and miss counts. This is
// the shared core of AccessRange and AccessLines: consecutive lines index
// consecutive sets, so the walk advances base by one set stride per line
// (wrapping at the end of the array) and keeps the tick in a register.
func (c *Cache) accessLines(first uint64, n int) (hits, misses int) {
	tick := c.tick
	tag := first + 1
	base := int(first&c.mask) * c.stride
	limit := c.nsets * c.stride
	if c.ways == 1 {
		st := c.state
		for i := 0; i < n; i++ {
			tick++
			if st[base] == tag {
				hits++
			} else {
				st[base] = tag
				misses++
			}
			st[base+1] = tick
			tag++
			base += 2
			if base == limit {
				base = 0
			}
		}
	} else {
		for i := 0; i < n; i++ {
			tick++
			if c.touch(base, tag, tick) {
				hits++
			} else {
				misses++
			}
			tag++
			base += c.stride
			if base == limit {
				base = 0
			}
		}
	}
	c.tick = tick
	c.Hits += uint64(hits)
	c.Misses += uint64(misses)
	return hits, misses
}

// AccessRange touches every line of [addr, addr+n) and returns the hit
// and miss counts. It is the bulk path under every modeled copy and
// checksum.
//
//ioat:hotpath
func (c *Cache) AccessRange(addr Addr, n int) (hits, misses int) {
	if n <= 0 {
		return 0, 0
	}
	first := uint64(addr) >> c.shift
	last := (uint64(addr) + uint64(n) - 1) >> c.shift
	return c.accessLines(first, int(last-first+1))
}

// AccessLines touches nLines consecutive lines starting with the one
// holding addr — the dependent-access pattern of protocol-header and
// connection-state reads, priced per line by Model.RandomCost.
//
//ioat:hotpath
func (c *Cache) AccessLines(addr Addr, nLines int) (hits, misses int) {
	if nLines <= 0 {
		return 0, 0
	}
	return c.accessLines(uint64(addr)>>c.shift, nLines)
}

// Install brings every line of [addr, addr+n) into the cache without
// counting hits or misses — the model for direct cache placement (DCA).
// It returns how many valid lines belonging to other addresses were
// evicted to make room: the pollution a full-packet placement inflicts
// on the rest of the system.
//
//ioat:hotpath
func (c *Cache) Install(addr Addr, n int) (evicted int) {
	if n <= 0 {
		return 0
	}
	first := uint64(addr) >> c.shift
	lastLine := (uint64(addr) + uint64(n) - 1) >> c.shift
	nLines := int(lastLine - first + 1)
	tick := c.tick
	tag := first + 1
	base := int(first&c.mask) * c.stride
	limit := c.nsets * c.stride
	if c.ways == 1 {
		st := c.state
		for i := 0; i < nLines; i++ {
			tick++
			if st[base] != tag {
				if st[base] != 0 {
					evicted++
				}
				st[base] = tag
			}
			st[base+1] = tick
			tag++
			base += 2
			if base == limit {
				base = 0
			}
		}
	} else {
		ways := c.ways
		for i := 0; i < nLines; i++ {
			tick++
			tags := c.state[base : base+ways]
			last := c.state[base+ways : base+2*ways]
			found := false
			for w := range tags {
				if tags[w] == tag {
					last[w] = tick
					found = true
					break
				}
			}
			if !found {
				victim, oldest := 0, last[0]
				for w := 1; w < len(last); w++ {
					if last[w] < oldest {
						oldest = last[w]
						victim = w
					}
				}
				if tags[victim] != 0 {
					evicted++
				}
				tags[victim] = tag
				last[victim] = tick
			}
			tag++
			base += c.stride
			if base == limit {
				base = 0
			}
		}
	}
	c.tick = tick
	return evicted
}

// Invalidate drops every line of [addr, addr+n) — the coherence action a
// DMA write forces on the CPU cache (paper §2.2.2). The whole run of
// consecutive sets is walked with one cursor; LRU state and the tick are
// untouched, as invalidation is not a reference.
//
//ioat:hotpath
func (c *Cache) Invalidate(addr Addr, n int) {
	if n <= 0 {
		return
	}
	first := uint64(addr) >> c.shift
	lastLine := (uint64(addr) + uint64(n) - 1) >> c.shift
	nLines := int(lastLine - first + 1)
	tag := first + 1
	base := int(first&c.mask) * c.stride
	limit := c.nsets * c.stride
	if c.ways == 1 {
		st := c.state
		for i := 0; i < nLines; i++ {
			if st[base] == tag {
				st[base] = 0
				st[base+1] = 0
			}
			tag++
			base += 2
			if base == limit {
				base = 0
			}
		}
		return
	}
	if c.ways == 8 {
		for i := 0; i < nLines; i++ {
			st := (*[16]uint64)(c.state[base:])
			for w := 0; w < 8; w++ {
				if st[w] == tag {
					st[w] = 0
					st[8+w] = 0
					break
				}
			}
			tag++
			base += 16
			if base == limit {
				base = 0
			}
		}
		return
	}
	ways := c.ways
	for i := 0; i < nLines; i++ {
		tags := c.state[base : base+ways]
		for w := range tags {
			if tags[w] == tag {
				tags[w] = 0
				c.state[base+ways+w] = 0
				break
			}
		}
		tag++
		base += c.stride
		if base == limit {
			base = 0
		}
	}
}

// Flush empties the cache.
func (c *Cache) Flush() {
	for i := range c.state {
		c.state[i] = 0
	}
}

// OccupiedLines returns how many valid lines the cache currently holds.
func (c *Cache) OccupiedLines() int {
	count := 0
	for base := 0; base < len(c.state); base += c.stride {
		for _, t := range c.state[base : base+c.ways] {
			if t != 0 {
				count++
			}
		}
	}
	return count
}

// Lines returns the total line capacity.
func (c *Cache) Lines() int { return c.nsets * c.ways }

// Audit walks the whole structure and verifies its invariants: total
// occupancy within capacity, every valid tag indexed into the set that
// holds it, no duplicate tags within a set, and no LRU stamp from the
// future. It returns the first violation found, or nil. The walk is
// O(lines), so the invariant checker runs it periodically and at the
// end of a run, not per access.
func (c *Cache) Audit() error {
	if occ := c.OccupiedLines(); occ > c.Lines() {
		return fmt.Errorf("mem: cache occupancy %d exceeds capacity %d lines", occ, c.Lines())
	}
	for set := 0; set < c.nsets; set++ {
		base := set * c.stride
		tags := c.state[base : base+c.ways]
		last := c.state[base+c.ways : base+2*c.ways]
		for i := range tags {
			if last[i] > c.tick {
				return fmt.Errorf("mem: set %d way %d LRU stamp %d is from the future (tick %d)",
					set, i, last[i], c.tick)
			}
			if tags[i] == 0 {
				continue
			}
			if got := int((tags[i] - 1) & c.mask); got != set {
				return fmt.Errorf("mem: set %d way %d holds tag %#x which indexes set %d",
					set, i, tags[i], got)
			}
			for j := i + 1; j < len(tags); j++ {
				if tags[j] == tags[i] {
					return fmt.Errorf("mem: set %d holds duplicate tag %#x (ways %d and %d)",
						set, tags[i], i, j)
				}
			}
		}
	}
	return nil
}

// Resident returns how many lines of [addr, addr+n) are currently cached.
func (c *Cache) Resident(addr Addr, n int) int {
	if n <= 0 {
		return 0
	}
	count := 0
	first := uint64(addr) >> c.shift
	last := (uint64(addr) + uint64(n) - 1) >> c.shift
	for l := first; l <= last; l++ {
		if c.Contains(Addr(l << c.shift)) {
			count++
		}
	}
	return count
}
