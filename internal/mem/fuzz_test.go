package mem

import "testing"

// FuzzCacheAccessRange hammers a fuzz-chosen cache geometry with an
// arbitrary stream of range accesses, direct installs, invalidations and
// flushes, then audits the whole structure: occupancy never exceeds
// capacity, every tag indexes its own set, no set holds duplicates, and
// hit/miss accounting matches the lines touched.
func FuzzCacheAccessRange(f *testing.F) {
	f.Add(uint8(2), uint8(3), uint8(4), []byte{0, 1, 2, 3, 255, 17, 64, 128})
	f.Add(uint8(0), uint8(0), uint8(0), []byte{9, 9, 9})
	f.Add(uint8(5), uint8(1), uint8(7), []byte{})

	f.Fuzz(func(t *testing.T, lineSel, waySel, setSel uint8, ops []byte) {
		lineSize := 16 << (int(lineSel) % 5) // 16..256, power of two
		ways := 1 + int(waySel)%8            // 1..8
		nsets := 1 << (int(setSel) % 7)      // 1..64, power of two
		size := lineSize * ways * nsets
		c := NewCache(size, lineSize, ways)

		span := 4 * size // address range spanning several aliasing rounds
		var accHits, accMisses int
		for i := 0; i+2 < len(ops); i += 3 {
			addr := Addr(int(ops[i]) * span / 256)
			n := int(ops[i+1]) * span / 256
			switch ops[i+2] % 5 {
			case 0:
				hits, misses := c.AccessRange(addr, n)
				lines := spanLines(c, addr, n)
				if hits+misses != lines {
					t.Fatalf("AccessRange(%d, %d): %d hits + %d misses != %d lines touched",
						addr, n, hits, misses, lines)
				}
				accHits += hits
				accMisses += misses
			case 1:
				c.Access(addr)
			case 2:
				if ev := c.Install(addr, n); ev > spanLines(c, addr, n) {
					t.Fatalf("Install(%d, %d) evicted %d lines for %d installed",
						addr, n, ev, spanLines(c, addr, n))
				}
			case 3:
				c.Invalidate(addr, n)
			case 4:
				c.Flush()
				if occ := c.OccupiedLines(); occ != 0 {
					t.Fatalf("flushed cache still holds %d lines", occ)
				}
			}
			if occ := c.OccupiedLines(); occ > c.Lines() {
				t.Fatalf("occupancy %d lines exceeds capacity %d", occ, c.Lines())
			}
		}
		if err := c.Audit(); err != nil {
			t.Fatalf("structural audit failed: %v", err)
		}
		// Range accesses alone can never over-count: every resident line
		// was brought in by some miss.
		if int(c.Hits) < accHits || int(c.Misses) < accMisses {
			t.Fatalf("global counters (%d/%d) below range-access counters (%d/%d)",
				c.Hits, c.Misses, accHits, accMisses)
		}
	})
}

// spanLines returns how many cache lines [addr, addr+n) covers.
func spanLines(c *Cache, addr Addr, n int) int {
	if n <= 0 {
		return 0
	}
	first := uint64(addr) >> c.shift
	last := (uint64(addr) + uint64(n) - 1) >> c.shift
	return int(last - first + 1)
}
