package mem

import "testing"

// benchCache builds the default Testbed-1 geometry: 2 MB, 64 B lines,
// 8-way (4096 sets).
func benchCache() *Cache { return NewCache(2<<20, 64, 8) }

// BenchmarkAccessRange covers the bulk-copy pricing path in its three
// characteristic regimes: hit-heavy (working set resident), miss-heavy
// (streaming through a buffer far larger than the cache), and
// wrap-around (a range whose line count exceeds the set count, so the
// set cursor wraps within one call).
func BenchmarkAccessRange(b *testing.B) {
	const chunk = 64 << 10 // one socket-buffer chunk
	b.Run("hit", func(b *testing.B) {
		c := benchCache()
		c.AccessRange(0, chunk) // warm: every later pass hits
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessRange(0, chunk)
		}
		b.SetBytes(chunk)
	})
	b.Run("miss", func(b *testing.B) {
		c := benchCache()
		span := Addr(8 << 20) // 4x the cache: each pass evicts the last
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessRange(Addr(i)%span*chunk, chunk)
		}
		b.SetBytes(chunk)
	})
	b.Run("wrap", func(b *testing.B) {
		c := benchCache()
		big := c.Size() + c.Size()/2 // 1.5x capacity: wraps the set cursor
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessRange(0, big)
		}
		b.SetBytes(int64(big))
	})
}

// BenchmarkAccessLines covers the dependent single-line pattern of
// protocol-header, connection-state and application working-set reads
// (the datacenter figures' hot loop), at a ~75% hit rate.
func BenchmarkAccessLines(b *testing.B) {
	c := benchCache()
	ws := 1536 << 10 // the datacenter tier working set
	lines := ws / c.LineSize()
	c.AccessRange(0, ws)
	rnd := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rnd = rnd*6364136223846793005 + 1442695040888963407
		line := int(rnd>>33) % lines
		c.AccessLines(Addr(line*c.LineSize()), 1)
	}
}

// BenchmarkInvalidate covers the DMA-write coherence path: per-frame
// payload invalidation (resident and absent lines) and a wrap-around
// range.
func BenchmarkInvalidate(b *testing.B) {
	const frame = 1500
	b.Run("resident", func(b *testing.B) {
		c := benchCache()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.AccessRange(0, frame) // re-install, then drop
			c.Invalidate(0, frame)
		}
		b.SetBytes(frame)
	})
	b.Run("absent", func(b *testing.B) {
		c := benchCache()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Invalidate(Addr(i%1024)*frame, frame)
		}
		b.SetBytes(frame)
	})
	b.Run("wrap", func(b *testing.B) {
		c := benchCache()
		big := c.Size() + c.Size()/2
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Invalidate(0, big)
		}
		b.SetBytes(int64(big))
	})
}
