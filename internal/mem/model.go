package mem

import (
	"time"

	"ioatsim/internal/cost"
)

// Model prices memory operations against one node's cache.
type Model struct {
	P     *cost.Params
	Cache *Cache
	Space *Space
}

// NewModel returns a memory model with a fresh cache and address space.
func NewModel(p *cost.Params) *Model {
	return &Model{
		P:     p,
		Cache: NewCache(p.CacheSize, p.CacheLine, p.CacheWays),
		Space: NewSpace(),
	}
}

// CopyCost prices a CPU memcpy of n bytes from src to dst, updating the
// cache (both source reads and write-allocated destination lines pass
// through it — this is the pollution the DMA engine avoids). Streaming
// access costs apply: the hardware prefetcher hides most of the latency.
func (m *Model) CopyCost(src, dst Addr, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	sh, sm := m.Cache.AccessRange(src, n)
	dh, dm := m.Cache.AccessRange(dst, n)
	hits := time.Duration(sh + dh)
	misses := time.Duration(sm + dm)
	return hits*m.P.StreamHit + misses*m.P.StreamMiss
}

// TouchCost prices a streaming read or write pass over [addr, addr+n),
// e.g. an application scanning a received buffer.
func (m *Model) TouchCost(addr Addr, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	h, miss := m.Cache.AccessRange(addr, n)
	return time.Duration(h)*m.P.StreamHit + time.Duration(miss)*m.P.StreamMiss
}

// RandomCost prices dependent accesses to nLines lines starting at addr —
// the pattern of protocol-header and connection-state reads, where each
// miss pays the full DRAM latency.
func (m *Model) RandomCost(addr Addr, nLines int) time.Duration {
	var d time.Duration
	line := m.P.CacheLine
	for i := 0; i < nLines; i++ {
		if m.Cache.Access(addr + Addr(i*line)) {
			d += m.P.RandHit
		} else {
			d += m.P.RandMiss
		}
	}
	return d
}

// DMAWrite models a device (NIC or copy engine) writing [addr, addr+n):
// the data lands in memory and any stale cached lines are invalidated,
// so the CPU's next access misses.
func (m *Model) DMAWrite(addr Addr, n int) {
	m.Cache.Invalidate(addr, n)
}

// InstallHeader models direct cache placement of a split header: the
// header bytes are pushed into the cache so the protocol code hits.
func (m *Model) InstallHeader(addr Addr, n int) {
	m.Cache.Install(addr, n)
}

// InstallPacket models full-packet direct cache placement (the I/OAT
// platform without split headers): the whole frame lands in the cache and
// the cost of the valid lines it displaces is charged to the receive
// path.
func (m *Model) InstallPacket(addr Addr, n int) time.Duration {
	evicted := m.Cache.Install(addr, n)
	return time.Duration(evicted) * m.P.EvictPenalty
}
