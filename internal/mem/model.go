package mem

import (
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/trace"
)

// auditEvery is how many priced operations pass between two structural
// cache audits in checked mode: a full walk per operation would swamp
// the run, one every few thousand still catches corruption long before
// the end-of-run audit.
const auditEvery = 4096

// missBurstLines is the miss count at which one priced operation is
// worth a trace marker: a burst this size means a whole frame (or more)
// came from DRAM in one go — the cold-buffer signature the paper's
// cache-miss story is about.
const missBurstLines = 32

// Model prices memory operations against one node's cache.
type Model struct {
	P     *cost.Params
	Cache *Cache
	Space *Space

	chk *check.Checker
	obs *trace.Obs
	ops uint64
}

// NewModel returns a memory model with a fresh cache and address space.
func NewModel(p *cost.Params) *Model {
	return &Model{
		P:     p,
		Cache: NewCache(p.CacheSize, p.CacheLine, p.CacheWays),
		Space: NewSpace(),
	}
}

// SetChecker puts the model in checked mode: priced operations audit
// the cache structure every auditEvery calls, and one full audit is
// registered to run when the checker finishes.
func (m *Model) SetChecker(c *check.Checker) {
	if c == nil {
		return
	}
	m.chk = c
	c.OnFinish(func(c *check.Checker) {
		if err := m.Cache.Audit(); err != nil {
			c.Failf("mem", "final cache audit: %v", err)
		}
		c.InRange("mem", "cache occupancy", float64(m.Cache.OccupiedLines()),
			0, float64(m.Cache.Lines()))
	})
}

// SetObs attaches the node's observability sinks: the profiler's
// memory-pricing detail (hit vs miss split of copy and header work) and
// the tracer's cache-miss-burst markers.
func (m *Model) SetObs(o *trace.Obs) { m.obs = o }

// streamObs attributes one priced streaming operation and marks miss
// bursts. No-op when obs is not installed.
func (m *Model) streamObs(hits, misses int) {
	o := m.obs
	if o == nil {
		return
	}
	o.Cost(trace.SiteCopyHit, time.Duration(hits)*m.P.StreamHit)
	o.Cost(trace.SiteCopyMiss, time.Duration(misses)*m.P.StreamMiss)
	if misses >= missBurstLines {
		o.Instant(trace.TidMem, trace.SiteMissBurst, int64(misses))
	}
}

// observe is the per-operation probe: hit/miss counters must be
// monotone and consistent, and the structure is audited periodically.
func (m *Model) observe() {
	m.ops++
	if m.ops%auditEvery == 0 {
		if err := m.Cache.Audit(); err != nil {
			m.chk.Failf("mem", "cache audit after %d ops: %v", m.ops, err)
		}
	}
}

// CopyCost prices a CPU memcpy of n bytes from src to dst, updating the
// cache (both source reads and write-allocated destination lines pass
// through it — this is the pollution the DMA engine avoids). Streaming
// access costs apply: the hardware prefetcher hides most of the latency.
//
//ioat:hotpath
func (m *Model) CopyCost(src, dst Addr, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	sh, sm := m.Cache.AccessRange(src, n)
	dh, dm := m.Cache.AccessRange(dst, n)
	if m.chk != nil {
		m.chk.Assert(sh+sm == m.lineSpan(src, n) && dh+dm == m.lineSpan(dst, n),
			"mem", "copy of %d bytes touched %d+%d source and %d+%d destination lines",
			n, sh, sm, dh, dm)
		m.observe()
	}
	if m.obs != nil {
		m.streamObs(sh+dh, sm+dm)
	}
	hits := time.Duration(sh + dh)
	misses := time.Duration(sm + dm)
	return hits*m.P.StreamHit + misses*m.P.StreamMiss
}

// lineSpan returns how many cache lines [addr, addr+n) covers (n > 0).
func (m *Model) lineSpan(addr Addr, n int) int {
	line := uint64(m.P.CacheLine)
	first := uint64(addr) / line
	last := (uint64(addr) + uint64(n) - 1) / line
	return int(last - first + 1)
}

// TouchCost prices a streaming read or write pass over [addr, addr+n),
// e.g. an application scanning a received buffer.
//
//ioat:hotpath
func (m *Model) TouchCost(addr Addr, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	h, miss := m.Cache.AccessRange(addr, n)
	if m.chk != nil {
		m.chk.Assert(h+miss == m.lineSpan(addr, n),
			"mem", "touch of %d bytes counted %d hits + %d misses", n, h, miss)
		m.observe()
	}
	if m.obs != nil {
		m.streamObs(h, miss)
	}
	return time.Duration(h)*m.P.StreamHit + time.Duration(miss)*m.P.StreamMiss
}

// RandomCost prices dependent accesses to nLines lines starting at addr —
// the pattern of protocol-header and connection-state reads, where each
// miss pays the full DRAM latency. The lines are consecutive, so the
// cache walks them in one batched pass instead of one Access call each.
//
//ioat:hotpath
func (m *Model) RandomCost(addr Addr, nLines int) time.Duration {
	h, miss := m.Cache.AccessLines(addr, nLines)
	if m.chk != nil {
		m.chk.Assert(h+miss == max(nLines, 0),
			"mem", "random access of %d lines counted %d hits + %d misses", nLines, h, miss)
		m.observe()
	}
	if m.obs != nil {
		m.obs.Cost(trace.SiteHeaderHit, time.Duration(h)*m.P.RandHit)
		m.obs.Cost(trace.SiteHeaderMiss, time.Duration(miss)*m.P.RandMiss)
	}
	return time.Duration(h)*m.P.RandHit + time.Duration(miss)*m.P.RandMiss
}

// DMAWrite models a device (NIC or copy engine) writing [addr, addr+n):
// the data lands in memory and any stale cached lines are invalidated,
// so the CPU's next access misses.
//
//ioat:hotpath
func (m *Model) DMAWrite(addr Addr, n int) {
	m.Cache.Invalidate(addr, n)
}

// InstallHeader models direct cache placement of a split header: the
// header bytes are pushed into the cache so the protocol code hits.
//
//ioat:hotpath
func (m *Model) InstallHeader(addr Addr, n int) {
	m.Cache.Install(addr, n)
}

// InstallPacket models full-packet direct cache placement (the I/OAT
// platform without split headers): the whole frame lands in the cache and
// the cost of the valid lines it displaces is charged to the receive
// path.
//
//ioat:hotpath
func (m *Model) InstallPacket(addr Addr, n int) time.Duration {
	evicted := m.Cache.Install(addr, n)
	if m.chk != nil {
		m.chk.Assert(evicted <= m.lineSpan(addr, n),
			"mem", "installing %d bytes evicted %d lines, more than it spans", n, evicted)
		m.observe()
	}
	if m.obs != nil {
		m.obs.Cost(trace.SiteEvict, time.Duration(evicted)*m.P.EvictPenalty)
	}
	return time.Duration(evicted) * m.P.EvictPenalty
}
