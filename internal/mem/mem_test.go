package mem

import (
	"testing"
	"testing/quick"

	"ioatsim/internal/cost"
)

func TestSpaceAllocDisjoint(t *testing.T) {
	s := NewSpace()
	a := s.Alloc(100, 0)
	b := s.Alloc(200, 0)
	if a.Addr == 0 || b.Addr == 0 {
		t.Fatal("allocated at address 0")
	}
	if a.End() > b.Addr {
		t.Fatalf("overlapping allocations: %v %v", a, b)
	}
}

func TestSpaceAlignment(t *testing.T) {
	s := NewSpace()
	s.Alloc(3, 0)
	b := s.Alloc(10, 256)
	if b.Addr%256 != 0 {
		t.Fatalf("addr %d not 256-aligned", b.Addr)
	}
}

func TestBufferSlice(t *testing.T) {
	s := NewSpace()
	b := s.Alloc(100, 0)
	sub := b.Slice(10, 20)
	if sub.Addr != b.Addr+10 || sub.Size != 20 {
		t.Fatalf("slice = %v", sub)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range slice did not panic")
		}
	}()
	b.Slice(90, 20)
}

func TestPoolLIFOReuse(t *testing.T) {
	s := NewSpace()
	p := NewPool(s, 2048)
	a := p.Get()
	p.Put(a)
	b := p.Get()
	if b.Addr != a.Addr {
		t.Fatal("pool did not reuse the most recently freed buffer")
	}
	if p.Total != 1 {
		t.Fatalf("pool created %d buffers, want 1", p.Total)
	}
}

func TestPoolGrowsUnderBacklog(t *testing.T) {
	s := NewSpace()
	p := NewPool(s, 2048)
	var held []Buffer
	for i := 0; i < 100; i++ {
		held = append(held, p.Get())
	}
	if p.MaxLive != 100 || p.Total != 100 {
		t.Fatalf("MaxLive=%d Total=%d, want 100/100", p.MaxLive, p.Total)
	}
	for _, b := range held {
		p.Put(b)
	}
	if p.Live != 0 {
		t.Fatalf("Live = %d after returning all", p.Live)
	}
}

func TestCacheHitAfterAccess(t *testing.T) {
	c := NewCache(64*1024, 64, 8)
	if c.Access(1000) {
		t.Fatal("cold access reported hit")
	}
	if !c.Access(1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(1023) { // same line (line 15 covers 960..1023)
		t.Fatal("same-line access missed")
	}
	if c.Access(1024) { // next line
		t.Fatal("next-line access hit while cold")
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	c := NewCache(64*1024, 64, 8)
	// Fill 2x capacity with a streaming pass, then re-touch the start:
	// it must have been evicted.
	c.AccessRange(0, 128*1024)
	if c.Contains(0) {
		t.Fatal("start of 2x-capacity stream still resident")
	}
	// A working set half the capacity stays resident.
	c.Flush()
	c.AccessRange(0, 32*1024)
	if got := c.Resident(0, 32*1024); got != 32*1024/64 {
		t.Fatalf("resident = %d lines, want all %d", got, 32*1024/64)
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way cache with 2 sets: lines mapping to set 0 are addresses
	// 0, 256, 512, ... (line 64, sets 2).
	c := NewCache(256, 64, 2)
	c.Access(0)   // set0 way A
	c.Access(256) // set0 way B
	c.Access(0)   // refresh A
	c.Access(512) // evicts B (LRU)
	if !c.Contains(0) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(256) {
		t.Fatal("LRU line survived")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(64*1024, 64, 8)
	c.AccessRange(4096, 1024)
	c.Invalidate(4096, 1024)
	if got := c.Resident(4096, 1024); got != 0 {
		t.Fatalf("resident after invalidate = %d", got)
	}
}

func TestCacheInstall(t *testing.T) {
	c := NewCache(64*1024, 64, 8)
	c.Install(8192, 128)
	h, m := c.AccessRange(8192, 128)
	if m != 0 || h != 2 {
		t.Fatalf("after install: hits=%d misses=%d, want 2/0", h, m)
	}
}

func TestCacheStatsCount(t *testing.T) {
	c := NewCache(64*1024, 64, 8)
	c.AccessRange(0, 6400) // 100 lines cold
	if c.Misses != 100 || c.Hits != 0 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	c.AccessRange(0, 6400)
	if c.Hits != 100 {
		t.Fatalf("hits=%d, want 100", c.Hits)
	}
}

// Property: Resident never exceeds the number of lines in the range, and
// after accessing a range every line of a range no larger than one way's
// worth per set is resident.
func TestCacheResidencyProperty(t *testing.T) {
	f := func(start uint32, n uint16) bool {
		c := NewCache(64*1024, 64, 8)
		nn := int(n)%8192 + 1
		addr := Addr(start)
		c.AccessRange(addr, nn)
		lines := int((uint64(addr)+uint64(nn)-1)/64 - uint64(addr)/64 + 1)
		r := c.Resident(addr, nn)
		if r > lines {
			return false
		}
		// 8K range in a 64K cache always fits entirely.
		return r == lines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModelCopyCacheVsNocache(t *testing.T) {
	p := cost.Default()
	m := NewModel(p)
	src := m.Space.Alloc(64*cost.KB, 0)
	dst := m.Space.Alloc(64*cost.KB, 0)

	cold := m.CopyCost(src.Addr, dst.Addr, 64*cost.KB)
	warm := m.CopyCost(src.Addr, dst.Addr, 64*cost.KB)
	if warm >= cold {
		t.Fatalf("warm copy (%v) not faster than cold (%v)", warm, cold)
	}
	// Calibration: cold ~ 43 us (1.5 GB/s), warm ~ 8 us (8 GB/s).
	if cold < 35000 || cold > 55000 {
		t.Fatalf("cold 64K copy = %v ns, want ~43000", cold.Nanoseconds())
	}
	if warm < 6000 || warm > 12000 {
		t.Fatalf("warm 64K copy = %v ns, want ~8200", warm.Nanoseconds())
	}
}

func TestModelCopyPollutesCache(t *testing.T) {
	p := cost.Default()
	m := NewModel(p)
	hot := m.Space.Alloc(256*cost.KB, 0)
	m.TouchCost(hot.Addr, hot.Size) // make it resident
	if m.Cache.Resident(hot.Addr, hot.Size) == 0 {
		t.Fatal("warm-up failed")
	}
	// A 4 MB copy (2x cache) evicts the hot set.
	src := m.Space.Alloc(4*cost.MB, 0)
	dst := m.Space.Alloc(4*cost.MB, 0)
	m.CopyCost(src.Addr, dst.Addr, 4*cost.MB)
	if got := m.Cache.Resident(hot.Addr, hot.Size); got > hot.Size/p.CacheLine/10 {
		t.Fatalf("hot set survived a 2x-cache copy: %d lines resident", got)
	}
}

func TestModelDMAWriteAvoidsPollution(t *testing.T) {
	p := cost.Default()
	m := NewModel(p)
	hot := m.Space.Alloc(256*cost.KB, 0)
	m.TouchCost(hot.Addr, hot.Size)
	before := m.Cache.Resident(hot.Addr, hot.Size)
	dst := m.Space.Alloc(4*cost.MB, 0)
	m.DMAWrite(dst.Addr, dst.Size) // engine copy does not pass through cache
	after := m.Cache.Resident(hot.Addr, hot.Size)
	if after != before {
		t.Fatalf("DMA write disturbed unrelated hot lines: %d -> %d", before, after)
	}
}

func TestModelRandomCost(t *testing.T) {
	p := cost.Default()
	m := NewModel(p)
	b := m.Space.Alloc(1024, 0)
	cold := m.RandomCost(b.Addr, 2)
	warm := m.RandomCost(b.Addr, 2)
	if cold != 2*p.RandMiss {
		t.Fatalf("cold random = %v, want %v", cold, 2*p.RandMiss)
	}
	if warm != 2*p.RandHit {
		t.Fatalf("warm random = %v, want %v", warm, 2*p.RandHit)
	}
}

func TestModelZeroSizes(t *testing.T) {
	m := NewModel(cost.Default())
	if m.CopyCost(0, 0, 0) != 0 || m.TouchCost(0, 0) != 0 || m.RandomCost(0, 0) != 0 {
		t.Fatal("zero-size operations must cost nothing")
	}
}
