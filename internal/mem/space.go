// Package mem models a node's memory hierarchy: a synthetic physical
// address space, a set-associative write-allocate LRU cache, and a cost
// model that prices copies and header accesses line by line. The cache is
// what makes copy-in-cache vs copy-out-of-cache vs DMA-copy — and the
// split-header locality effect — emergent rather than scripted.
package mem

import "fmt"

// Addr is a synthetic physical address.
type Addr uint64

// Buffer is a contiguous allocation in a node's address space.
type Buffer struct {
	Addr Addr
	Size int
}

// End returns the first address past the buffer.
func (b Buffer) End() Addr { return b.Addr + Addr(b.Size) }

// Slice returns the sub-buffer [off, off+n).
func (b Buffer) Slice(off, n int) Buffer {
	if off < 0 || n < 0 || off+n > b.Size {
		panic(fmt.Sprintf("mem: slice [%d,%d) out of buffer of size %d", off, off+n, b.Size))
	}
	return Buffer{Addr: b.Addr + Addr(off), Size: n}
}

// Space is a bump allocator handing out non-overlapping buffers. Address
// zero is never allocated so that the zero Buffer is recognizably invalid.
type Space struct {
	next Addr
}

// NewSpace returns an empty address space.
func NewSpace() *Space { return &Space{next: 4096} }

// Alloc returns a fresh buffer of the given size, aligned to align bytes
// (align must be a power of two; 0 means cache-line alignment).
func (s *Space) Alloc(size, align int) Buffer {
	if size < 0 {
		panic("mem: negative allocation")
	}
	if align == 0 {
		align = 64
	}
	if align&(align-1) != 0 {
		panic("mem: alignment not a power of two")
	}
	a := Addr(align)
	s.next = (s.next + a - 1) &^ (a - 1)
	b := Buffer{Addr: s.next, Size: size}
	s.next += Addr(size)
	return b
}

// Allocated returns the total bytes handed out so far.
func (s *Space) Allocated() int64 { return int64(s.next) }

// Pool is a LIFO free list of fixed-size buffers, modelling a slab
// allocator: the most recently freed buffer is reused first, so a
// fast-draining consumer keeps a small, cache-hot working set while a
// backlog forces the pool to grow and thrash the cache. This is the
// mechanism behind the split-header feature's large-message benefit.
type Pool struct {
	space   *Space
	size    int
	free    []Buffer
	Live    int // buffers currently handed out
	MaxLive int // high-water mark
	Total   int // buffers ever created
}

// NewPool returns a pool of size-byte buffers drawing on space.
func NewPool(space *Space, size int) *Pool {
	return &Pool{space: space, size: size}
}

// BufSize returns the size of each pooled buffer.
func (p *Pool) BufSize() int { return p.size }

// Get returns a buffer, reusing the most recently freed one if possible.
func (p *Pool) Get() Buffer {
	p.Live++
	if p.Live > p.MaxLive {
		p.MaxLive = p.Live
	}
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free = p.free[:n-1]
		return b
	}
	p.Total++
	return p.space.Alloc(p.size, 64)
}

// Put returns a buffer to the free list.
func (p *Pool) Put(b Buffer) {
	if b.Size != p.size {
		panic("mem: buffer returned to wrong pool")
	}
	p.Live--
	if p.Live < 0 {
		panic("mem: pool double free")
	}
	p.free = append(p.free, b)
}
