package datacenter

import (
	"ioatsim/internal/host"
	"ioatsim/internal/mem"
)

// contentCache is the proxy's LRU document cache: hit documents are
// served from proxy memory without touching the web tier.
type contentCache struct {
	node     *host.Node
	capacity int
	used     int
	entries  map[string]*cacheEntry
	// LRU list, most recent at the tail.
	head, tail *cacheEntry
}

type cacheEntry struct {
	path       string
	buf        mem.Buffer
	prev, next *cacheEntry
}

// newContentCache returns a cache of the given byte capacity; capacity
// <= 0 disables caching (every Get misses).
func newContentCache(n *host.Node, capacity int) *contentCache {
	return &contentCache{node: n, capacity: capacity, entries: make(map[string]*cacheEntry)}
}

// Get returns the cached copy of path, refreshing its recency.
func (c *contentCache) Get(path string) (mem.Buffer, bool) {
	e, ok := c.entries[path]
	if !ok {
		return mem.Buffer{}, false
	}
	c.unlink(e)
	c.append(e)
	return e.buf, true
}

// Put inserts a document of the given size, evicting LRU entries to fit.
// Documents larger than the whole cache are not stored.
func (c *contentCache) Put(path string, size int) (mem.Buffer, bool) {
	if c.capacity <= 0 || size > c.capacity {
		return mem.Buffer{}, false
	}
	if e, ok := c.entries[path]; ok {
		c.unlink(e)
		c.append(e)
		return e.buf, true
	}
	for c.used+size > c.capacity {
		lru := c.head
		if lru == nil {
			break
		}
		c.unlink(lru)
		delete(c.entries, lru.path)
		c.used -= lru.buf.Size
	}
	e := &cacheEntry{path: path, buf: c.node.Mem.Space.Alloc(size, 0)}
	c.entries[path] = e
	c.append(e)
	c.used += size
	return e.buf, true
}

// Len returns the number of cached documents.
func (c *contentCache) Len() int { return len(c.entries) }

// Used returns the cached byte total.
func (c *contentCache) Used() int { return c.used }

func (c *contentCache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *contentCache) append(e *cacheEntry) {
	e.prev = c.tail
	if c.tail != nil {
		c.tail.next = e
	}
	c.tail = e
	if c.head == nil {
		c.head = e
	}
}
