package datacenter

import (
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
)

// fastOptions returns a small configuration that still exercises the
// whole pipeline.
func fastOptions(feat ioat.Features) Options {
	return Options{
		P:                cost.Default(),
		Feat:             feat,
		Seed:             1,
		ClientNodes:      4,
		ThreadsPerClient: 2,
		FileCount:        1,
		FileSize:         4 * cost.KB,
		Warm:             10 * time.Millisecond,
		Meas:             30 * time.Millisecond,
	}
}

func TestTwoTierServesRequests(t *testing.T) {
	m := RunTwoTier(fastOptions(ioat.None()))
	if m.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if m.TPS <= 0 {
		t.Fatalf("TPS = %v", m.TPS)
	}
	if m.ProxyCPU <= 0 || m.WebCPU <= 0 {
		t.Fatalf("idle tiers: proxy=%v web=%v", m.ProxyCPU, m.WebCPU)
	}
}

func TestTwoTierIOATImprovesTPS(t *testing.T) {
	o := fastOptions(ioat.None())
	o.ClientNodes = 16
	o.ThreadsPerClient = 4
	o.FileSize = 8 * cost.KB
	plain := RunTwoTier(o)
	o.Feat = ioat.Linux()
	accel := RunTwoTier(o)
	if accel.TPS < plain.TPS {
		t.Fatalf("I/OAT TPS %v below non-I/OAT %v", accel.TPS, plain.TPS)
	}
}

func TestTwoTierZipf(t *testing.T) {
	o := fastOptions(ioat.Linux())
	o.FileCount = 100
	o.Alpha = 0.9
	m := RunTwoTier(o)
	if m.Completed == 0 {
		t.Fatal("zipf run served nothing")
	}
}

func TestTwoTierDeterministic(t *testing.T) {
	a := RunTwoTier(fastOptions(ioat.Linux()))
	b := RunTwoTier(fastOptions(ioat.Linux()))
	if a.Completed != b.Completed || a.TPS != b.TPS {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestProxyCacheServesHits(t *testing.T) {
	o := fastOptions(ioat.Linux())
	o.CacheBytes = cost.MB
	withCache := RunTwoTier(o)
	o.CacheBytes = 0
	without := RunTwoTier(o)
	if withCache.Completed == 0 {
		t.Fatal("cached run served nothing")
	}
	// With a single hot file, the cache removes the backend hop, so the
	// web tier should be nearly idle and TPS at least as high.
	if withCache.WebCPU >= without.WebCPU {
		t.Fatalf("cache did not offload web tier: %v vs %v",
			withCache.WebCPU, without.WebCPU)
	}
}

func TestEmulatedScalesWithThreads(t *testing.T) {
	o := fastOptions(ioat.Linux())
	o.FileSize = 16 * cost.KB
	one := RunEmulated(o, 1)
	eight := RunEmulated(o, 8)
	if eight.TPS <= one.TPS*2 {
		t.Fatalf("8 threads (%v TPS) not scaling over 1 thread (%v TPS)", eight.TPS, one.TPS)
	}
	if eight.ClientCPU <= one.ClientCPU {
		t.Fatal("client CPU did not grow with threads")
	}
}

func TestEmulatedIOATSustainsMoreLoad(t *testing.T) {
	// At saturation, I/OAT should deliver more TPS (the Fig. 9 claim).
	o := fastOptions(ioat.None())
	o.FileSize = 16 * cost.KB
	plain := RunEmulated(o, 48)
	o.Feat = ioat.Linux()
	accel := RunEmulated(o, 48)
	if accel.TPS <= plain.TPS {
		t.Fatalf("I/OAT TPS %v not above non-I/OAT %v at saturation", accel.TPS, plain.TPS)
	}
}

func TestContentCacheLRU(t *testing.T) {
	cl := host.NewCluster(cost.Default(), 1)
	n := cl.Add("n", ioat.None(), 1)
	c := newContentCache(n, 10*cost.KB)
	if _, ok := c.Put("a", 4*cost.KB); !ok {
		t.Fatal("put a failed")
	}
	if _, ok := c.Put("b", 4*cost.KB); !ok {
		t.Fatal("put b failed")
	}
	c.Get("a") // refresh a; b becomes LRU
	if _, ok := c.Put("c", 4*cost.KB); !ok {
		t.Fatal("put c failed")
	}
	if _, hit := c.Get("b"); hit {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, hit := c.Get("a"); !hit {
		t.Fatal("refreshed entry a was evicted")
	}
	if c.Used() > 10*cost.KB {
		t.Fatalf("cache over capacity: %d", c.Used())
	}
}

func TestContentCacheRejectsOversize(t *testing.T) {
	cl := host.NewCluster(cost.Default(), 1)
	n := cl.Add("n", ioat.None(), 1)
	c := newContentCache(n, 4*cost.KB)
	if _, ok := c.Put("big", 8*cost.KB); ok {
		t.Fatal("cached a document larger than the cache")
	}
	disabled := newContentCache(n, 0)
	if _, ok := disabled.Put("x", 1); ok {
		t.Fatal("disabled cache accepted an entry")
	}
}

func TestThreeTierServesRequests(t *testing.T) {
	o := ThreeTierOptions{Options: fastOptions(ioat.Linux())}
	o.QueriesPerRequest = 2
	m := RunThreeTier(o)
	if m.Completed == 0 {
		t.Fatal("no dynamic requests completed")
	}
	if m.AppCPU <= 0 || m.DBCPU <= 0 {
		t.Fatalf("idle inner tiers: app=%v db=%v", m.AppCPU, m.DBCPU)
	}
}

func TestThreeTierQueriesCostThroughput(t *testing.T) {
	run := func(q int) ThreeTierMetrics {
		o := ThreeTierOptions{Options: fastOptions(ioat.Linux())}
		o.ClientNodes = 8
		o.ThreadsPerClient = 4
		o.Warm = 40 * time.Millisecond
		o.QueriesPerRequest = q
		return RunThreeTier(o)
	}
	light := run(1)
	heavy := run(6)
	if heavy.TPS >= light.TPS {
		t.Fatalf("more DB queries should cost TPS: %v vs %v", heavy.TPS, light.TPS)
	}
	if heavy.DBCPU <= light.DBCPU {
		t.Fatalf("DB CPU should grow with queries: %v vs %v", heavy.DBCPU, light.DBCPU)
	}
}

func TestThreeTierDeterministic(t *testing.T) {
	o := ThreeTierOptions{Options: fastOptions(ioat.Linux())}
	o.Warm = 40 * time.Millisecond
	a := RunThreeTier(o)
	b := RunThreeTier(o)
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
