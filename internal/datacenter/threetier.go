package datacenter

import (
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/httpm"
	"ioatsim/internal/ioat"
	"ioatsim/internal/mem"
	"ioatsim/internal/msg"
	"ioatsim/internal/sim"
)

// The paper's §5.1 names three workload classes and evaluates two; this
// file implements the third — dynamic content — on the full three-tier
// layout of its Fig. 2a: proxy -> application servers (CGI/PHP/servlet
// work) -> database tier.

// Dynamic-content cost constants.
const (
	// AppScriptWork is the CPU an application server spends running the
	// script (PHP/CGI/servlet) for one request, excluding memory stalls.
	AppScriptWork = 250 * time.Microsecond
	// DBQueryWork is the database tier's CPU per query (parse, plan,
	// B-tree descent), excluding the record touch.
	DBQueryWork = 60 * time.Microsecond
	// DBRecordBytes is the data one query returns.
	DBRecordBytes = 1 * cost.KB
	// DBTableBytes is the database's hot table working set, touched per
	// query through the cache.
	DBTableBytes = 4 * cost.MB
)

// ThreeTierOptions configure a dynamic-content run.
type ThreeTierOptions struct {
	Options
	// QueriesPerRequest is how many database queries each dynamic
	// request triggers.
	QueriesPerRequest int
	// ResponseBytes is the rendered page size returned to the client.
	ResponseBytes int
}

func (o *ThreeTierOptions) defaults() {
	o.Options.defaults()
	if o.QueriesPerRequest == 0 {
		o.QueriesPerRequest = 3
	}
	if o.ResponseBytes == 0 {
		o.ResponseBytes = 8 * cost.KB
	}
}

// ThreeTierMetrics extends Metrics with the two inner tiers.
type ThreeTierMetrics struct {
	Metrics
	AppCPU float64
	DBCPU  float64
}

// dbQuery is one request to the database tier.
type dbQuery struct {
	Key int
}

// dbTier is the back-end database: a node with a hot table region.
type dbTier struct {
	node  *host.Node
	table mem.Buffer
}

// startDBTier runs the database service: one worker per connection,
// each query pays parse/plan CPU plus a record touch through the cache
// and returns DBRecordBytes.
func startDBTier(n *host.Node) *dbTier {
	db := &dbTier{node: n, table: n.Mem.Space.Alloc(DBTableBytes, 0)}
	l := n.Stack.Listen("db")
	n.S.Spawn("db-accept", func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := l.Accept(p)
			n.CPU.RegisterThread()
			startDBWorker(db, conn, fmt.Sprintf("db-worker%d", i))
		}
	})
	return db
}

// startAppTier runs the application servers: per-connection workers that
// execute the script, fan queries to the database and render the page.
func startAppTier(app *Tier, db *host.Node, o ThreeTierOptions) {
	l := app.Node.Stack.Listen("app")
	app.Node.S.Spawn("app-accept", func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := l.Accept(p)
			app.Node.CPU.RegisterThread()
			i := i
			app.Node.S.Spawn(fmt.Sprintf("app-worker%d", i), func(wp *sim.Proc) {
				startAppWorker(wp, i, app, db, msg.Wrap(conn), o)
			})
		}
	})
}

// RunThreeTier builds and measures the dynamic-content configuration:
// clients -> proxy -> application tier -> database tier, every server
// tier with the same I/OAT feature set.
func RunThreeTier(o ThreeTierOptions) ThreeTierMetrics {
	o.defaults()
	cl := host.NewCluster(o.P, o.Seed, o.hostOpts()...)
	proxyNode := cl.Add("proxy", o.Feat, 6)
	appNode := cl.Add("app", o.Feat, 6)
	dbNode := cl.Add("db", o.Feat, 6)
	clients := cl.AddClients(o.ClientNodes, ioat.None())

	proxy := newTier(proxyNode, cl.Rand.Fork())
	app := newTier(appNode, cl.Rand.Fork())
	startDBTier(dbNode)
	startAppTier(app, dbNode, o)

	// The proxy forwards every request to the app tier (dynamic content
	// is uncacheable).
	l := proxyNode.Stack.Listen("http")
	proxyNode.S.Spawn("proxy-accept", func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := l.Accept(p)
			proxyNode.CPU.RegisterThread()
			i := i
			proxyNode.S.Spawn(fmt.Sprintf("proxy-worker%d", i), func(wp *sim.Proc) {
				backend := msg.Wrap(proxyNode.Stack.Dial(wp, appNode.Stack, "app", i%6, i%6))
				buf := proxyNode.Buf(o.ResponseBytes + httpm.RequestBytes)
				client := msg.Wrap(conn)
				startFwdWorker(proxyNode.S.NewTask(wp.Name()), proxy, client, backend, buf)
			})
		}
	})

	var completed int64
	for ci, cn := range clients {
		for t := 0; t < o.ThreadsPerClient; t++ {
			launchClient(cn, proxyNode, ci%6, fmt.Sprintf("c%d-%d", ci, t),
				&staticPath{}, o.ResponseBytes, &completed)
		}
	}

	cl.S.RunUntil(sim.Time(o.Warm))
	cl.ResetMeters()
	mark := completed
	cl.S.RunUntil(sim.Time(o.Warm + o.Meas))

	m := ThreeTierMetrics{}
	m.Completed = completed - mark
	m.TPS = float64(m.Completed) / o.Meas.Seconds()
	m.ProxyCPU = proxyNode.CPU.Utilization()
	m.AppCPU = appNode.CPU.Utilization()
	m.DBCPU = dbNode.CPU.Utilization()
	cl.MustVerify()
	return m
}

// staticPath is the trace for dynamic requests: the path is a script
// name; popularity does not matter because responses are uncacheable.
type staticPath struct{}

// Next implements workload.Trace.
func (s *staticPath) Next() string { return "/app.cgi" }
