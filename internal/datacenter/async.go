package datacenter

// Continuation state machines for the steady-state serve/receive loops:
// every worker that used to be a blocking goroutine process is a small
// event-driven state machine on sim.Task, so a request's whole lifetime
// runs on the event-loop goroutine with zero channel handoffs. Cold
// paths — accept loops and connection setup (Dial) — stay on the
// blocking Proc API; a setup proc hands off by running its worker's
// machine synchronously to the first suspension and returning.
//
// Every machine performs exactly the CPU charges, sends and receives of
// the blocking worker it replaces, at the same code points, so the event
// schedule (and therefore every table) is byte-identical. All
// continuations are bound once at construction; the per-request loop
// allocates only what the blocking loop allocated (the boxed message
// metadata).

import (
	"ioatsim/internal/host"
	"ioatsim/internal/httpm"
	"ioatsim/internal/mem"
	"ioatsim/internal/msg"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
	"ioatsim/internal/workload"
)

// webWorker serves static content on one connection: read a request,
// run the application work, send the document zero-copy.
type webWorker struct {
	web  *Tier
	mc   *msg.Async
	task *sim.Task
	req  httpm.Request

	stepGotReq func(msg.Envelope)
	stepServe  func()
	stepLoop   func()
}

// startWebWorker schedules the worker's first step as the one event the
// old Spawn scheduled; the connection is wrapped when that event runs,
// exactly when the worker proc used to start.
func startWebWorker(web *Tier, conn *tcp.Conn, name string) {
	w := &webWorker{web: web, task: web.Node.S.NewTask(name)}
	w.stepGotReq = w.gotReq
	w.stepServe = w.serve
	w.stepLoop = w.loop
	w.task.Start(func() {
		w.mc = msg.NewAsync(msg.Wrap(conn), w.task)
		w.loop()
	})
}

func (w *webWorker) loop() { w.mc.Recv(mem.Buffer{}, w.stepGotReq) }

func (w *webWorker) gotReq(env msg.Envelope) {
	req, ok := env.Meta.(httpm.Request)
	if !ok {
		panic("httpm: expected a request")
	}
	w.req = req
	if w.web.Node.CPU.ExecTask(w.task, w.stepServe, w.web.appWork(WebFixedWork)) {
		return
	}
	w.serve()
}

func (w *webWorker) serve() {
	f := w.web.FS.MustOpen(w.req.Path)
	// Static content goes out sendfile-style: zero copy from the page
	// cache.
	w.mc.Send(httpm.Response{Status: 200, Path: w.req.Path}, f.Size(),
		f.Buf, tcp.SendOptions{ZeroCopy: true}, w.stepLoop)
}

// proxyWorker forwards client requests to the web tier through the
// content cache (two-tier configuration).
type proxyWorker struct {
	proxy   *Tier
	cache   *contentCache
	client  *msg.Async
	backend *msg.Async
	task    *sim.Task
	buf     mem.Buffer

	req  httpm.Request
	resp httpm.Response
	n    int

	stepGotReq  func(msg.Envelope)
	stepRoute   func()
	stepReqSent func()
	stepGotResp func(msg.Envelope)
	stepRespond func()
	stepLoop    func()
}

// startProxyWorker runs on the dying setup proc (which dialed the
// backend) and enters the machine synchronously.
func startProxyWorker(p *sim.Proc, idx int, proxy, web *Tier, cache *contentCache,
	client *msg.Conn, o Options) {
	backend := msg.Wrap(proxy.Node.Stack.Dial(p, web.Node.Stack, "http", idx%6, idx%6))
	w := &proxyWorker{
		proxy: proxy, cache: cache,
		task: proxy.Node.S.NewTask(p.Name()),
		buf:  proxy.Node.Buf(o.FileSize + httpm.RequestBytes),
	}
	w.client = msg.NewAsync(client, w.task)
	w.backend = msg.NewAsync(backend, w.task)
	w.stepGotReq = w.gotReq
	w.stepRoute = w.route
	w.stepReqSent = w.reqSent
	w.stepGotResp = w.gotResp
	w.stepRespond = w.respond
	w.stepLoop = w.loop
	w.loop()
}

func (w *proxyWorker) loop() { w.client.Recv(mem.Buffer{}, w.stepGotReq) }

func (w *proxyWorker) gotReq(env msg.Envelope) {
	req, ok := env.Meta.(httpm.Request)
	if !ok {
		panic("httpm: expected a request")
	}
	w.req = req
	if w.proxy.Node.CPU.ExecTask(w.task, w.stepRoute, w.proxy.appWork(ProxyFixedWork)) {
		return
	}
	w.route()
}

func (w *proxyWorker) route() {
	if cbuf, hit := w.cache.Get(w.req.Path); hit {
		w.client.Send(httpm.Response{Status: 200, Path: w.req.Path},
			cbuf.Size, cbuf, tcp.SendOptions{}, w.stepLoop)
		return
	}
	w.backend.Send(w.req, httpm.RequestBytes, mem.Buffer{}, tcp.SendOptions{}, w.stepReqSent)
}

func (w *proxyWorker) reqSent() { w.backend.Recv(w.buf, w.stepGotResp) }

func (w *proxyWorker) gotResp(env msg.Envelope) {
	resp, ok := env.Meta.(httpm.Response)
	if !ok {
		panic("httpm: expected a response")
	}
	w.resp, w.n = resp, env.Body
	if cbuf, ok := w.cache.Put(w.req.Path, w.n); ok {
		cost := w.proxy.Node.Mem.CopyCost(w.buf.Addr, cbuf.Addr, w.n)
		if w.proxy.Node.CPU.ExecTask(w.task, w.stepRespond, cost) {
			return
		}
	}
	w.respond()
}

func (w *proxyWorker) respond() {
	w.client.Send(w.resp, w.n, w.buf, tcp.SendOptions{}, w.stepLoop)
}

// fwdWorker is the three-tier proxy worker: like proxyWorker but with no
// cache (dynamic content is uncacheable).
type fwdWorker struct {
	proxy   *Tier
	client  *msg.Async
	backend *msg.Async
	task    *sim.Task
	buf     mem.Buffer

	req  httpm.Request
	resp httpm.Response
	n    int

	stepGotReq  func(msg.Envelope)
	stepForward func()
	stepReqSent func()
	stepGotResp func(msg.Envelope)
	stepLoop    func()
}

func startFwdWorker(task *sim.Task, proxy *Tier, client, backend *msg.Conn, buf mem.Buffer) {
	w := &fwdWorker{proxy: proxy, task: task, buf: buf}
	w.client = msg.NewAsync(client, task)
	w.backend = msg.NewAsync(backend, task)
	w.stepGotReq = w.gotReq
	w.stepForward = w.forward
	w.stepReqSent = w.reqSent
	w.stepGotResp = w.gotResp
	w.stepLoop = w.loop
	w.loop()
}

func (w *fwdWorker) loop() { w.client.Recv(mem.Buffer{}, w.stepGotReq) }

func (w *fwdWorker) gotReq(env msg.Envelope) {
	req, ok := env.Meta.(httpm.Request)
	if !ok {
		panic("httpm: expected a request")
	}
	w.req = req
	if w.proxy.Node.CPU.ExecTask(w.task, w.stepForward, w.proxy.appWork(ProxyFixedWork)) {
		return
	}
	w.forward()
}

func (w *fwdWorker) forward() {
	w.backend.Send(w.req, httpm.RequestBytes, mem.Buffer{}, tcp.SendOptions{}, w.stepReqSent)
}

func (w *fwdWorker) reqSent() { w.backend.Recv(w.buf, w.stepGotResp) }

func (w *fwdWorker) gotResp(env msg.Envelope) {
	resp, ok := env.Meta.(httpm.Response)
	if !ok {
		panic("httpm: expected a response")
	}
	w.resp, w.n = resp, env.Body
	w.client.Send(w.resp, w.n, w.buf, tcp.SendOptions{}, w.stepLoop)
}

// clientWorker is one closed-loop request thread.
type clientWorker struct {
	mc        *msg.Async
	task      *sim.Task
	trace     workload.Trace
	dst       mem.Buffer
	completed *int64

	stepSent    func()
	stepGotResp func(msg.Envelope)
}

func startClientWorker(task *sim.Task, mc *msg.Conn, trace workload.Trace,
	dst mem.Buffer, completed *int64) {
	w := &clientWorker{task: task, trace: trace, dst: dst, completed: completed}
	w.mc = msg.NewAsync(mc, task)
	w.stepSent = w.sent
	w.stepGotResp = w.gotResp
	w.loop()
}

func (w *clientWorker) loop() {
	w.mc.Send(httpm.Request{Path: w.trace.Next()}, httpm.RequestBytes,
		mem.Buffer{}, tcp.SendOptions{}, w.stepSent)
}

func (w *clientWorker) sent() { w.mc.Recv(w.dst, w.stepGotResp) }

func (w *clientWorker) gotResp(env msg.Envelope) {
	if _, ok := env.Meta.(httpm.Response); !ok {
		panic("httpm: expected a response")
	}
	*w.completed++
	w.loop()
}

// emuWorker is an emulated proxy client (§5.2.3): a client thread that
// also pays the proxy's per-request application work.
type emuWorker struct {
	node      *host.Node
	tier      *Tier
	mc        *msg.Async
	task      *sim.Task
	trace     workload.Trace
	dst       mem.Buffer
	completed *int64

	stepSend    func()
	stepSent    func()
	stepGotResp func(msg.Envelope)
}

func startEmuWorker(task *sim.Task, node *host.Node, tier *Tier, mc *msg.Conn,
	trace workload.Trace, dst mem.Buffer, completed *int64) {
	w := &emuWorker{node: node, tier: tier, task: task, trace: trace,
		dst: dst, completed: completed}
	w.mc = msg.NewAsync(mc, task)
	w.stepSend = w.send
	w.stepSent = w.sent
	w.stepGotResp = w.gotResp
	w.loop()
}

func (w *emuWorker) loop() {
	// The emulated client is a proxy worker: it pays the proxy's
	// per-request application work.
	if w.node.CPU.ExecTask(w.task, w.stepSend, w.tier.appWork(ProxyFixedWork)) {
		return
	}
	w.send()
}

func (w *emuWorker) send() {
	w.mc.Send(httpm.Request{Path: w.trace.Next()}, httpm.RequestBytes,
		mem.Buffer{}, tcp.SendOptions{}, w.stepSent)
}

func (w *emuWorker) sent() { w.mc.Recv(w.dst, w.stepGotResp) }

func (w *emuWorker) gotResp(env msg.Envelope) {
	if _, ok := env.Meta.(httpm.Response); !ok {
		panic("httpm: expected a response")
	}
	*w.completed++
	w.loop()
}

// dbWorker answers queries on one database connection.
type dbWorker struct {
	db   *dbTier
	mc   *msg.Async
	task *sim.Task

	stepGotQuery func(msg.Envelope)
	stepReply    func()
	stepLoop     func()
}

func startDBWorker(db *dbTier, conn *tcp.Conn, name string) {
	w := &dbWorker{db: db, task: db.node.S.NewTask(name)}
	w.stepGotQuery = w.gotQuery
	w.stepReply = w.reply
	w.stepLoop = w.loop
	w.task.Start(func() {
		w.mc = msg.NewAsync(msg.Wrap(conn), w.task)
		w.loop()
	})
}

func (w *dbWorker) loop() { w.mc.Recv(mem.Buffer{}, w.stepGotQuery) }

func (w *dbWorker) gotQuery(env msg.Envelope) {
	db := w.db
	q := env.Meta.(dbQuery)
	lines := db.table.Size / db.node.P.CacheLine
	work := DBQueryWork
	// The record: DBRecordBytes of dependent accesses at a
	// key-determined position in the table.
	recLines := DBRecordBytes / db.node.P.CacheLine
	base := (q.Key * 37) % (lines - recLines)
	work += db.node.Mem.RandomCost(db.table.Addr+mem.Addr(base*db.node.P.CacheLine), recLines)
	if db.node.CPU.ExecTask(w.task, w.stepReply, work) {
		return
	}
	w.reply()
}

func (w *dbWorker) reply() {
	w.mc.Send("row", DBRecordBytes, mem.Buffer{}, tcp.SendOptions{}, w.stepLoop)
}

// appWorker runs the dynamic-content script on one connection: read a
// request, execute the script, fan queries to the database sequentially,
// render, respond.
type appWorker struct {
	idx    int
	app    *Tier
	client *msg.Async
	db     *msg.Async
	task   *sim.Task
	page   mem.Buffer
	rows   mem.Buffer
	o      ThreeTierOptions

	reqNo int
	q     int
	req   httpm.Request

	stepGotReq    func(msg.Envelope)
	stepQueries   func()
	stepQuerySent func()
	stepGotRow    func(msg.Envelope)
	stepRespond   func()
	stepLoop      func()
}

// startAppWorker runs on the dying setup proc (which dialed the
// database) and enters the machine synchronously.
func startAppWorker(p *sim.Proc, idx int, app *Tier, db *host.Node,
	client *msg.Conn, o ThreeTierOptions) {
	dbConn := msg.Wrap(app.Node.Stack.Dial(p, db.Stack, "db", idx%6, idx%6))
	w := &appWorker{
		idx: idx, app: app, o: o,
		task: app.Node.S.NewTask(p.Name()),
		page: app.Node.Buf(o.ResponseBytes),
		rows: app.Node.Buf(DBRecordBytes),
	}
	w.client = msg.NewAsync(client, w.task)
	w.db = msg.NewAsync(dbConn, w.task)
	w.stepGotReq = w.gotReq
	w.stepQueries = w.startQueries
	w.stepQuerySent = w.querySent
	w.stepGotRow = w.gotRow
	w.stepRespond = w.respond
	w.stepLoop = w.loop
	w.loop()
}

func (w *appWorker) loop() { w.client.Recv(mem.Buffer{}, w.stepGotReq) }

func (w *appWorker) gotReq(env msg.Envelope) {
	req, ok := env.Meta.(httpm.Request)
	if !ok {
		panic("httpm: expected a request")
	}
	w.req = req
	w.reqNo++
	// Script execution: fixed cost plus working-set touches.
	if w.app.Node.CPU.ExecTask(w.task, w.stepQueries, w.app.appWork(AppScriptWork)) {
		return
	}
	w.startQueries()
}

// startQueries fans out the queries (sequential, as PHP/CGI scripts do).
func (w *appWorker) startQueries() {
	w.q = 0
	w.nextQuery()
}

func (w *appWorker) nextQuery() {
	if w.q >= w.o.QueriesPerRequest {
		w.render()
		return
	}
	w.db.Send(dbQuery{Key: w.idx*1000 + w.reqNo*7 + w.q}, 96,
		mem.Buffer{}, tcp.SendOptions{}, w.stepQuerySent)
}

func (w *appWorker) querySent() { w.db.Recv(w.rows, w.stepGotRow) }

func (w *appWorker) gotRow(msg.Envelope) {
	w.q++
	w.nextQuery()
}

// render assembles the page from the rows (a pass over the response
// buffer).
func (w *appWorker) render() {
	cost := w.app.Node.Mem.TouchCost(w.page.Addr, w.o.ResponseBytes)
	if w.app.Node.CPU.ExecTask(w.task, w.stepRespond, cost) {
		return
	}
	w.respond()
}

func (w *appWorker) respond() {
	w.client.Send(httpm.Response{Status: 200, Path: w.req.Path},
		w.o.ResponseBytes, w.page, tcp.SendOptions{}, w.stepLoop)
}
