// Package datacenter implements the paper's §5 two-tier data-center: an
// Apache-like proxy tier in front of a static web tier, driven by
// closed-loop clients replaying single-file or Zipf traces. Worker
// threads (one per connection, the Apache worker model) pay fixed
// per-request costs plus accesses to a shared application working set
// priced through the cache — which is how receive-path cache pollution
// converts into lost transactions.
package datacenter

import (
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/mem"
	"ioatsim/internal/ramfs"
	"ioatsim/internal/rng"
)

// Application-level cost constants (Apache 2.0 on the paper's Xeons).
const (
	// ProxyFixedWork is the per-request CPU the proxy spends on
	// parsing, header rewriting, routing and logging (Apache 2.0 proxy
	// magnitudes).
	ProxyFixedWork = 70 * time.Microsecond
	// WebFixedWork is the per-request CPU of the static web server.
	WebFixedWork = 40 * time.Microsecond
	// AppStateBytes is a server's shared working set (code, config,
	// vhost tables, regex caches) — resident when the cache is quiet,
	// evicted by receive-path pollution.
	AppStateBytes = 1536 * cost.KB
	// AppStateLines is how many working-set lines one request touches;
	// requests touch different parts of the state, so the touches are
	// drawn at random.
	AppStateLines = 1024
)

// Tier is one server role instance on a node.
type Tier struct {
	Node     *host.Node
	FS       *ramfs.FS // content store (web tier)
	appState mem.Buffer
	rand     *rng.Rand
}

// newTier builds a tier on the node, allocating its working set.
func newTier(n *host.Node, r *rng.Rand) *Tier {
	return &Tier{
		Node:     n,
		FS:       ramfs.New(n.Mem),
		appState: n.Mem.Space.Alloc(AppStateBytes, 0),
		rand:     r,
	}
}

// appWork prices one request's application work: the fixed cost plus
// working-set touches through the node's cache. When receive-path
// traffic has evicted the working set, these touches miss and the
// request slows down — the coupling the paper's §5 results rest on.
func (t *Tier) appWork(fixed time.Duration) time.Duration {
	lines := t.appState.Size / t.Node.P.CacheLine
	var d time.Duration
	for i := 0; i < AppStateLines; i++ {
		line := t.rand.Intn(lines)
		d += t.Node.Mem.RandomCost(t.appState.Addr+mem.Addr(line*t.Node.P.CacheLine), 1)
	}
	return fixed + d
}

// Metrics is one measured configuration.
type Metrics struct {
	TPS       float64
	Completed int64
	ProxyCPU  float64
	WebCPU    float64
	ClientCPU float64
}

// Options configure a data-center run.
type Options struct {
	P    *cost.Params
	Feat ioat.Features
	Seed uint64

	// Clients: ClientNodes machines running ThreadsPerClient closed-loop
	// request threads each.
	ClientNodes      int
	ThreadsPerClient int

	// Content: FileCount files of FileSize bytes; Alpha > 0 replays a
	// Zipf trace over them, otherwise every thread requests file 0.
	// SpreadMin/SpreadMax, when set, draw file sizes uniformly from
	// [SpreadMin, SpreadMax] instead of the fixed FileSize.
	FileCount int
	FileSize  int
	SpreadMin int
	SpreadMax int
	Alpha     float64

	// CacheBytes enables the proxy content cache when positive.
	CacheBytes int

	// Check runs the simulation under the runtime invariant checker and
	// panics on any violation at the end of the run.
	Check bool

	// Strict upgrades Check to fail-fast (panic at the violating event).
	Strict bool

	// Fault, when non-nil, runs the data-center under the given fault
	// plan (see internal/fault).
	Fault *fault.Plan

	// Obs attaches observability sinks to the cluster (see host.Observability).
	Obs host.Observability

	Warm, Meas time.Duration
}

// hostOpts translates Options into cluster-construction options.
func (o Options) hostOpts() []host.Option {
	var opts []host.Option
	switch {
	case o.Strict:
		opts = append(opts, host.WithStrictCheck())
	case o.Check:
		opts = append(opts, host.WithCheck())
	}
	if o.Fault != nil {
		opts = append(opts, host.WithFault(*o.Fault))
	}
	if o.Obs.Enabled() {
		opts = append(opts, host.WithObservability(o.Obs))
	}
	return opts
}

func (o *Options) defaults() {
	if o.P == nil {
		o.P = cost.Default()
	}
	if o.ClientNodes == 0 {
		o.ClientNodes = 16
	}
	if o.ThreadsPerClient == 0 {
		o.ThreadsPerClient = 4
	}
	if o.FileCount == 0 {
		o.FileCount = 1
	}
	if o.FileSize == 0 {
		o.FileSize = 4 * cost.KB
	}
	if o.Warm == 0 {
		o.Warm = 60 * time.Millisecond
	}
	if o.Meas == 0 {
		o.Meas = 240 * time.Millisecond
	}
}
