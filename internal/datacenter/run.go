package datacenter

import (
	"fmt"

	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/msg"
	"ioatsim/internal/sim"
	"ioatsim/internal/workload"
)

// RunTwoTier builds and measures the §5.2 configuration: external
// clients -> proxy tier -> web tier, both tiers on Testbed-1-class nodes
// with the same I/OAT feature set, clients on plain machines.
func RunTwoTier(o Options) Metrics {
	o.defaults()
	cl := host.NewCluster(o.P, o.Seed, o.hostOpts()...)
	proxyNode := cl.Add("proxy", o.Feat, 6)
	webNode := cl.Add("web", o.Feat, 6)
	clients := cl.AddClients(o.ClientNodes, ioat.None())

	proxy := newTier(proxyNode, cl.Rand.Fork())
	web := newTier(webNode, cl.Rand.Fork())
	catalog := buildCatalog(cl, web, o)
	cache := newContentCache(proxyNode, o.CacheBytes)

	startWebTier(web)
	startProxyTier(proxy, web, cache, o)

	var completed int64
	for ci, cn := range clients {
		for t := 0; t < o.ThreadsPerClient; t++ {
			trace := newTrace(cl, catalog, o)
			launchClient(cn, proxyNode, ci%6, fmt.Sprintf("c%d-%d", ci, t),
				trace, o.FileSize, &completed)
		}
	}

	return measure(cl, o, &completed, proxy, web, nil)
}

// RunEmulated builds the §5.2.3 configuration: Testbed-1 node 1 runs
// `threads` emulated proxy clients firing directly at the web server on
// node 2, both with the same feature set. The paper reports the client
// node's CPU.
func RunEmulated(o Options, threads int) Metrics {
	o.defaults()
	cl := host.NewCluster(o.P, o.Seed, o.hostOpts()...)
	clientNode := cl.Add("client", o.Feat, 6)
	webNode := cl.Add("web", o.Feat, 6)

	clientTier := newTier(clientNode, cl.Rand.Fork())
	web := newTier(webNode, cl.Rand.Fork())
	catalog := buildCatalog(cl, web, o)

	startWebTier(web)

	var completed int64
	for t := 0; t < threads; t++ {
		t := t
		trace := newTrace(cl, catalog, o)
		clientNode.CPU.RegisterThread()
		cl.S.Spawn(fmt.Sprintf("emu%d", t), func(p *sim.Proc) {
			// Cold path: dial on the setup proc, then hand the loop to a
			// continuation state machine (async.go) and let the proc die.
			conn := clientNode.Stack.Dial(p, webNode.Stack, "http", t%6, t%6)
			mc := msg.Wrap(conn)
			dst := clientNode.Buf(o.FileSize)
			startEmuWorker(cl.S.NewTask(p.Name()), clientNode, clientTier,
				mc, trace, dst, &completed)
		})
	}
	return measure(cl, o, &completed, nil, web, clientTier)
}

// buildCatalog generates the web tier's content: fixed-size documents,
// or a uniform size spread when configured.
func buildCatalog(cl *host.Cluster, web *Tier, o Options) *workload.Catalog {
	if o.SpreadMax > 0 {
		return workload.GenerateSpread(web.FS, cl.Rand.Fork(), "doc",
			o.FileCount, o.SpreadMin, o.SpreadMax)
	}
	return workload.GenerateUniform(web.FS, "doc", o.FileCount, o.FileSize)
}

// newTrace builds a per-thread request trace.
func newTrace(cl *host.Cluster, catalog *workload.Catalog, o Options) workload.Trace {
	if o.Alpha > 0 {
		return workload.NewZipf(cl.Rand.Fork(), catalog.Names, o.Alpha)
	}
	return &workload.SingleFile{Path: catalog.Names[0]}
}

// startWebTier runs the web server's accept loop; each connection gets a
// dedicated worker (the Apache worker model) running as a continuation
// state machine — startWebWorker schedules the same single start event
// the old per-connection Spawn did.
func startWebTier(web *Tier) {
	l := web.Node.Stack.Listen("http")
	web.Node.S.Spawn("web-accept", func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := l.Accept(p)
			web.Node.CPU.RegisterThread()
			startWebWorker(web, conn, fmt.Sprintf("web-worker%d", i))
		}
	})
}

// startProxyTier runs the proxy's accept loop; each client connection
// gets a worker holding a persistent backend connection to the web tier.
func startProxyTier(proxy, web *Tier, cache *contentCache, o Options) {
	l := proxy.Node.Stack.Listen("http")
	proxy.Node.S.Spawn("proxy-accept", func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := l.Accept(p)
			proxy.Node.CPU.RegisterThread()
			i := i
			proxy.Node.S.Spawn(fmt.Sprintf("proxy-worker%d", i), func(wp *sim.Proc) {
				startProxyWorker(wp, i, proxy, web, cache, msg.Wrap(conn), o)
			})
		}
	})
}

// launchClient starts one closed-loop client thread on a client node.
func launchClient(node, server *host.Node, port int, name string,
	trace workload.Trace, fileSize int, completed *int64) {
	node.CPU.RegisterThread()
	node.S.Spawn(name, func(p *sim.Proc) {
		conn := node.Stack.Dial(p, server.Stack, "http", 0, port)
		mc := msg.Wrap(conn)
		dst := node.Buf(fileSize)
		startClientWorker(node.S.NewTask(p.Name()), mc, trace, dst, completed)
	})
}

// measure runs the warm-up, resets the meters, runs the measurement
// window and collects the metrics.
func measure(cl *host.Cluster, o Options, completed *int64,
	proxy, web, client *Tier) Metrics {
	cl.S.RunUntil(sim.Time(o.Warm))
	cl.ResetMeters()
	mark := *completed
	cl.S.RunUntil(sim.Time(o.Warm + o.Meas))

	m := Metrics{Completed: *completed - mark}
	m.TPS = float64(m.Completed) / o.Meas.Seconds()
	if proxy != nil {
		m.ProxyCPU = proxy.Node.CPU.Utilization()
	}
	if web != nil {
		m.WebCPU = web.Node.CPU.Utilization()
	}
	if client != nil {
		m.ClientCPU = client.Node.CPU.Utilization()
	}
	cl.MustVerify()
	return m
}
