package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSnapshotWriteJSON(t *testing.T) {
	s := NewSnapshot()
	s.Func("queue_depth", func() float64 { return 3 })
	h := s.Histogram("latency_s", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 5} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, b.String())
	}
	if doc["queue_depth"] != 3.0 {
		t.Errorf("queue_depth = %v, want 3", doc["queue_depth"])
	}
	lat, ok := doc["latency_s"].(map[string]any)
	if !ok {
		t.Fatalf("latency_s is %T, want an object", doc["latency_s"])
	}
	if lat["count"] != 3.0 {
		t.Errorf("latency count = %v, want 3", lat["count"])
	}
	// Registration order is export order.
	if qi, li := strings.Index(b.String(), "queue_depth"), strings.Index(b.String(), "latency_s"); qi > li {
		t.Error("dump does not preserve registration order")
	}
}

func TestSnapshotDuplicatePanics(t *testing.T) {
	s := NewSnapshot()
	s.Func("x", func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	s.Histogram("x")
}

func TestLockedHistogramConcurrent(t *testing.T) {
	s := NewSnapshot()
	h := s.Histogram("h", 1, 10, 100)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(w*i) / 100)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			var b strings.Builder
			if err := s.WriteJSON(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if h.N() != 8000 {
		t.Fatalf("N = %d, want 8000", h.N())
	}
}
