// Package metrics is the simulator's time-series layer: a registry of
// counters, gauges, time-weighted gauges and fixed-bucket histograms,
// sampled on a configurable simulated-time tick and exported as CSV or
// JSON series.
//
// Instruments live in per-cluster Scopes (every simulation point gets
// its own scope so sweeps don't mix their series); the Registry collects
// the sampled rows from all scopes and also implements sim.Probe, so it
// installs through the same hook as the invariant checker and the tracer
// and counts engine events while doing so.
//
// Device models never poll the registry: host registration wires gauge
// closures over device state (core busy time, port byte counters, DMA
// queue delay, cache hit counters), and the transport pushes into a
// time-weighted backlog gauge and a segment-size histogram it is handed
// at construction. With no registry installed every push site is one nil
// comparison.
package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"ioatsim/internal/sim"
)

// Row is one sampled point of one series.
type Row struct {
	T     sim.Time
	Name  string
	Value float64
}

// Registry owns the sampled rows of every scope and the engine event
// counters fed through the probe hooks. Rows are appended under a mutex
// so a registry can outlive many sequential clusters (and stay safe if a
// sweep samples from worker goroutines).
type Registry struct {
	mu     sync.Mutex
	scopes int
	rows   []Row

	scheduled  atomic.Uint64
	dispatched atomic.Uint64
}

// New returns an empty registry.
func New() *Registry { return &Registry{} }

// Enabled returns the Registry installed on the simulator, or nil.
func Enabled(s *sim.Simulator) *Registry {
	for _, p := range s.Probes() {
		if r, ok := p.(*Registry); ok {
			return r
		}
	}
	return nil
}

// EventScheduled implements sim.Probe.
func (r *Registry) EventScheduled(now, at sim.Time) { r.scheduled.Add(1) }

// EventDispatched implements sim.Probe.
func (r *Registry) EventDispatched(at sim.Time) { r.dispatched.Add(1) }

// Events reports (scheduled, dispatched) engine event totals.
func (r *Registry) Events() (scheduled, dispatched uint64) {
	return r.scheduled.Load(), r.dispatched.Load()
}

// NewScope returns a fresh instrument scope. Each scope's series are
// prefixed "c<N>/" with N the scope's creation index, so series from
// different simulation points of one sweep stay distinguishable.
func (r *Registry) NewScope() *Scope {
	r.mu.Lock()
	n := r.scopes
	r.scopes++
	r.mu.Unlock()
	return &Scope{reg: r, prefix: fmt.Sprintf("c%d/", n)}
}

// add appends sampled rows.
func (r *Registry) add(rows []Row) {
	r.mu.Lock()
	r.rows = append(r.rows, rows...)
	r.mu.Unlock()
}

// Rows returns a copy of every sampled row in collection order.
func (r *Registry) Rows() []Row {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Row(nil), r.rows...)
}

// WriteCSV exports the sampled rows in long form: one line per series
// per tick, `time_s,metric,value`.
func (r *Registry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time_s,metric,value"); err != nil {
		return err
	}
	r.mu.Lock()
	rows := r.rows
	for _, row := range rows {
		fmt.Fprintf(bw, "%.9f,%s,%g\n", row.T.Seconds(), row.Name, row.Value)
	}
	r.mu.Unlock()
	return bw.Flush()
}

// WriteJSON exports the rows grouped by series, in first-seen order:
// {"series":[{"name":..., "points":[[t_s, v], ...]}, ...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	order := []string{}
	byName := map[string][]Row{}
	for _, row := range r.rows {
		if _, ok := byName[row.Name]; !ok {
			order = append(order, row.Name)
		}
		byName[row.Name] = append(byName[row.Name], row)
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	sched, disp := r.Events()
	fmt.Fprintf(bw, "{\"events_scheduled\":%d,\"events_dispatched\":%d,\"series\":[", sched, disp)
	for i, name := range order {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "\n{\"name\":%q,\"points\":[", name)
		for j, row := range byName[name] {
			if j > 0 {
				bw.WriteByte(',')
			}
			fmt.Fprintf(bw, "[%.9f,%g]", row.T.Seconds(), row.Value)
		}
		bw.WriteString("]}")
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// ---- instruments ----

// Counter is a push-style monotone counter; the sampler emits its
// per-second rate.
type Counter struct{ v int64 }

// Add increases the counter (d >= 0).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("metrics: negative counter increment")
	}
	c.v += d
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the cumulative count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a push-style instantaneous value; the sampler emits it as-is.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// TimeWeighted is a gauge integrated over virtual time: Set records a
// piecewise-constant value, and each sampler tick emits the
// time-weighted mean over the elapsed window (queue depths and backlogs
// that change many times between ticks are reported faithfully instead
// of aliased).
type TimeWeighted struct {
	started  bool
	value    float64
	since    sim.Time
	winStart sim.Time
	integral float64
}

// Set records the value v as of time now (non-decreasing).
func (g *TimeWeighted) Set(now sim.Time, v float64) {
	if !g.started {
		g.started = true
		g.since, g.winStart = now, now
		g.value = v
		return
	}
	if now < g.since {
		panic(fmt.Sprintf("metrics: time-weighted gauge sampled backwards (%v after %v)", now, g.since))
	}
	g.integral += g.value * float64(now-g.since)
	g.since = now
	g.value = v
}

// Value returns the current (most recently Set) value.
func (g *TimeWeighted) Value() float64 { return g.value }

// SampleWindow returns the time-weighted mean since the previous sample
// (or the first Set) and starts a new window at now. A gauge that was
// never Set reports 0; a window of zero width reports the current value.
func (g *TimeWeighted) SampleWindow(now sim.Time) float64 {
	if !g.started || now < g.since {
		return 0
	}
	mean := g.value
	if now > g.winStart {
		total := g.integral + g.value*float64(now-g.since)
		mean = total / float64(now-g.winStart)
	}
	g.integral = 0
	g.since = now
	g.winStart = now
	return mean
}

// Histogram counts samples into fixed buckets split at the given upper
// bounds, with linear-interpolation quantile readout. With no bounds it
// degenerates to a single bucket spanning [min, max].
type Histogram struct {
	bounds   []float64 // ascending upper bounds; final +Inf bucket implied
	counts   []int64   // len(bounds)+1
	n        int64
	sum      float64
	min, max float64
}

// NewHistogram returns a histogram with the given ascending bucket
// upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]int64, len(bounds)+1),
	}
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		panic("metrics: NaN histogram sample")
	}
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.n++
	h.sum += v
	b := len(h.bounds)
	for i, up := range h.bounds {
		if v <= up {
			b = i
			break
		}
	}
	h.counts[b]++
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Sum returns the sample sum.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observed sample (0 if empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observed sample (0 if empty).
func (h *Histogram) Max() float64 { return h.max }

// bucketEdges returns bucket b's [lo, hi] interpolation edges, clamped
// to the observed sample range so quantiles never leave [Min, Max].
func (h *Histogram) bucketEdges(b int) (lo, hi float64) {
	lo, hi = h.min, h.max
	if b > 0 && h.bounds[b-1] > lo {
		lo = h.bounds[b-1]
	}
	if b < len(h.bounds) && h.bounds[b] < hi {
		hi = h.bounds[b]
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 < q <= 1) by linear interpolation
// within the covering bucket. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.n)
	cum := 0.0
	for b, cnt := range h.counts {
		if cnt == 0 {
			continue
		}
		prev := cum
		cum += float64(cnt)
		if cum >= target {
			lo, hi := h.bucketEdges(b)
			frac := 0.0
			if cnt > 0 {
				frac = (target - prev) / float64(cnt)
			}
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
	}
	return h.max
}
