package metrics

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Snapshot is the wall-clock sibling of Scope: a registry of named
// instruments for long-running services, read on demand (an HTTP
// /metrics handler) instead of sampled on a simulated-time tick.
// Registration order is the export order, so dumps stay diffable.
// Unlike Scope, every method is safe for concurrent use — a server's
// handlers and workers observe from many goroutines.
type Snapshot struct {
	mu    sync.Mutex
	order []string
	fns   map[string]func() float64
	hists map[string]*LockedHistogram
}

// NewSnapshot returns an empty snapshot registry.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		fns:   make(map[string]func() float64),
		hists: make(map[string]*LockedHistogram),
	}
}

// Func registers fn as a named instantaneous value, read at every dump.
// fn must be safe to call from any goroutine (read an atomic, take a
// lock). Registering a duplicate name panics.
func (s *Snapshot) Func(name string, fn func() float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.fns[name]; dup {
		panic("metrics: duplicate snapshot instrument " + name)
	}
	if _, dup := s.hists[name]; dup {
		panic("metrics: duplicate snapshot instrument " + name)
	}
	s.order = append(s.order, name)
	s.fns[name] = fn
}

// Histogram registers a named locked histogram with the given ascending
// bucket bounds and returns it for observation.
func (s *Snapshot) Histogram(name string, bounds ...float64) *LockedHistogram {
	h := &LockedHistogram{h: NewHistogram(bounds...)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.fns[name]; dup {
		panic("metrics: duplicate snapshot instrument " + name)
	}
	if _, dup := s.hists[name]; dup {
		panic("metrics: duplicate snapshot instrument " + name)
	}
	s.order = append(s.order, name)
	s.hists[name] = h
	return h
}

// WriteJSON dumps every instrument as one flat JSON object in
// registration order: plain values for Func instruments, a
// {count,mean,min,max,p50,p90,p99} object per histogram.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	order := append([]string(nil), s.order...)
	fns := make(map[string]func() float64, len(s.fns))
	hists := make(map[string]*LockedHistogram, len(s.hists))
	for _, name := range order {
		if v, ok := s.fns[name]; ok {
			fns[name] = v
		}
		if h, ok := s.hists[name]; ok {
			hists[name] = h
		}
	}
	s.mu.Unlock()

	bw := bufio.NewWriter(w)
	bw.WriteString("{")
	for i, name := range order {
		if i > 0 {
			bw.WriteByte(',')
		}
		fmt.Fprintf(bw, "\n%q: ", name)
		if fn, ok := fns[name]; ok {
			fmt.Fprintf(bw, "%g", fn())
			continue
		}
		h := hists[name]
		count, mean, hmin, hmax, p50, p90, p99 := h.Snapshot()
		fmt.Fprintf(bw, "{\"count\": %d, \"mean\": %g, \"min\": %g, \"max\": %g, \"p50\": %g, \"p90\": %g, \"p99\": %g}",
			count, mean, hmin, hmax, p50, p90, p99)
	}
	bw.WriteString("\n}\n")
	return bw.Flush()
}

// LockedHistogram is a Histogram safe for concurrent observation.
type LockedHistogram struct {
	mu sync.Mutex
	h  *Histogram
}

// Observe adds one sample.
func (l *LockedHistogram) Observe(v float64) {
	l.mu.Lock()
	l.h.Observe(v)
	l.mu.Unlock()
}

// N returns the sample count.
func (l *LockedHistogram) N() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.N()
}

// Snapshot reads every summary statistic under one lock acquisition.
func (l *LockedHistogram) Snapshot() (count int64, mean, min, max, p50, p90, p99 float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.N(), l.h.Mean(), l.h.Min(), l.h.Max(),
		l.h.Quantile(0.50), l.h.Quantile(0.90), l.h.Quantile(0.99)
}
