package metrics

import (
	"time"

	"ioatsim/internal/sim"
)

// sampleFn emits zero or more rows for one tick. now is the tick time
// and dt the window since the previous tick.
type sampleFn func(now sim.Time, dt time.Duration, emit func(name string, v float64))

// Scope is one cluster's instrument set. Registration is constructor
// time only; each sampler tick walks the registered instruments and
// appends their rows to the owning registry. A scope is not safe for
// concurrent registration with sampling, which the single-threaded event
// loop guarantees.
type Scope struct {
	reg      *Registry
	prefix   string
	samplers []sampleFn
}

// name applies the scope prefix.
func (sc *Scope) name(n string) string { return sc.prefix + n }

// GaugeFunc samples fn as an instantaneous value every tick.
func (sc *Scope) GaugeFunc(name string, fn func() float64) {
	full := sc.name(name)
	sc.samplers = append(sc.samplers, func(now sim.Time, dt time.Duration, emit func(string, float64)) {
		emit(full, fn())
	})
}

// CounterFunc samples fn as a cumulative total and emits its per-second
// rate over each tick window. The first window is measured from the
// sampler's start value, so rates are meaningful from the first row.
func (sc *Scope) CounterFunc(name string, fn func() float64) {
	full := sc.name(name)
	var prev float64
	var primed bool
	sc.samplers = append(sc.samplers, func(now sim.Time, dt time.Duration, emit func(string, float64)) {
		cur := fn()
		if !primed {
			primed = true
			prev = 0
		}
		if dt > 0 {
			emit(full, (cur-prev)/dt.Seconds())
		}
		prev = cur
	})
}

// RatioFunc emits num-delta / den-delta per tick window (a windowed hit
// ratio, not a cumulative one). Windows where the denominator did not
// move emit no row — an idle cache has no hit ratio.
func (sc *Scope) RatioFunc(name string, num, den func() float64) {
	full := sc.name(name)
	var pn, pd float64
	sc.samplers = append(sc.samplers, func(now sim.Time, dt time.Duration, emit func(string, float64)) {
		n, d := num(), den()
		if dd := d - pd; dd > 0 {
			emit(full, (n-pn)/dd)
		}
		pn, pd = n, d
	})
}

// Counter registers a push-style counter; the sampler emits its
// per-second rate each tick.
func (sc *Scope) Counter(name string) *Counter {
	c := &Counter{}
	sc.CounterFunc(name, func() float64 { return float64(c.v) })
	return c
}

// Gauge registers a push-style gauge sampled as-is each tick.
func (sc *Scope) Gauge(name string) *Gauge {
	g := &Gauge{}
	sc.GaugeFunc(name, func() float64 { return g.v })
	return g
}

// TimeWeighted registers a time-weighted gauge; the sampler emits the
// window mean each tick.
func (sc *Scope) TimeWeighted(name string) *TimeWeighted {
	g := &TimeWeighted{}
	full := sc.name(name)
	sc.samplers = append(sc.samplers, func(now sim.Time, dt time.Duration, emit func(string, float64)) {
		emit(full, g.SampleWindow(now))
	})
	return g
}

// HistogramInstrument registers a histogram; the sampler emits the
// cumulative count plus mean/p50/p99 (rows appear once the histogram has
// samples).
func (sc *Scope) HistogramInstrument(name string, bounds ...float64) *Histogram {
	h := NewHistogram(bounds...)
	full := sc.name(name)
	sc.samplers = append(sc.samplers, func(now sim.Time, dt time.Duration, emit func(string, float64)) {
		if h.n == 0 {
			return
		}
		emit(full+".count", float64(h.n))
		emit(full+".mean", h.Mean())
		emit(full+".p50", h.Quantile(0.50))
		emit(full+".p99", h.Quantile(0.99))
	})
	return h
}

// Sample runs every registered instrument once at time now with window
// dt and appends the rows to the registry.
func (sc *Scope) Sample(now sim.Time, dt time.Duration) {
	if len(sc.samplers) == 0 {
		return
	}
	rows := make([]Row, 0, len(sc.samplers))
	emit := func(name string, v float64) {
		rows = append(rows, Row{T: now, Name: name, Value: v})
	}
	for _, f := range sc.samplers {
		f(now, dt, emit)
	}
	sc.reg.add(rows)
}

// DefaultInterval is the sampling tick StartSampler picks for
// non-positive intervals: fine enough to resolve the multi-millisecond
// phases of the paper's workloads without swamping the event heap.
const DefaultInterval = time.Millisecond

// StartSampler schedules a periodic sampling tick on the simulator. The
// tick reschedules itself only while other events remain pending, so a
// sampled run still terminates: the sampler observes the workload's
// lifetime instead of extending it forever.
func (sc *Scope) StartSampler(s *sim.Simulator, every time.Duration) {
	if every <= 0 {
		every = DefaultInterval
	}
	last := s.Now()
	var tick func()
	tick = func() {
		now := s.Now()
		sc.Sample(now, now.Sub(last))
		last = now
		if s.Pending() > 0 {
			s.Schedule(every, tick)
		}
	}
	s.Schedule(every, tick)
}
