package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"ioatsim/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10, 20)
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros everywhere")
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	// No bounds: one bucket interpolating [min, max].
	h := NewHistogram()
	for _, v := range []float64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if got := h.Quantile(0.5); !almost(got, 25) {
		t.Fatalf("p50 = %v, want 25 (linear within [10,40])", got)
	}
	if got := h.Quantile(1); !almost(got, 40) {
		t.Fatalf("p100 = %v, want max 40", got)
	}
	if got := h.Quantile(0); !almost(got, 10) {
		t.Fatalf("p0 = %v, want min 10", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	samples := []float64{5, 10, 11, 99, 100, 500, 5000}
	for _, v := range samples {
		h.Observe(v)
	}
	want := []int64{2, 3, 1, 1} // (<=10)x2, (10,100]x3, (100,1000]x1, overflow x1
	for i, c := range h.counts {
		if c != want[i] {
			t.Fatalf("bucket %d count %d, want %d", i, c, want[i])
		}
	}
	if h.N() != int64(len(samples)) {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Mean(); !almost(got, 5725.0/7) {
		t.Fatalf("mean = %v", got)
	}
	if got, wantMax := h.Quantile(1), 5000.0; !almost(got, wantMax) {
		t.Fatalf("p100 = %v, want %v", got, wantMax)
	}
	// Quantiles never leave the observed range even in the overflow bucket.
	if got := h.Quantile(0.99); got > 5000 || got < 5 {
		t.Fatalf("p99 = %v outside observed range", got)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); !almost(got, 42) {
			t.Fatalf("q%v = %v, want 42", q, got)
		}
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds must panic")
		}
	}()
	NewHistogram(10, 10)
}

func TestTimeWeightedWindowMean(t *testing.T) {
	var g TimeWeighted
	// Never set: zero.
	if got := g.SampleWindow(sim.Time(1000)); got != 0 {
		t.Fatalf("unset gauge sampled %v, want 0", got)
	}
	g.Set(sim.Time(0), 10)
	g.Set(sim.Time(400), 20) // 10 for 400ns
	g.Set(sim.Time(800), 0)  // 20 for 400ns
	// 0 for 200ns: mean over [0,1000) = (10*400 + 20*400 + 0*200)/1000 = 12.
	if got := g.SampleWindow(sim.Time(1000)); !almost(got, 12) {
		t.Fatalf("window mean = %v, want 12", got)
	}
	// Second window starts fresh: constant 0 since last Set.
	if got := g.SampleWindow(sim.Time(2000)); !almost(got, 0) {
		t.Fatalf("second window mean = %v, want 0", got)
	}
	// Zero-width window reports the current value.
	g.Set(sim.Time(2000), 7)
	if got := g.SampleWindow(sim.Time(2000)); !almost(got, 7) {
		t.Fatalf("zero-width window = %v, want 7", got)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var g TimeWeighted
	g.Set(sim.Time(1000), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Set must panic")
		}
	}()
	g.Set(sim.Time(500), 2)
}

func TestCounterRejectsNegative(t *testing.T) {
	var c Counter
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add must panic")
		}
	}()
	c.Add(-1)
}

func TestSamplerRatesAndTermination(t *testing.T) {
	s := sim.New()
	reg := New()
	sc := reg.NewScope()

	var bytes float64
	sc.CounterFunc("bytes_per_s", func() float64 { return bytes })
	sc.GaugeFunc("depth", func() float64 { return 3 })
	tw := sc.TimeWeighted("queue")

	// Workload: 1000 "bytes" per 100us for 1ms, then stop.
	var step func()
	n := 0
	step = func() {
		bytes += 1000
		tw.Set(s.Now(), float64(n%2))
		if n++; n < 10 {
			s.Schedule(100*time.Microsecond, step)
		}
	}
	s.Schedule(100*time.Microsecond, step)
	sc.StartSampler(s, 500*time.Microsecond)
	end := s.Run()

	// The sampler must not run the clock forever once the workload drains.
	if end > sim.Time(2*time.Millisecond) {
		t.Fatalf("sampler extended the run to %v", end)
	}
	rows := reg.Rows()
	if len(rows) == 0 {
		t.Fatal("no rows sampled")
	}
	byName := map[string][]Row{}
	for _, r := range rows {
		byName[r.Name] = append(byName[r.Name], r)
	}
	rates := byName["c0/bytes_per_s"]
	if len(rates) < 2 {
		t.Fatalf("got %d rate samples", len(rates))
	}
	// Steps at 100..400us land before the 500us tick (the same-time step
	// was scheduled later, so the tick samples first): 4000 per 500us.
	if got := rates[0].Value; !almost(got, 8e6) {
		t.Fatalf("first-window rate = %v, want 8e6", got)
	}
	for _, r := range byName["c0/depth"] {
		if r.Value != 3 {
			t.Fatalf("gauge sampled %v, want 3", r.Value)
		}
	}
	// Time-weighted mean of alternating 0/1 per 100us windows: within [0,1].
	for _, r := range byName["c0/queue"] {
		if r.Value < 0 || r.Value > 1 {
			t.Fatalf("time-weighted sample %v outside [0,1]", r.Value)
		}
	}
}

func TestRatioFuncSkipsIdleWindows(t *testing.T) {
	s := sim.New()
	reg := New()
	sc := reg.NewScope()
	var num, den float64
	sc.RatioFunc("hit_ratio", func() float64 { return num }, func() float64 { return den })
	// Window 1: 3 hits of 4 accesses. Window 2: idle. Window 3: 1 of 2.
	s.Schedule(100*time.Microsecond, func() { num, den = 3, 4 })
	s.Schedule(1100*time.Microsecond, func() {})
	s.Schedule(2100*time.Microsecond, func() { num, den = 4, 6 })
	sc.StartSampler(s, time.Millisecond)
	s.Run()
	rows := reg.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d ratio rows, want 2 (idle window must emit none): %+v", len(rows), rows)
	}
	if !almost(rows[0].Value, 0.75) || !almost(rows[1].Value, 0.5) {
		t.Fatalf("ratios %v and %v, want 0.75 and 0.5", rows[0].Value, rows[1].Value)
	}
}

func TestRegistryExports(t *testing.T) {
	s := sim.New()
	reg := New()
	if Enabled(s) != nil {
		t.Fatal("Enabled on a bare simulator must be nil")
	}
	s2 := sim.New(sim.WithProbe(reg))
	if Enabled(s2) != reg {
		t.Fatal("Enabled did not discover the registry")
	}
	sc := reg.NewScope()
	g := sc.Gauge("g")
	g.Set(1.5)
	sc.Sample(sim.Time(1000), time.Microsecond)

	var buf bytes.Buffer
	if err := reg.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time_s,metric,value\n") || !strings.Contains(out, "c0/g,1.5") {
		t.Fatalf("CSV:\n%s", out)
	}
	buf.Reset()
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("invalid JSON:\n%s", buf.String())
	}
}
