package msg

import (
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

type req struct {
	Path string
	N    int
}

func setup(t *testing.T) (*host.Cluster, *Conn, *Conn) {
	t.Helper()
	cl, a, b := host.Testbed1(cost.Default(), ioat.Linux(), 1)
	ca, cb := tcp.Pair(a.Stack, b.Stack, 0, 0)
	return cl, Wrap(ca), Wrap(cb)
}

func TestRequestResponse(t *testing.T) {
	cl, client, server := setup(t)
	var got req
	var respBody int
	cl.S.Spawn("server", func(p *sim.Proc) {
		env := server.Recv(p, server.T.Stack().Mem.Space.Alloc(4*cost.KB, 0))
		got = env.Meta.(req)
		server.Send(p, "resp", got.N, server.T.Stack().Mem.Space.Alloc(got.N, 0), tcp.SendOptions{})
	})
	cl.S.Spawn("client", func(p *sim.Proc) {
		client.Send(p, req{Path: "/a", N: 16 * cost.KB}, 0, client.T.Stack().Mem.Space.Alloc(1, 0), tcp.SendOptions{})
		env := client.Recv(p, client.T.Stack().Mem.Space.Alloc(16*cost.KB, 0))
		respBody = env.Body
	})
	cl.S.Run()
	if got.Path != "/a" || got.N != 16*cost.KB {
		t.Fatalf("server got %+v", got)
	}
	if respBody != 16*cost.KB {
		t.Fatalf("client got body %d", respBody)
	}
}

func TestMessageOrdering(t *testing.T) {
	cl, client, server := setup(t)
	var order []int
	cl.S.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			env := server.Recv(p, server.hdr)
			order = append(order, env.Meta.(int))
		}
	})
	cl.S.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			client.Send(p, i, 1024*(i+1), client.hdr, tcp.SendOptions{})
		}
	})
	cl.S.Run()
	if len(order) != 5 {
		t.Fatalf("received %d messages", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRecvBeforeSendBlocks(t *testing.T) {
	cl, client, server := setup(t)
	var recvAt, sendAt sim.Time
	cl.S.Spawn("server", func(p *sim.Proc) {
		server.Recv(p, server.hdr)
		recvAt = p.Now()
	})
	cl.S.Spawn("client", func(p *sim.Proc) {
		p.Sleep(5 * 1000 * 1000) // 5 ms
		sendAt = p.Now()
		client.Send(p, "late", 0, client.hdr, tcp.SendOptions{})
	})
	cl.S.Run()
	if recvAt <= sendAt {
		t.Fatalf("recv at %v before send at %v", recvAt, sendAt)
	}
}

func TestWrapIdempotent(t *testing.T) {
	_, client, _ := setup(t)
	if Wrap(client.T) != client {
		t.Fatal("Wrap created a second wrapper")
	}
}

func TestZeroBodyMessages(t *testing.T) {
	cl, client, server := setup(t)
	count := 0
	cl.S.Spawn("server", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			env := server.Recv(p, server.hdr)
			if env.Body != 0 {
				t.Errorf("body = %d", env.Body)
			}
			count++
		}
	})
	cl.S.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			client.Send(p, "ping", 0, client.hdr, tcp.SendOptions{})
		}
	})
	cl.S.Run()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
}
