// Package msg provides framed request/response messaging over the
// byte-stream transport: each message is a fixed-size header plus a body
// of declared length. The simulator does not move real bytes, so message
// metadata travels on a zero-cost side channel while all timing and CPU
// cost comes from the underlying stream transfer of header+body bytes.
package msg

import (
	"ioatsim/internal/check"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

// HeaderBytes is the on-wire size of a message header.
const HeaderBytes = 64

// Envelope pairs a message's metadata with its body length.
type Envelope struct {
	Meta any
	Body int
}

// Conn is one endpoint of a framed connection.
type Conn struct {
	T     *tcp.Conn
	inbox []Envelope
	// hdr is the staging buffer message headers are serialized from/into.
	hdr mem.Buffer
	chk *check.Checker
}

// Wrap builds the framed wrapper for one endpoint. Both endpoints of a
// connection must be wrapped before messages flow.
func Wrap(c *tcp.Conn) *Conn {
	if mc, ok := c.UserData().(*Conn); ok {
		return mc
	}
	mc := &Conn{T: c, hdr: c.Stack().Mem.Space.Alloc(HeaderBytes, 0),
		chk: check.Enabled(c.Stack().S)}
	c.SetUserData(mc)
	return mc
}

// peer returns the wrapper of the remote endpoint, wrapping it on demand
// (the remote side may not have touched the connection yet).
func (m *Conn) peer() *Conn { return Wrap(m.T.Peer()) }

// Send transmits one message: meta describes it, body is the payload
// length, and src is the user buffer the payload is charged against
// (the header staging buffer is used when src is empty).
func (m *Conn) Send(p *sim.Proc, meta any, body int, src mem.Buffer, opts tcp.SendOptions) {
	if body < 0 {
		panic("msg: negative body")
	}
	m.peer().inbox = append(m.peer().inbox, Envelope{Meta: meta, Body: body})
	if m.chk != nil {
		// Every envelope queued must eventually be consumed by a Recv,
		// and framed bytes entering the stream must all come back out.
		m.chk.Ledger("msg:env").In(1)
		m.chk.Ledger("msg:bytes").In(int64(HeaderBytes + body))
	}
	// Header always goes through the normal copy path.
	m.T.Send(p, m.hdr, HeaderBytes)
	if body > 0 {
		if src.Size == 0 {
			src = m.hdr
		}
		m.T.SendOpts(p, src, body, opts)
	}
}

// Recv blocks until one whole message (header + body) has been received
// and consumed into dst (the header staging buffer when dst is empty),
// then returns its envelope.
func (m *Conn) Recv(p *sim.Proc, dst mem.Buffer) Envelope {
	// The envelope may not have been registered yet (metadata is
	// enqueued at send time, which always precedes data arrival, but the
	// receiver can call Recv first) — wait for the header bytes, which
	// forces the ordering.
	m.T.Recv(p, m.hdr, HeaderBytes)
	if len(m.inbox) == 0 {
		panic("msg: header bytes arrived without envelope")
	}
	env := m.inbox[0]
	m.inbox = m.inbox[1:]
	if env.Body > 0 {
		if dst.Size == 0 {
			dst = m.hdr
		}
		m.T.Recv(p, dst, env.Body)
	}
	if m.chk != nil {
		m.chk.Assert(env.Body >= 0, "msg", "envelope with negative body %d", env.Body)
		m.chk.Ledger("msg:env").Out(1)
		m.chk.Ledger("msg:bytes").Out(int64(HeaderBytes + env.Body))
	}
	return env
}
