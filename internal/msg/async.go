package msg

// Continuation-passing framed messaging: the same header+body protocol
// as the blocking Send/Recv, driven by a sim.Task through the
// transport's Sender/Receiver state machines. An Async is created once
// per (endpoint, task) on the cold path and reused for every message;
// continuations are bound at construction so the steady state allocates
// nothing. Callers must likewise pass pre-bound done callbacks.
//
// The event pushes are exactly those of the blocking path — envelope
// enqueue and ledger-in before the header bytes move, ledger-out after
// the body lands — so converted loops schedule byte-identically.

import (
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

// Async drives non-blocking framed messaging on one endpoint. At most
// one send and one receive may be in flight at a time (matching the
// transport's one-transfer-per-direction rule).
type Async struct {
	M  *Conn
	tx *tcp.Sender
	rx *tcp.Receiver

	sendBody int
	sendSrc  mem.Buffer
	sendOpts tcp.SendOptions
	sendDone func()

	recvDst  mem.Buffer
	recvEnv  Envelope
	recvDone func(Envelope)

	stepSendBody func()
	stepRecvBody func()
	stepRecvFin  func()
}

// NewAsync returns a reusable continuation-passing wrapper for m, driven
// by t. The task must be the one running the calling state machine: the
// wrapper suspends and resumes it across the underlying stream steps.
func NewAsync(m *Conn, t *sim.Task) *Async {
	a := &Async{M: m, tx: tcp.NewSender(m.T, t), rx: tcp.NewReceiver(m.T, t)}
	a.stepSendBody = a.sendBodyStep
	a.stepRecvBody = a.recvBodyStep
	a.stepRecvFin = a.recvFinish
	return a
}

// Send is the continuation-passing form of Conn.Send: done fires when
// the last payload byte has been handed to the NIC.
func (a *Async) Send(meta any, body int, src mem.Buffer, opts tcp.SendOptions, done func()) {
	m := a.M
	if body < 0 {
		panic("msg: negative body")
	}
	m.peer().inbox = append(m.peer().inbox, Envelope{Meta: meta, Body: body})
	if m.chk != nil {
		// Every envelope queued must eventually be consumed by a Recv,
		// and framed bytes entering the stream must all come back out.
		m.chk.Ledger("msg:env").In(1)
		m.chk.Ledger("msg:bytes").In(int64(HeaderBytes + body))
	}
	a.sendBody, a.sendSrc, a.sendOpts, a.sendDone = body, src, opts, done
	// Header always goes through the normal copy path.
	a.tx.Send(m.hdr, HeaderBytes, a.stepSendBody)
}

// sendBodyStep runs once the header bytes have been handed off.
func (a *Async) sendBodyStep() {
	if a.sendBody > 0 {
		src := a.sendSrc
		if src.Size == 0 {
			src = a.M.hdr
		}
		done := a.sendDone
		a.sendDone = nil
		a.tx.SendOpts(src, a.sendBody, a.sendOpts, done)
		return
	}
	done := a.sendDone
	a.sendDone = nil
	done()
}

// Recv is the continuation-passing form of Conn.Recv: done fires with
// the message's envelope once header and body have been consumed into
// dst (the header staging buffer when dst is empty).
func (a *Async) Recv(dst mem.Buffer, done func(Envelope)) {
	a.recvDst, a.recvDone = dst, done
	// Wait for the header bytes first; envelope registration at send time
	// always precedes their arrival.
	a.rx.Recv(a.M.hdr, HeaderBytes, a.stepRecvBody)
}

// recvBodyStep runs once the header bytes have been consumed: pop the
// envelope and receive the body.
func (a *Async) recvBodyStep() {
	m := a.M
	if len(m.inbox) == 0 {
		panic("msg: header bytes arrived without envelope")
	}
	env := m.inbox[0]
	m.inbox = m.inbox[1:]
	a.recvEnv = env
	if env.Body > 0 {
		dst := a.recvDst
		if dst.Size == 0 {
			dst = m.hdr
		}
		a.rx.Recv(dst, env.Body, a.stepRecvFin)
		return
	}
	a.recvFinish()
}

// recvFinish closes the message's ledger entries and delivers the
// envelope.
func (a *Async) recvFinish() {
	m := a.M
	env := a.recvEnv
	if m.chk != nil {
		m.chk.Assert(env.Body >= 0, "msg", "envelope with negative body %d", env.Body)
		m.chk.Ledger("msg:env").Out(1)
		m.chk.Ledger("msg:bytes").Out(int64(HeaderBytes + env.Body))
	}
	done := a.recvDone
	a.recvDone = nil
	done(env)
}

// Task returns the driving task.
func (a *Async) Task() *sim.Task { return a.tx.Task() }
