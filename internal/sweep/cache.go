// Point-level result caching for sweeps.
//
// Every sweep point is a pure function of its configuration: the same
// seed, scale, parameter set and code produce byte-identical rows (the
// property the golden corpus pins). That makes each point's result
// content-addressable — Key hashes a canonical encoding of everything
// the point depends on, and PointCache memoizes the gob-encoded row
// under that key, in process and optionally on disk. Repeated
// invocations (re-rendering figures, iterating on one experiment while
// the rest are untouched, CI re-runs at a pinned code version) then
// skip the simulation entirely.
//
// The cache can only be trusted as far as the key reaches: callers must
// fold in a code-version tag and bump it whenever simulation semantics
// change, because the hash sees configurations, not the model code.
package sweep

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
)

// Key returns the content-addressed identity of one sweep point: a hex
// SHA-256 over a canonical encoding of parts. Parts may be numbers,
// bools, strings, and (pointers to) structs, slices or arrays of those;
// struct fields are folded in by name in declaration order, so the key
// is deterministic across processes. Unsupported kinds (maps, funcs,
// channels) panic: silently skipping a part would alias distinct
// configurations to one key.
func Key(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		writeCanon(h, reflect.ValueOf(p))
		h.Write([]byte{0x1f})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeCanon encodes v deterministically. Every scalar is prefixed with
// a kind tag and structs with their full type name, so values of
// different types never collide ("1" as int vs. uint vs. "1" the
// string), and reordering or renaming struct fields changes the key.
func writeCanon(w io.Writer, v reflect.Value) {
	if !v.IsValid() {
		io.WriteString(w, "nil")
		return
	}
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return
		}
		writeCanon(w, v.Elem())
	case reflect.Bool:
		fmt.Fprintf(w, "b%t", v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "i%d", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		fmt.Fprintf(w, "u%d", v.Uint())
	case reflect.Float32, reflect.Float64:
		io.WriteString(w, "f")
		io.WriteString(w, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		// Length-prefixed so adjacent strings can't run together.
		fmt.Fprintf(w, "s%d:%s", v.Len(), v.String())
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "[%d:", v.Len())
		for i := 0; i < v.Len(); i++ {
			writeCanon(w, v.Index(i))
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	case reflect.Struct:
		t := v.Type()
		fmt.Fprintf(w, "{%s", t.String())
		for i := 0; i < t.NumField(); i++ {
			fmt.Fprintf(w, ";%s=", t.Field(i).Name)
			writeCanon(w, v.Field(i))
		}
		io.WriteString(w, "}")
	default:
		panic("sweep: key part of unsupported kind " + v.Kind().String())
	}
}

// PointCache memoizes sweep-point results by content-addressed key. An
// in-process map serves hits across the figures of one invocation; with
// a directory it also persists each result as <dir>/<key>.gob, so later
// invocations at the same configuration and code version skip the
// simulation. Safe for concurrent use by parallel sweep workers.
//
// The in-process memo is optionally bounded (see Bound): entries are
// kept on an LRU list and the oldest are dropped once the entry or
// payload-byte cap is exceeded, so a long-running server can share one
// cache across an unbounded job stream without growing without limit.
// Eviction only forgets the in-process copy — a persisted entry is
// re-promoted from disk on the next lookup.
type PointCache struct {
	dir string

	mu         sync.Mutex
	memo       map[string]*lruEntry
	head, tail *lruEntry // LRU list: head = most recent, tail = next victim
	bytes      int64     // sum of memoized payload lengths
	maxEntries int       // 0 = unbounded
	maxBytes   int64     // 0 = unbounded
	hits       uint64
	misses     uint64
	evictions  uint64
}

// lruEntry is one memoized result on the recency list.
type lruEntry struct {
	key        string
	blob       []byte
	prev, next *lruEntry
}

// NewPointCache returns an unbounded cache memoizing in process; if dir
// is non-empty, results are also persisted there (the directory is
// created on first store).
func NewPointCache(dir string) *PointCache {
	return &PointCache{dir: dir, memo: make(map[string]*lruEntry)}
}

// Bound caps the in-process memo at maxEntries results and maxBytes
// payload bytes (either 0 = unbounded in that dimension) and returns c.
// Exceeding a cap evicts least-recently-used entries, except that the
// most recent entry always stays — a single result larger than maxBytes
// must not thrash. Safe to call at any point; existing excess entries
// are evicted immediately.
func (c *PointCache) Bound(maxEntries int, maxBytes int64) *PointCache {
	c.mu.Lock()
	c.maxEntries = maxEntries
	c.maxBytes = maxBytes
	c.evict()
	c.mu.Unlock()
	return c
}

// Dir reports the persistence directory ("" for memo-only).
func (c *PointCache) Dir() string { return c.dir }

// Stats reports how many point lookups hit and missed so far.
func (c *PointCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports how many memo entries the LRU bound has dropped.
func (c *PointCache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// Len reports the number of in-process memo entries.
func (c *PointCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.memo)
}

// Bytes reports the payload bytes held by the in-process memo.
func (c *PointCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// unlink removes e from the recency list.
func (c *PointCache) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront makes e the most recent entry.
func (c *PointCache) pushFront(e *lruEntry) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// over reports whether the memo exceeds a configured cap.
func (c *PointCache) over() bool {
	return (c.maxEntries > 0 && len(c.memo) > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

// evict drops least-recently-used entries until the memo fits its caps,
// always sparing the most recent entry. Callers hold c.mu.
func (c *PointCache) evict() {
	for c.over() && c.tail != nil && c.tail != c.head {
		victim := c.tail
		c.unlink(victim)
		delete(c.memo, victim.key)
		c.bytes -= int64(len(victim.blob))
		c.evictions++
	}
}

// insert records key -> blob in the memo (replacing any existing entry),
// promotes it to most recent, and enforces the caps. Callers hold c.mu.
func (c *PointCache) insert(key string, blob []byte) {
	if e, ok := c.memo[key]; ok {
		c.bytes += int64(len(blob)) - int64(len(e.blob))
		e.blob = blob
		c.unlink(e)
		c.pushFront(e)
	} else {
		e := &lruEntry{key: key, blob: blob}
		c.memo[key] = e
		c.bytes += int64(len(blob))
		c.pushFront(e)
	}
	c.evict()
}

// lookup returns the stored encoding for key, consulting the memo map
// first and the persistence directory second (promoting disk hits into
// the memo).
func (c *PointCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	if e, ok := c.memo[key]; ok {
		blob := e.blob
		c.unlink(e)
		c.pushFront(e)
		c.mu.Unlock()
		return blob, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	blob, err := os.ReadFile(filepath.Join(c.dir, key+".gob"))
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.insert(key, blob)
	c.mu.Unlock()
	return blob, true
}

// store records the encoding for key. Disk writes go through a temp
// file and rename, so a crashed or concurrent run never leaves a
// half-written entry (a corrupted entry would be recomputed anyway, see
// CachedRun). Persistence errors are deliberately swallowed: the cache
// is an accelerator, never a correctness dependency.
func (c *PointCache) store(key string, blob []byte) {
	c.mu.Lock()
	c.insert(key, blob)
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, key+".gob")); err != nil {
		os.Remove(tmp.Name())
	}
}

// count adjusts the hit/miss tallies.
func (c *PointCache) count(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

// CachedRun is Run with per-point memoization: before computing point
// i, the cache is consulted at key(i), and a decodable hit is returned
// without running fn. Misses — including entries that fail to decode,
// e.g. a truncated or corrupted cache file — run fn and store its
// gob-encoded result (T must therefore have exported fields). A nil
// cache degrades to plain Run.
func CachedRun[T any](c *PointCache, parallel, n int, key func(i int) string, fn func(i int) T) []T {
	out, _ := CachedRunCtx(context.Background(), c, parallel, n, key, fn)
	return out
}

// CachedRunCtx is CachedRun under a context, with RunCtx's cancellation
// contract: no new point (cached or not) starts once ctx is cancelled,
// and the call returns ctx.Err() alongside the partial results.
func CachedRunCtx[T any](ctx context.Context, c *PointCache, parallel, n int, key func(i int) string, fn func(i int) T) ([]T, error) {
	if c == nil {
		return RunCtx(ctx, parallel, n, fn)
	}
	return RunCtx(ctx, parallel, n, func(i int) T {
		k := key(i)
		if blob, ok := c.lookup(k); ok {
			var out T
			if gob.NewDecoder(bytes.NewReader(blob)).Decode(&out) == nil {
				c.count(true)
				return out
			}
		}
		c.count(false)
		out := fn(i)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&out); err != nil {
			panic(fmt.Sprintf("sweep: point result %T not cacheable: %v", out, err))
		}
		c.store(k, buf.Bytes())
		return out
	})
}
