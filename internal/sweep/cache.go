// Point-level result caching for sweeps.
//
// Every sweep point is a pure function of its configuration: the same
// seed, scale, parameter set and code produce byte-identical rows (the
// property the golden corpus pins). That makes each point's result
// content-addressable — Key hashes a canonical encoding of everything
// the point depends on, and PointCache memoizes the gob-encoded row
// under that key, in process and optionally on disk. Repeated
// invocations (re-rendering figures, iterating on one experiment while
// the rest are untouched, CI re-runs at a pinned code version) then
// skip the simulation entirely.
//
// The cache can only be trusted as far as the key reaches: callers must
// fold in a code-version tag and bump it whenever simulation semantics
// change, because the hash sees configurations, not the model code.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
)

// Key returns the content-addressed identity of one sweep point: a hex
// SHA-256 over a canonical encoding of parts. Parts may be numbers,
// bools, strings, and (pointers to) structs, slices or arrays of those;
// struct fields are folded in by name in declaration order, so the key
// is deterministic across processes. Unsupported kinds (maps, funcs,
// channels) panic: silently skipping a part would alias distinct
// configurations to one key.
func Key(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		writeCanon(h, reflect.ValueOf(p))
		h.Write([]byte{0x1f})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeCanon encodes v deterministically. Every scalar is prefixed with
// a kind tag and structs with their full type name, so values of
// different types never collide ("1" as int vs. uint vs. "1" the
// string), and reordering or renaming struct fields changes the key.
func writeCanon(w io.Writer, v reflect.Value) {
	if !v.IsValid() {
		io.WriteString(w, "nil")
		return
	}
	switch v.Kind() {
	case reflect.Pointer, reflect.Interface:
		if v.IsNil() {
			io.WriteString(w, "nil")
			return
		}
		writeCanon(w, v.Elem())
	case reflect.Bool:
		fmt.Fprintf(w, "b%t", v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "i%d", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		fmt.Fprintf(w, "u%d", v.Uint())
	case reflect.Float32, reflect.Float64:
		io.WriteString(w, "f")
		io.WriteString(w, strconv.FormatFloat(v.Float(), 'g', -1, 64))
	case reflect.String:
		// Length-prefixed so adjacent strings can't run together.
		fmt.Fprintf(w, "s%d:%s", v.Len(), v.String())
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "[%d:", v.Len())
		for i := 0; i < v.Len(); i++ {
			writeCanon(w, v.Index(i))
			io.WriteString(w, ",")
		}
		io.WriteString(w, "]")
	case reflect.Struct:
		t := v.Type()
		fmt.Fprintf(w, "{%s", t.String())
		for i := 0; i < t.NumField(); i++ {
			fmt.Fprintf(w, ";%s=", t.Field(i).Name)
			writeCanon(w, v.Field(i))
		}
		io.WriteString(w, "}")
	default:
		panic("sweep: key part of unsupported kind " + v.Kind().String())
	}
}

// PointCache memoizes sweep-point results by content-addressed key. An
// in-process map serves hits across the figures of one invocation; with
// a directory it also persists each result as <dir>/<key>.gob, so later
// invocations at the same configuration and code version skip the
// simulation. Safe for concurrent use by parallel sweep workers.
type PointCache struct {
	dir string

	mu     sync.Mutex
	memo   map[string][]byte
	hits   uint64
	misses uint64
}

// NewPointCache returns a cache memoizing in process; if dir is
// non-empty, results are also persisted there (the directory is created
// on first store).
func NewPointCache(dir string) *PointCache {
	return &PointCache{dir: dir, memo: make(map[string][]byte)}
}

// Dir reports the persistence directory ("" for memo-only).
func (c *PointCache) Dir() string { return c.dir }

// Stats reports how many point lookups hit and missed so far.
func (c *PointCache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// lookup returns the stored encoding for key, consulting the memo map
// first and the persistence directory second (promoting disk hits into
// the memo).
func (c *PointCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	blob, ok := c.memo[key]
	c.mu.Unlock()
	if ok {
		return blob, true
	}
	if c.dir == "" {
		return nil, false
	}
	blob, err := os.ReadFile(filepath.Join(c.dir, key+".gob"))
	if err != nil {
		return nil, false
	}
	c.mu.Lock()
	c.memo[key] = blob
	c.mu.Unlock()
	return blob, true
}

// store records the encoding for key. Disk writes go through a temp
// file and rename, so a crashed or concurrent run never leaves a
// half-written entry (a corrupted entry would be recomputed anyway, see
// CachedRun). Persistence errors are deliberately swallowed: the cache
// is an accelerator, never a correctness dependency.
func (c *PointCache) store(key string, blob []byte) {
	c.mu.Lock()
	c.memo[key] = blob
	c.mu.Unlock()
	if c.dir == "" {
		return
	}
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(blob)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(c.dir, key+".gob")); err != nil {
		os.Remove(tmp.Name())
	}
}

// count adjusts the hit/miss tallies.
func (c *PointCache) count(hit bool) {
	c.mu.Lock()
	if hit {
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
}

// CachedRun is Run with per-point memoization: before computing point
// i, the cache is consulted at key(i), and a decodable hit is returned
// without running fn. Misses — including entries that fail to decode,
// e.g. a truncated or corrupted cache file — run fn and store its
// gob-encoded result (T must therefore have exported fields). A nil
// cache degrades to plain Run.
func CachedRun[T any](c *PointCache, parallel, n int, key func(i int) string, fn func(i int) T) []T {
	if c == nil {
		return Run(parallel, n, fn)
	}
	return Run(parallel, n, func(i int) T {
		k := key(i)
		if blob, ok := c.lookup(k); ok {
			var out T
			if gob.NewDecoder(bytes.NewReader(blob)).Decode(&out) == nil {
				c.count(true)
				return out
			}
		}
		c.count(false)
		out := fn(i)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&out); err != nil {
			panic(fmt.Sprintf("sweep: point result %T not cacheable: %v", out, err))
		}
		c.store(k, buf.Bytes())
		return out
	})
}
