package sweep

import (
	"fmt"
	"testing"
)

// fill stores n distinct single-byte-payload entries through the public
// CachedRun path so the LRU sees realistic traffic.
func fill(c *PointCache, lo, hi int) {
	for i := lo; i < hi; i++ {
		i := i
		CachedRun(c, 1, 1, func(int) string { return Key("lru", i) },
			func(int) int { return i })
	}
}

func TestBoundEvictsOldestByEntries(t *testing.T) {
	c := NewPointCache("").Bound(4, 0)
	fill(c, 0, 10)
	if got := c.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := c.Evictions(); got != 6 {
		t.Fatalf("Evictions = %d, want 6", got)
	}
	// The four most recent keys (6..9) survive; the oldest are gone.
	for i := 6; i < 10; i++ {
		if _, ok := c.lookup(Key("lru", i)); !ok {
			t.Errorf("recent key %d evicted", i)
		}
	}
	if _, ok := c.lookup(Key("lru", 0)); ok {
		t.Error("oldest key survived a full eviction cycle")
	}
}

func TestBoundEvictsByBytes(t *testing.T) {
	c := NewPointCache("")
	// Store via the internal path so payload sizes are exact.
	for i := 0; i < 8; i++ {
		c.store(fmt.Sprintf("k%d", i), make([]byte, 100))
	}
	if c.Bytes() != 800 {
		t.Fatalf("Bytes = %d, want 800", c.Bytes())
	}
	c.Bound(0, 250)
	if c.Bytes() > 250 {
		t.Fatalf("Bytes = %d after Bound(0, 250)", c.Bytes())
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestBoundSparesNewestOversizedEntry(t *testing.T) {
	c := NewPointCache("").Bound(0, 10)
	c.store("big", make([]byte, 1000))
	if c.Len() != 1 {
		t.Fatalf("a single oversized entry must stay memoized; Len = %d", c.Len())
	}
	c.store("big2", make([]byte, 2000))
	if c.Len() != 1 || c.Bytes() != 2000 {
		t.Fatalf("newest oversized entry must replace the older one; Len = %d Bytes = %d",
			c.Len(), c.Bytes())
	}
}

func TestLookupPromotesRecency(t *testing.T) {
	c := NewPointCache("").Bound(2, 0)
	c.store("a", []byte{1})
	c.store("b", []byte{2})
	if _, ok := c.lookup("a"); !ok { // promote a above b
		t.Fatal("a missing")
	}
	c.store("c", []byte{3}) // must evict b, not a
	if _, ok := c.lookup("a"); !ok {
		t.Error("a was evicted despite being promoted")
	}
	if _, ok := c.lookup("b"); ok {
		t.Error("b survived; LRU order ignored the promotion")
	}
}

func TestEvictionForgetsMemoOnlyNotDisk(t *testing.T) {
	dir := t.TempDir()
	c := NewPointCache(dir).Bound(1, 0)
	c.store("x", []byte{1, 2, 3})
	c.store("y", []byte{4}) // evicts x from the memo
	if got, ok := c.lookup("x"); !ok || len(got) != 3 {
		t.Fatalf("evicted entry not re-promoted from disk: ok=%v len=%d", ok, len(got))
	}
}

func TestReplaceAdjustsBytes(t *testing.T) {
	c := NewPointCache("")
	c.store("k", make([]byte, 100))
	c.store("k", make([]byte, 40))
	if c.Bytes() != 40 || c.Len() != 1 {
		t.Fatalf("replace accounting wrong: Bytes=%d Len=%d", c.Bytes(), c.Len())
	}
}
