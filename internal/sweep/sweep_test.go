package sweep

import (
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunOrdersResultsByIndex(t *testing.T) {
	for _, parallel := range []int{1, 2, 8, 0} {
		got := Run(parallel, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallel=%d: out[%d] = %d, want %d", parallel, i, v, i*i)
			}
		}
	}
}

func TestRunEmptyAndSingle(t *testing.T) {
	if got := Run(4, 0, func(i int) int { return i }); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	got := Run(4, 1, func(i int) string { return "only" })
	if len(got) != 1 || got[0] != "only" {
		t.Fatalf("n=1 returned %v", got)
	}
}

func TestRunCallsEachIndexOnce(t *testing.T) {
	var calls [64]int32
	Run(8, len(calls), func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("index %d called %d times", i, c)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var cur, peak int32
	Run(3, 50, func(i int) struct{} {
		n := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		runtime.Gosched()
		atomic.AddInt32(&cur, -1)
		return struct{}{}
	})
	if peak > 3 {
		t.Fatalf("observed %d concurrent points, limit 3", peak)
	}
}

func TestRunPropagatesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic not propagated")
		}
		if !strings.Contains(r.(string), "boom") {
			t.Fatalf("unexpected panic payload %v", r)
		}
	}()
	Run(4, 10, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(0) should resolve to GOMAXPROCS")
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(<0) should resolve to GOMAXPROCS")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers(5) != 5")
	}
}
