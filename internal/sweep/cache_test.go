package sweep

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

type row struct {
	N int
	F float64
	D int64
}

// TestKeyDeterministic checks the properties the cache relies on: equal
// parts hash equally (including pointer vs. value forms), and any
// differing part — value, type, or arrangement — changes the key.
func TestKeyDeterministic(t *testing.T) {
	r := row{N: 3, F: 2.5, D: 7}
	k := Key("v1", "fig", uint64(1), 0.5, r)
	if k != Key("v1", "fig", uint64(1), 0.5, r) {
		t.Fatal("identical parts produced different keys")
	}
	if k != Key("v1", "fig", uint64(1), 0.5, &r) {
		t.Fatal("pointer and value forms of the same struct must hash equally")
	}
	distinct := map[string]string{
		"version": Key("v2", "fig", uint64(1), 0.5, r),
		"kind":    Key("v1", "gif", uint64(1), 0.5, r),
		"seed":    Key("v1", "fig", uint64(2), 0.5, r),
		"scale":   Key("v1", "fig", uint64(1), 0.25, r),
		"field":   Key("v1", "fig", uint64(1), 0.5, row{N: 4, F: 2.5, D: 7}),
		"type":    Key("v1", "fig", int64(1), 0.5, r),
		"fewer":   Key("v1", "fig", uint64(1), 0.5),
	}
	seen := map[string]string{k: "base"}
	for name, other := range distinct {
		if prev, dup := seen[other]; dup {
			t.Errorf("key for %q collides with %q", name, prev)
		}
		seen[other] = name
	}
}

// TestKeyUnsupportedKindPanics checks that a part the canonical encoder
// cannot hash fails loudly instead of silently aliasing configurations.
func TestKeyUnsupportedKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Key(map) did not panic")
		}
	}()
	Key(map[string]int{"a": 1})
}

// TestCachedRunMemo checks in-process memoization: the second identical
// sweep returns the same rows without invoking fn.
func TestCachedRunMemo(t *testing.T) {
	c := NewPointCache("")
	var calls atomic.Int64
	key := func(i int) string { return Key("memo", i) }
	fn := func(i int) row {
		calls.Add(1)
		return row{N: i, F: float64(i) / 2}
	}
	first := CachedRun(c, 1, 4, key, fn)
	second := CachedRun(c, 1, 4, key, fn)
	if calls.Load() != 4 {
		t.Fatalf("fn ran %d times, want 4 (second sweep must be all hits)", calls.Load())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("row %d: cached %+v != computed %+v", i, second[i], first[i])
		}
	}
	if hits, misses := c.Stats(); hits != 4 || misses != 4 {
		t.Fatalf("stats = %d hits, %d misses; want 4, 4", hits, misses)
	}
}

// TestCachedRunPersists checks the disk path: a fresh PointCache over
// the same directory serves every point without recomputation — the
// cross-invocation reuse ioatbench -pointcache relies on.
func TestCachedRunPersists(t *testing.T) {
	dir := t.TempDir()
	var calls atomic.Int64
	key := func(i int) string { return Key("disk", i) }
	fn := func(i int) row {
		calls.Add(1)
		return row{N: i, D: int64(i) * 1000}
	}
	first := CachedRun(NewPointCache(dir), 1, 3, key, fn)
	second := CachedRun(NewPointCache(dir), 1, 3, key, fn)
	if calls.Load() != 3 {
		t.Fatalf("fn ran %d times, want 3 (second cache must hit the files)", calls.Load())
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("row %d: disk %+v != computed %+v", i, second[i], first[i])
		}
	}
}

// TestCachedRunCorruptedFile checks that an undecodable cache entry is
// treated as a miss: the point is recomputed and the entry rewritten.
func TestCachedRunCorruptedFile(t *testing.T) {
	dir := t.TempDir()
	key := func(i int) string { return Key("corrupt", i) }
	CachedRun(NewPointCache(dir), 1, 1, key, func(i int) row { return row{N: 42} })
	path := filepath.Join(dir, key(0)+".gob")
	if err := os.WriteFile(path, []byte("not gob at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	c := NewPointCache(dir)
	out := CachedRun(c, 1, 1, key, func(i int) row {
		calls.Add(1)
		return row{N: 42}
	})
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1 (corrupted entry must be recomputed)", calls.Load())
	}
	if out[0].N != 42 {
		t.Fatalf("recomputed row = %+v", out[0])
	}
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses; want 0, 1", hits, misses)
	}
	// The rewrite must have healed the entry.
	var calls2 atomic.Int64
	CachedRun(NewPointCache(dir), 1, 1, key, func(i int) row {
		calls2.Add(1)
		return row{N: 42}
	})
	if calls2.Load() != 0 {
		t.Fatal("entry was not rewritten after the corrupted read")
	}
}

// TestCachedRunConcurrent drives one PointCache from a parallel sweep
// with colliding keys (every worker computes the same 8 points), the
// shape the race detector needs to audit the memo and disk paths.
func TestCachedRunConcurrent(t *testing.T) {
	c := NewPointCache(t.TempDir())
	key := func(i int) string { return Key("conc", i%8) }
	fn := func(i int) row { return row{N: i % 8} }
	for pass := 0; pass < 2; pass++ {
		out := CachedRun(c, 8, 64, key, fn)
		for i, r := range out {
			if r.N != i%8 {
				t.Fatalf("pass %d row %d = %+v, want N=%d", pass, i, r, i%8)
			}
		}
	}
	if hits, misses := c.Stats(); hits+misses != 128 {
		t.Fatalf("stats = %d hits + %d misses, want 128 lookups", hits, misses)
	}
}

// TestCachedRunNil checks a nil cache degrades to a plain Run.
func TestCachedRunNil(t *testing.T) {
	out := CachedRun[int](nil, 1, 3, func(i int) string {
		t.Fatal("key must not be called without a cache")
		return ""
	}, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
