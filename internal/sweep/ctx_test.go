package sweep

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunCtxCompletesWithoutCancellation(t *testing.T) {
	out, err := RunCtx(context.Background(), 4, 10, func(i int) int { return i * i })
	if err != nil {
		t.Fatalf("RunCtx: %v", err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunCtxSequentialCancelStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int32
	out, err := RunCtx(ctx, 1, 100, func(i int) int {
		if atomic.AddInt32(&calls, 1) == 3 {
			cancel()
		}
		return i + 1
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times after cancellation at the 3rd point", calls)
	}
	if len(out) != 100 || out[2] != 3 || out[3] != 0 {
		t.Fatalf("partial results wrong: len=%d out[2]=%d out[3]=%d", len(out), out[2], out[3])
	}
}

func TestRunCtxParallelCancelDrainsWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 1000)
	release := make(chan struct{})
	var calls int32
	done := make(chan struct{})
	var out []int
	var err error
	go func() {
		defer close(done)
		out, err = RunCtx(ctx, 4, 1000, func(i int) int {
			atomic.AddInt32(&calls, 1)
			started <- struct{}{}
			<-release
			return i + 1
		})
	}()
	// Let the first batch of workers start, cancel, then release them:
	// the sweep must finish the in-flight points and return promptly
	// without running the rest.
	for i := 0; i < 4; i++ {
		<-started
	}
	cancel()
	close(release)
	<-done
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The 4 in-flight points completed; at most a few more could have
	// been handed an index before the sender observed the cancellation.
	if n := atomic.LoadInt32(&calls); n >= 1000 || n < 4 {
		t.Fatalf("fn ran %d times; cancellation did not stop the sweep", n)
	}
	if len(out) != 1000 {
		t.Fatalf("len(out) = %d, want 1000", len(out))
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls int32
	_, err := RunCtx(ctx, 1, 10, func(i int) int {
		atomic.AddInt32(&calls, 1)
		return i
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn ran %d times under a pre-cancelled context", calls)
	}
}

func TestCachedRunCtxCancelSkipsLookups(t *testing.T) {
	c := NewPointCache("")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CachedRunCtx(ctx, c, 1, 5, func(i int) string { return Key("k", i) },
		func(i int) int { return i })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if hits, misses := c.Stats(); hits+misses != 0 {
		t.Fatalf("cache consulted (%d hits, %d misses) under a pre-cancelled context", hits, misses)
	}
}
