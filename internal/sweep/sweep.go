// Package sweep runs independent simulation points concurrently.
//
// Every figure of the benchmark suite is a sweep: N points, each an
// independent deterministic simulation (its own Simulator, cluster and
// parameter set). The points share nothing, so they can run on as many
// cores as the host offers — but their results must come back in point
// order, not completion order, so the rendered tables stay byte-identical
// to a sequential run.
//
// Run is the only primitive: a bounded worker pool over the index space
// [0, n) whose result slice is keyed by index. Workers(p) resolves the
// user-facing parallelism knob (0 = one worker per GOMAXPROCS core).
package sweep

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a parallelism setting to a concrete worker count:
// values < 1 mean "auto" (GOMAXPROCS); anything else is taken as given.
func Workers(parallel int) int {
	if parallel < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// Run executes fn(i) for every i in [0, n) using up to Workers(parallel)
// concurrent workers and returns the results ordered by index. With
// parallel == 1 (or n == 1) it degenerates to a plain loop on the calling
// goroutine, so sequential runs have zero scheduling overhead.
//
// fn must be safe to call concurrently for distinct indexes: each point
// builds its own simulator and parameter set and shares no mutable state.
// A panic in any point is re-raised on the calling goroutine once all
// workers have drained.
func Run[T any](parallel, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := min(Workers(parallel), n)
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("sweep: point panicked: %v", panicked))
	}
	return out
}
