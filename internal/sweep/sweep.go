// Package sweep runs independent simulation points concurrently.
//
// Every figure of the benchmark suite is a sweep: N points, each an
// independent deterministic simulation (its own Simulator, cluster and
// parameter set). The points share nothing, so they can run on as many
// cores as the host offers — but their results must come back in point
// order, not completion order, so the rendered tables stay byte-identical
// to a sequential run.
//
// RunCtx is the only primitive: a bounded worker pool over the index
// space [0, n) whose result slice is keyed by index, aborted between
// points when its context is cancelled (a point that has already started
// runs to completion — simulations have no internal preemption — so a
// cancelled sweep never leaks a worker goroutine). Run is RunCtx without
// cancellation; Workers(p) resolves the user-facing parallelism knob
// (0 = one worker per GOMAXPROCS core).
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a parallelism setting to a concrete worker count:
// values < 1 mean "auto" (GOMAXPROCS); anything else is taken as given.
func Workers(parallel int) int {
	if parallel < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}

// Run executes fn(i) for every i in [0, n) using up to Workers(parallel)
// concurrent workers and returns the results ordered by index. With
// parallel == 1 (or n == 1) it degenerates to a plain loop on the calling
// goroutine, so sequential runs have zero scheduling overhead.
//
// fn must be safe to call concurrently for distinct indexes: each point
// builds its own simulator and parameter set and shares no mutable state.
// A panic in any point is re-raised on the calling goroutine once all
// workers have drained.
func Run[T any](parallel, n int, fn func(i int) T) []T {
	out, _ := RunCtx(context.Background(), parallel, n, fn)
	return out
}

// RunCtx is Run under a context: once ctx is cancelled no further point
// starts, the points already in flight run to completion (so no worker
// goroutine or half-built simulation leaks), and the call returns
// ctx.Err() with the partial result slice (unstarted points hold zero
// values). A nil error means every point ran.
func RunCtx[T any](ctx context.Context, parallel, n int, fn func(i int) T) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	workers := min(Workers(parallel), n)
	if workers == 1 {
		for i := range out {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			out[i] = fn(i)
		}
		return out, ctx.Err()
	}

	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicked == nil {
								panicked = r
							}
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("sweep: point panicked: %v", panicked))
	}
	return out, ctx.Err()
}
