// Package rng provides a small, deterministic random-number generator and
// the distributions the workloads need (uniform, exponential, Zipf).
//
// The generator is xoshiro256**, seeded through splitmix64, so identical
// seeds produce identical streams on every platform — a requirement for
// reproducible simulation runs.
package rng

import "math"

// Rand is a deterministic xoshiro256** generator. Not safe for concurrent
// use; simulation code is single-threaded by construction.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via splitmix64.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// A state of all zeros is the one forbidden state; splitmix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Fork returns a new generator deterministically derived from this one's
// next output, for giving sub-components independent streams.
func (r *Rand) Fork() *Rand { return New(r.Uint64()) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box-Muller).
func (r *Rand) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Zipf draws ranks in [0, n) with P(i) proportional to 1/(i+1)^alpha,
// the distribution the paper uses for data-center document popularity
// (Breslau et al., INFOCOM'99). It precomputes the CDF and samples by
// binary search, which is exact and fast for the catalog sizes we use.
type Zipf struct {
	r   *Rand
	cdf []float64
}

// NewZipf returns a Zipf sampler over n items with exponent alpha > 0.
func NewZipf(r *Rand, n int, alpha float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if alpha <= 0 {
		panic("rng: Zipf with non-positive alpha")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), alpha)
		cdf[i] = sum
	}
	inv := 1 / sum
	for i := range cdf {
		cdf[i] *= inv
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{r: r, cdf: cdf}
}

// N returns the number of items.
func (z *Zipf) N() int { return len(z.cdf) }

// P returns the probability of rank i.
func (z *Zipf) P(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// Next draws a rank in [0, n); rank 0 is the most popular item.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
