package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(1)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := r.Intn(nn)
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnCoverage(t *testing.T) {
	r := New(99)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		seen[r.Intn(10)] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered %d values, want 10", len(seen))
	}
}

func TestExpMean(t *testing.T) {
	r := New(3)
	const mean = 250.0
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(mean)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	got := sum / n
	if math.Abs(got-mean)/mean > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(5)
	const mean, sd = 10.0, 2.0
	sum, sumsq := 0.0, 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sumsq += v * v
	}
	m := sum / n
	variance := sumsq/n - m*m
	if math.Abs(m-mean) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~%v", m, mean)
	}
	if math.Abs(math.Sqrt(variance)-sd) > 0.05 {
		t.Fatalf("Normal sd = %v, want ~%v", math.Sqrt(variance), sd)
	}
}

func TestPerm(t *testing.T) {
	r := New(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestZipfProbabilities(t *testing.T) {
	r := New(21)
	z := NewZipf(r, 100, 0.95)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		p := z.P(i)
		if p <= 0 {
			t.Fatalf("P(%d) = %v", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if z.P(0) <= z.P(1) || z.P(1) <= z.P(10) {
		t.Fatal("Zipf probabilities not decreasing")
	}
}

func TestZipfEmpirical(t *testing.T) {
	r := New(77)
	const n, alpha = 50, 1.0
	z := NewZipf(r, n, alpha)
	counts := make([]int, n)
	const draws = 500000
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// Rank 0 should be drawn about P(0)*draws times.
	want := z.P(0) * draws
	if math.Abs(float64(counts[0])-want)/want > 0.05 {
		t.Fatalf("rank-0 count = %d, want ~%v", counts[0], want)
	}
	// Popularity must broadly decrease with rank.
	if counts[0] <= counts[10] || counts[10] <= counts[40] {
		t.Fatalf("counts not Zipf-shaped: %v %v %v", counts[0], counts[10], counts[40])
	}
}

func TestZipfAlphaEffect(t *testing.T) {
	// Higher alpha concentrates mass on low ranks.
	high := NewZipf(New(1), 1000, 0.95)
	low := NewZipf(New(1), 1000, 0.5)
	if high.P(0) <= low.P(0) {
		t.Fatalf("P0(alpha=.95)=%v should exceed P0(alpha=.5)=%v", high.P(0), low.P(0))
	}
}

func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		nn := int(n%200) + 1
		z := NewZipf(New(seed), nn, 0.8)
		for i := 0; i < 200; i++ {
			v := z.Next()
			if v < 0 || v >= nn {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFork(t *testing.T) {
	a := New(9)
	b := a.Fork()
	c := a.Fork()
	if b.Uint64() == c.Uint64() {
		t.Fatal("forked streams identical")
	}
}
