package bench

import (
	"fmt"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/stats"
)

// pair is the plain-vs-accelerated measurement most figures sweep.
type pair struct{ Plain, Accel microResult }

// measurePair runs the same stream layout without and with I/OAT.
// p builds a fresh parameter set per call so concurrent points never
// share a mutable Params.
func measurePair(p func() *cost.Params, cfg Config,
	build func(a, b *host.Node) []stream) pair {
	return pair{
		Plain: runMicro(p(), ioat.None(), cfg, build),
		Accel: runMicro(p(), ioat.Linux(), cfg, build),
	}
}

// portStreams builds one 64 KB ttcp stream per port, optionally mirrored
// in the reverse direction.
func portStreams(ports, msg int, bidir bool) func(a, b *host.Node) []stream {
	return func(a, b *host.Node) []stream {
		var ss []stream
		for i := 0; i < ports; i++ {
			ss = append(ss, stream{from: a, to: b, portFrom: i, portTo: i, msg: msg})
			if bidir {
				ss = append(ss, stream{from: b, to: a, portFrom: i, portTo: i, msg: msg})
			}
		}
		return ss
	}
}

// Fig3a reproduces Figure 3a: unidirectional bandwidth and receiver CPU
// utilization as the number of 1-GbE ports grows from one to six, with
// one ttcp stream per port (64 KB messages).
func Fig3a(cfg Config) *Result {
	series := stats.NewSeries("Fig 3a: Bandwidth", "Ports",
		"non-I/OAT Mbps", "I/OAT Mbps", "non-I/OAT CPU%", "I/OAT CPU%", "rel CPU benefit%")
	rows := points(cfg, 6, func(i int) string {
		return cfg.key("fig3a", i+1, cfg.params())
	}, func(i int) pair {
		return measurePair(cfg.params, cfg, portStreams(i+1, 64*cost.KB, false))
	})
	for i, r := range rows {
		series.Add(float64(i+1), "",
			r.Plain.Mbps, r.Accel.Mbps, pct(r.Plain.CPURecv), pct(r.Accel.CPURecv),
			pct(stats.RelativeBenefit(r.Plain.CPURecv, r.Accel.CPURecv)))
	}
	return &Result{ID: "fig3a", Title: "Bandwidth vs. ports", Series: series,
		Notes: []string{"paper: ~5635 Mbps at 6 ports; CPU 37% vs 29% (~21% relative)"}}
}

// Fig3b reproduces Figure 3b: bi-directional bandwidth with N streams in
// each direction over N ports, and the CPU utilization of one node.
func Fig3b(cfg Config) *Result {
	series := stats.NewSeries("Fig 3b: Bi-directional Bandwidth", "Ports",
		"non-I/OAT Mbps", "I/OAT Mbps", "non-I/OAT CPU%", "I/OAT CPU%", "rel CPU benefit%")
	rows := points(cfg, 6, func(i int) string {
		return cfg.key("fig3b", i+1, cfg.params())
	}, func(i int) pair {
		return measurePair(cfg.params, cfg, portStreams(i+1, 64*cost.KB, true))
	})
	for i, r := range rows {
		series.Add(float64(i+1), "",
			r.Plain.Mbps, r.Accel.Mbps, pct(r.Plain.CPURecv), pct(r.Accel.CPURecv),
			pct(stats.RelativeBenefit(r.Plain.CPURecv, r.Accel.CPURecv)))
	}
	return &Result{ID: "fig3b", Title: "Bi-directional bandwidth vs. ports", Series: series,
		Notes: []string{"paper: ~9600 Mbps at 6 ports; CPU ~90% vs ~70% (~22% relative)"}}
}

// Fig4 reproduces Figure 4: multi-stream bandwidth with 1..12 receiver
// threads on one node (16 KB messages, threads round-robin over the six
// ports).
func Fig4(cfg Config) *Result {
	series := stats.NewSeries("Fig 4: Multi-Stream Bandwidth", "Threads",
		"non-I/OAT Mbps", "I/OAT Mbps", "non-I/OAT CPU%", "I/OAT CPU%", "rel CPU benefit%")
	threadCounts := []int{1, 2, 4, 6, 8, 10, 12}
	rows := points(cfg, len(threadCounts), func(i int) string {
		return cfg.key("fig4", threadCounts[i], cfg.params())
	}, func(i int) pair {
		threads := threadCounts[i]
		return measurePair(cfg.params, cfg, func(a, b *host.Node) []stream {
			var ss []stream
			for t := 0; t < threads; t++ {
				ss = append(ss, stream{from: a, to: b, portFrom: t % 6, portTo: t % 6, msg: 16 * cost.KB})
			}
			return ss
		})
	})
	for i, r := range rows {
		series.Add(float64(threadCounts[i]), "",
			r.Plain.Mbps, r.Accel.Mbps, pct(r.Plain.CPURecv), pct(r.Accel.CPURecv),
			pct(stats.RelativeBenefit(r.Plain.CPURecv, r.Accel.CPURecv)))
	}
	return &Result{ID: "fig4", Title: "Multi-stream bandwidth vs. threads", Series: series,
		Notes: []string{"paper: at 12 threads CPU 76% vs 52% (~32% relative); non-I/OAT throughput degrades"}}
}

// socketCase is one of Figure 5's cumulative sender-side optimizations.
type socketCase struct {
	name string
	p    func() *cost.Params
}

// socketCases builds the paper's Case 1..5 parameter sets on top of the
// given base: default, +1 MB socket buffers, +TSO, +jumbo frames
// (MTU 2048), +interrupt coalescing.
func socketCases(base func() *cost.Params) []socketCase {
	c1 := func() *cost.Params {
		p := base()
		p.SockBuf = 64 * cost.KB
		p.CoalesceFrames = 2
		return p
	}
	c2 := func() *cost.Params { p := c1(); p.SockBuf = cost.MB; return p }
	c3 := func() *cost.Params { p := c2(); p.TSO = true; return p }
	c4 := func() *cost.Params { p := c3(); p.MTU = 2048; return p }
	c5 := func() *cost.Params { p := c4(); p.CoalesceFrames = 16; return p }
	return []socketCase{
		{"Case 1 (default)", c1},
		{"Case 2 (+1M sockbuf)", c2},
		{"Case 3 (+TSO)", c3},
		{"Case 4 (+jumbo)", c4},
		{"Case 5 (+coalescing)", c5},
	}
}

// Fig5a reproduces Figure 5a: unidirectional bandwidth under the
// cumulative sender-side optimizations.
func Fig5a(cfg Config) *Result {
	return fig5(cfg, false, "fig5a", "Fig 5a: Optimizations, Bandwidth",
		"paper: Case 5 ~5586 vs ~5514 Mbps; Case 4 relative CPU benefit ~30%")
}

// Fig5b reproduces Figure 5b: bi-directional bandwidth under the same
// optimizations; Case 4 shows the paper's headline 38% relative benefit.
func Fig5b(cfg Config) *Result {
	return fig5(cfg, true, "fig5b", "Fig 5b: Optimizations, Bi-directional Bandwidth",
		"paper: Case 4 relative CPU benefit ~38% (headline number)")
}

func fig5(cfg Config, bidir bool, id, title, note string) *Result {
	series := stats.NewSeries(title, "Case",
		"non-I/OAT Mbps", "I/OAT Mbps", "non-I/OAT CPU%", "I/OAT CPU%", "rel CPU benefit%")
	cases := socketCases(cfg.params)
	rows := points(cfg, len(cases), func(i int) string {
		return cfg.key("fig5", bidir, i+1, cases[i].p())
	}, func(i int) pair {
		return measurePair(cases[i].p, cfg, portStreams(6, 64*cost.KB, bidir))
	})
	for i, r := range rows {
		series.Add(float64(i+1), fmt.Sprintf("Case %d", i+1),
			r.Plain.Mbps, r.Accel.Mbps, pct(r.Plain.CPURecv), pct(r.Accel.CPURecv),
			pct(stats.RelativeBenefit(r.Plain.CPURecv, r.Accel.CPURecv)))
	}
	return &Result{ID: id, Title: title, Series: series, Notes: []string{note}}
}
