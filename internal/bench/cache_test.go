package bench

import (
	"context"
	"reflect"
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/sweep"
	"ioatsim/internal/trace"
)

// TestPointKeyConfigSensitivity checks which Config fields reach the
// point-cache key: Seed and Scale must (they change the tables), while
// Parallel, Check, Obs and Cache must not (they change execution, not
// outcomes — caching across them is the whole point). The completeness
// sweep at the end forces this decision for any future Config field.
func TestPointKeyConfigSensitivity(t *testing.T) {
	base := Config{Seed: 1, Scale: 0.5, Parallel: 2}
	k0 := base.key("probe", 7)

	seedCfg := base
	seedCfg.Seed = 2
	if seedCfg.key("probe", 7) == k0 {
		t.Error("changing Seed does not change the point key")
	}
	scaleCfg := base
	scaleCfg.Scale = 0.25
	if scaleCfg.key("probe", 7) == k0 {
		t.Error("changing Scale does not change the point key")
	}

	parCfg := base
	parCfg.Parallel = 9
	if parCfg.key("probe", 7) != k0 {
		t.Error("Parallel must not reach the point key (tables are identical at any setting)")
	}
	checkCfg := base
	checkCfg.Check = true
	if checkCfg.key("probe", 7) != k0 {
		t.Error("Check must not reach the point key (the checker never alters outcomes)")
	}
	obsCfg := base
	obsCfg.Obs = host.Observability{Profile: trace.NewProfiler()}
	if obsCfg.key("probe", 7) != k0 {
		t.Error("Obs must not reach the point key (observability never alters outcomes)")
	}
	cacheCfg := base
	cacheCfg.Cache = sweep.NewPointCache("")
	if cacheCfg.key("probe", 7) != k0 {
		t.Error("Cache must not reach the point key")
	}
	strictCfg := base
	strictCfg.Strict = true
	if strictCfg.key("probe", 7) != k0 {
		t.Error("Strict must not reach the point key (fail-fast checking never alters outcomes)")
	}
	faultCfg := base
	faultCfg.Fault = &fault.Plan{Seed: 1, LossRate: 0.01}
	if faultCfg.key("probe", 7) == k0 {
		t.Error("Fault must reach the point key: a lossy run is a different result")
	}
	benignCfg := base
	benignCfg.Fault = &fault.Plan{}
	if benignCfg.key("probe", 7) == k0 {
		t.Error("a non-nil benign plan still keys separately from a nil plan")
	}
	costCfg := base
	costCfg.Costs = []CostOverride{{Field: "MTU", Value: 2048}}
	if costCfg.key("probe", 7) == k0 {
		t.Error("Costs must reach the point key: overridden costs change the tables")
	}
	ctxCfg := base
	ctxCfg.Ctx = context.Background()
	if ctxCfg.key("probe", 7) != k0 {
		t.Error("Ctx must not reach the point key (cancellation never alters a finished table)")
	}

	decided := map[string]bool{
		"Seed": true, "Scale": true, "Fault": true, "Costs": true,
		"Parallel": false, "Check": false, "Strict": false, "Obs": false, "Cache": false,
		"Ctx": false,
	}
	rt := reflect.TypeOf(Config{})
	for i := 0; i < rt.NumField(); i++ {
		if _, ok := decided[rt.Field(i).Name]; !ok {
			t.Errorf("new Config field %q: decide whether it joins the point-cache key and add it to this test",
				rt.Field(i).Name)
		}
	}
}

// TestPointKeyParamSensitivity flips every cost.Params field and checks
// the key moves: a sweep that adjusts any cost parameter must never
// collide with a cached row from a different parameter set.
func TestPointKeyParamSensitivity(t *testing.T) {
	k0 := sweep.Key(cost.Default())
	rt := reflect.TypeOf(cost.Params{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		p := *cost.Default()
		f := reflect.ValueOf(&p).Elem().Field(i)
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(f.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(f.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			f.SetFloat(f.Float() + 0.125)
		case reflect.Bool:
			f.SetBool(!f.Bool())
		case reflect.String:
			f.SetString(f.String() + "x")
		default:
			t.Fatalf("cost.Params.%s has kind %s: teach this test to perturb it (and confirm sweep.Key canonicalizes it)",
				name, f.Kind())
		}
		if sweep.Key(&p) == k0 {
			t.Errorf("flipping cost.Params.%s does not change the key", name)
		}
	}
}

// TestCachedFigureIdentity runs one representative figure cold, then
// warm from the same cache, and checks the rendered tables are
// byte-identical and the warm pass computed nothing. (The all-21-runner
// equivalent runs against the golden corpus in the repo root tests.)
func TestCachedFigureIdentity(t *testing.T) {
	cache := sweep.NewPointCache(t.TempDir())
	cfg := Config{Seed: 1, Scale: 0.05, Check: true, Cache: cache}
	plain := Fig6(Config{Seed: 1, Scale: 0.05, Check: true}).String()
	cold := Fig6(cfg).String()
	warm := Fig6(cfg).String()
	if cold != plain {
		t.Error("cold cached run diverges from the uncached table")
	}
	if warm != plain {
		t.Error("warm cached run diverges from the uncached table")
	}
	hits, misses := cache.Stats()
	if misses == 0 || hits != misses {
		t.Errorf("stats = %d hits, %d misses; want one full cold pass and one full warm pass", hits, misses)
	}
}
