package bench

import (
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/ioat"
	"ioatsim/internal/pvfs"
	"ioatsim/internal/stats"
)

// pvfsPair is the plain-vs-accelerated PVFS measurement.
type pvfsPair struct{ Plain, Accel pvfs.Metrics }

// pvfsOptions builds the shared PVFS options for one run.
func pvfsOptions(cfg Config, feat ioat.Features) pvfs.Options {
	return pvfs.Options{
		P:      cfg.params(),
		Feat:   feat,
		Seed:   cfg.Seed,
		Check:  cfg.Check,
		Strict: cfg.Strict,
		Fault:  cfg.Fault,
		Obs:    cfg.Obs,
		Warm:   cfg.duration(60 * time.Millisecond),
		Meas:   cfg.duration(240 * time.Millisecond),
	}
}

// pvfsSweep runs the concurrent read/write bandwidth test for client
// counts 1..6 against the given number of iods, reporting the CPU on the
// side that receives the data (client for reads, server for writes).
func pvfsSweep(cfg Config, iods int, write bool, id, title, note string) *Result {
	cpuCol := "client"
	if write {
		cpuCol = "server"
	}
	series := stats.NewSeries(title, "Clients",
		"non-I/OAT MB/s", "I/OAT MB/s", "tput benefit%",
		"non-I/OAT "+cpuCol+" CPU%", "I/OAT "+cpuCol+" CPU%", "rel CPU benefit%")
	rows := points(cfg, 6, func(i int) string {
		return cfg.key(id, i+1, iods, write, cfg.params())
	}, func(i int) pvfsPair {
		run := func(feat ioat.Features) pvfs.Metrics {
			o := pvfsOptions(cfg, feat)
			o.IODs = iods
			o.Clients = i + 1
			o.Write = write
			return pvfs.Run(o)
		}
		return pvfsPair{run(ioat.None()), run(ioat.Linux())}
	})
	for i, r := range rows {
		pc, ac := r.Plain.ClientCPU, r.Accel.ClientCPU
		if write {
			pc, ac = r.Plain.ServerCPU, r.Accel.ServerCPU
		}
		series.Add(float64(i+1), "",
			r.Plain.MBps, r.Accel.MBps, pct(gain(r.Plain.MBps, r.Accel.MBps)),
			pct(pc), pct(ac), pct(stats.RelativeBenefit(pc, ac)))
	}
	return &Result{ID: id, Title: title, Series: series, Notes: []string{note}}
}

// Fig10a reproduces Figure 10a: PVFS concurrent read bandwidth with six
// I/O servers.
func Fig10a(cfg Config) *Result {
	return pvfsSweep(cfg, 6, false, "fig10a", "Fig 10a: PVFS Concurrent Read, 6 iods",
		"paper: 361->649 MB/s non-I/OAT vs 360->731 I/OAT (~12%); ~15% client CPU benefit")
}

// Fig10b reproduces Figure 10b: the same with five I/O servers.
func Fig10b(cfg Config) *Result {
	return pvfsSweep(cfg, 5, false, "fig10b", "Fig 10b: PVFS Concurrent Read, 5 iods",
		"paper: same trend as 10a with smaller benefits")
}

// Fig11a reproduces Figure 11a: PVFS concurrent write bandwidth with six
// I/O servers.
func Fig11a(cfg Config) *Result {
	return pvfsSweep(cfg, 6, true, "fig11a", "Fig 11a: PVFS Concurrent Write, 6 iods",
		"paper: 464->697 MB/s non-I/OAT vs 460->750 I/OAT (~8%); ~7% server CPU benefit")
}

// Fig11b reproduces Figure 11b: the same with five I/O servers.
func Fig11b(cfg Config) *Result {
	return pvfsSweep(cfg, 5, true, "fig11b", "Fig 11b: PVFS Concurrent Write, 5 iods",
		"paper: same trend as 11a with smaller benefits")
}

// Fig12 reproduces Figure 12: multi-stream PVFS read with 1..64 emulated
// clients on the compute node; the paper reports the client node's CPU,
// which runs *higher* with I/OAT because the clients pull data faster.
func Fig12(cfg Config) *Result {
	series := stats.NewSeries("Fig 12: Multi-Stream PVFS Read", "Clients",
		"non-I/OAT MB/s", "I/OAT MB/s", "non-I/OAT client CPU%", "I/OAT client CPU%")
	clientCounts := []int{1, 2, 4, 8, 16, 32, 64}
	rows := points(cfg, len(clientCounts), func(i int) string {
		return cfg.key("fig12", clientCounts[i], cfg.params())
	}, func(i int) pvfsPair {
		run := func(feat ioat.Features) pvfs.Metrics {
			o := pvfsOptions(cfg, feat)
			o.IODs = 6
			o.Clients = clientCounts[i]
			o.Region = 2 * cost.MB
			return pvfs.Run(o)
		}
		return pvfsPair{run(ioat.None()), run(ioat.Linux())}
	})
	for i, r := range rows {
		series.Add(float64(clientCounts[i]), "",
			r.Plain.MBps, r.Accel.MBps, pct(r.Plain.ClientCPU), pct(r.Accel.ClientCPU))
	}
	return &Result{ID: "fig12", Title: "PVFS multi-stream read", Series: series,
		Notes: []string{"paper: I/OAT >= non-I/OAT throughput; client CPU ~10-12% higher with I/OAT (faster request rate)"}}
}
