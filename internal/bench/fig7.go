package bench

import (
	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/stats"
)

// fig7Row is one message size measured under the three configurations.
type fig7Row struct {
	Plain, DMAOnly, Split microResult
}

// fig7Run measures one message size under the three §4.5 configurations:
// non-I/OAT, I/OAT-DMA (copy engine only) and I/OAT-SPLIT (copy engine +
// split headers). Four streams over four ports (two dual-port adapters),
// as in the paper.
func fig7Run(cfg Config, p *cost.Params, msg int) (plain, dmaOnly, split microResult) {
	build := func(a, b *host.Node) []stream {
		var ss []stream
		for i := 0; i < 4; i++ {
			ss = append(ss, stream{from: a, to: b, portFrom: i, portTo: i, msg: msg})
		}
		return ss
	}
	plain = runMicro(p.Clone(), ioat.None(), cfg, build)
	dmaOnly = runMicro(p.Clone(), ioat.DMAOnly(), cfg, build)
	split = runMicro(p.Clone(), ioat.Linux(), cfg, build)
	return plain, dmaOnly, split
}

// Fig7a reproduces Figure 7a: for 16K-128K messages, the DMA engine cuts
// receiver CPU (~16% relative in the paper) while the split-header
// feature adds nothing at these sizes; throughput is identical.
func Fig7a(cfg Config) *Result {
	series := stats.NewSeries("Fig 7a: I/OAT split-up (CPU)", "Size",
		"non-I/OAT Mbps", "I/OAT-DMA Mbps", "I/OAT-SPLIT Mbps",
		"DMA CPU benefit%", "Split CPU benefit%")
	msgs := []int{16 * cost.KB, 32 * cost.KB, 64 * cost.KB, 128 * cost.KB}
	rows := points(cfg, len(msgs), func(i int) string {
		return cfg.key("fig7a", msgs[i], cfg.params())
	}, func(i int) fig7Row {
		plain, dmaOnly, split := fig7Run(cfg, cfg.params(), msgs[i])
		return fig7Row{plain, dmaOnly, split}
	})
	for i, r := range rows {
		msg := msgs[i]
		series.Add(float64(msg), sizeLabel(msg),
			r.Plain.Mbps, r.DMAOnly.Mbps, r.Split.Mbps,
			pct(stats.RelativeBenefit(r.Plain.CPURecv, r.DMAOnly.CPURecv)),
			pct(stats.RelativeBenefit(r.DMAOnly.CPURecv, r.Split.CPURecv)))
	}
	return &Result{ID: "fig7a", Title: "I/OAT split-up: CPU benefit", Series: series,
		Notes: []string{"paper: DMA engine ~16% relative CPU benefit, split-header ~0 at these sizes"}}
}

// Fig7b reproduces Figure 7b: for 1M-8M messages — whose in-flight
// receive working set exceeds the 2 MB L2 — the split-header feature
// recovers throughput that full-packet cache placement loses to
// pollution (paper: up to ~26% at 1M).
func Fig7b(cfg Config) *Result {
	series := stats.NewSeries("Fig 7b: I/OAT split-up (throughput)", "Size",
		"non-I/OAT Mbps", "I/OAT-DMA Mbps", "I/OAT-SPLIT Mbps",
		"DMA tput benefit%", "Split tput benefit%")
	msgs := []int{cost.MB, 2 * cost.MB, 4 * cost.MB, 8 * cost.MB}
	params := func() *cost.Params {
		p := cfg.params()
		p.SockBuf = cost.MB // large-message runs need deep socket buffers
		return p
	}
	rows := points(cfg, len(msgs), func(i int) string {
		return cfg.key("fig7b", msgs[i], params())
	}, func(i int) fig7Row {
		plain, dmaOnly, split := fig7Run(cfg, params(), msgs[i])
		return fig7Row{plain, dmaOnly, split}
	})
	for i, r := range rows {
		msg := msgs[i]
		series.Add(float64(msg), sizeLabel(msg),
			r.Plain.Mbps, r.DMAOnly.Mbps, r.Split.Mbps,
			pct(gain(r.Plain.Mbps, r.DMAOnly.Mbps)),
			pct(gain(r.DMAOnly.Mbps, r.Split.Mbps)))
	}
	return &Result{ID: "fig7b", Title: "I/OAT split-up: throughput", Series: series,
		Notes: []string{"paper: split-header up to ~26% throughput benefit at 1M, shrinking with size"}}
}

// gain returns the fractional improvement of x over base.
func gain(base, x float64) float64 {
	if base == 0 {
		return 0
	}
	return (x - base) / base
}
