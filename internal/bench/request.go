package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"strings"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
)

// Request is the wire form of one benchmark job: the same surface as
// Config (seed, scale, per-job point parallelism, invariant checking,
// fault spec, cost overrides) plus the experiment selection, as accepted
// by the daemon's POST /v1/jobs and decodable from any JSON source.
// Zero values mean the CLI defaults: every runner, seed 1, scale 1.
type Request struct {
	// Runners selects experiments by id (see Experiments); empty means
	// all of them, in registry order.
	Runners []string `json:"runners,omitempty"`
	// Seed is the simulation seed (0 = 1, the CLI default).
	Seed uint64 `json:"seed,omitempty"`
	// Scale shortens runs shape-preservingly (0 = 1, paper-sized).
	Scale float64 `json:"scale,omitempty"`
	// Parallel bounds concurrent sweep points within the job
	// (0 = one worker per core, 1 = sequential).
	Parallel int `json:"parallel,omitempty"`
	// Check runs every simulation under the invariant checker; Strict
	// upgrades it to fail-fast.
	Check  bool `json:"check,omitempty"`
	Strict bool `json:"strict,omitempty"`
	// Fault is a fault-plan spec in the internal/fault grammar, e.g.
	// "loss=0.001,flap=10ms/1ms".
	Fault string `json:"fault,omitempty"`
	// Costs overrides cost-model parameters by field name (durations in
	// nanoseconds, bools as 0/1).
	Costs []CostOverride `json:"costs,omitempty"`
}

// DecodeRequest reads one JSON-encoded Request, rejecting unknown
// fields so a typoed parameter fails loudly instead of silently running
// the default configuration.
func DecodeRequest(r io.Reader) (Request, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var q Request
	if err := dec.Decode(&q); err != nil {
		return Request{}, fmt.Errorf("decoding job request: %w", err)
	}
	return q, nil
}

// Validate checks the request without building anything: runner ids
// exist, numeric ranges are sane, the fault spec parses, and the cost
// overrides name real numeric fields and leave a self-consistent
// parameter set. maxScale bounds Scale (<= 0 means no bound) so a
// service can refuse jobs larger than it is willing to simulate.
func (q Request) Validate(maxScale float64) error {
	for _, id := range q.Runners {
		if _, ok := Find(id); !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
	}
	if q.Scale < 0 || math.IsNaN(q.Scale) || math.IsInf(q.Scale, 0) {
		return fmt.Errorf("scale %v out of range", q.Scale)
	}
	if maxScale > 0 && q.Scale > maxScale {
		return fmt.Errorf("scale %g exceeds the maximum %g", q.Scale, maxScale)
	}
	if q.Parallel < 0 {
		return fmt.Errorf("parallel %d out of range", q.Parallel)
	}
	if q.Fault != "" {
		if _, err := fault.ParseSpec(q.Fault); err != nil {
			return fmt.Errorf("fault spec: %w", err)
		}
	}
	p := cost.Default()
	if err := ApplyCostOverrides(p, q.Costs); err != nil {
		return err
	}
	if len(q.Costs) > 0 {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("cost overrides leave invalid parameters: %w", err)
		}
	}
	return nil
}

// Config materializes the request: the resolved Config (Cache, Obs and
// Ctx left for the caller to attach) and the selected runners. It
// re-validates, so a Request received over the wire can be materialized
// directly.
func (q Request) Config(maxScale float64) (Config, []Runner, error) {
	if err := q.Validate(maxScale); err != nil {
		return Config{}, nil, err
	}
	cfg := Config{
		Seed:     q.Seed,
		Scale:    q.Scale,
		Parallel: q.Parallel,
		Check:    q.Check,
		Strict:   q.Strict,
		Costs:    q.Costs,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Scale == 0 {
		cfg.Scale = 1
	}
	if q.Fault != "" {
		plan, err := fault.ParseSpec(q.Fault)
		if err != nil {
			return Config{}, nil, fmt.Errorf("fault spec: %w", err)
		}
		if plan.Seed == 0 {
			plan.Seed = cfg.Seed
		}
		cfg.Fault = &plan
	}
	runners := Experiments()
	if len(q.Runners) > 0 {
		runners = runners[:0:0]
		for _, id := range q.Runners {
			r, ok := Find(id)
			if !ok {
				return Config{}, nil, fmt.Errorf("unknown experiment %q", id)
			}
			runners = append(runners, r)
		}
	}
	return cfg, runners, nil
}

// ApplyCostOverrides sets each named cost.Params field to its override
// value: integer fields (including time.Durations, which read Value as
// nanoseconds) round, bools read Value != 0. Unknown or non-numeric
// fields error, naming the valid fields.
func ApplyCostOverrides(p *cost.Params, overrides []CostOverride) error {
	v := reflect.ValueOf(p).Elem()
	for _, o := range overrides {
		f := v.FieldByName(o.Field)
		if !f.IsValid() {
			return fmt.Errorf("unknown cost.Params field %q (valid: %s)",
				o.Field, strings.Join(costFieldNames(), " "))
		}
		if math.IsNaN(o.Value) || math.IsInf(o.Value, 0) {
			return fmt.Errorf("cost.Params field %q: value %v is not finite", o.Field, o.Value)
		}
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(int64(math.Round(o.Value)))
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if o.Value < 0 {
				return fmt.Errorf("cost.Params field %q: negative value %v for unsigned field", o.Field, o.Value)
			}
			f.SetUint(uint64(math.Round(o.Value)))
		case reflect.Float32, reflect.Float64:
			f.SetFloat(o.Value)
		case reflect.Bool:
			f.SetBool(o.Value != 0)
		default:
			return fmt.Errorf("cost.Params field %q (%s) is not overridable", o.Field, f.Kind())
		}
	}
	return nil
}

// costFieldNames lists the overridable cost.Params fields.
func costFieldNames() []string {
	rt := reflect.TypeOf(cost.Params{})
	names := make([]string, 0, rt.NumField())
	for i := 0; i < rt.NumField(); i++ {
		switch rt.Field(i).Type.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
			reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
			reflect.Float32, reflect.Float64, reflect.Bool:
			names = append(names, rt.Field(i).Name)
		}
	}
	return names
}
