package bench

import (
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
)

// TestFaultSeedSensitivity pins that the fault plane draws from its own
// seed: two plans that differ only in Seed must drop different frames
// (different counts, with overwhelming probability at this rate) and
// therefore measure different goodput, while re-running either plan
// reproduces its numbers exactly.
func TestFaultSeedSensitivity(t *testing.T) {
	run := func(seed uint64) (microResult, int64) {
		cfg := Config{Seed: 1, Scale: 0.1, Check: true}
		cfg.Fault = &fault.Plan{Seed: seed, LossRate: 0.005}
		var dropped int64
		r := runMicroWith(cost.Default(), ioat.None(), cfg,
			portStreams(2, 64*cost.KB, false), func(a, b *host.Node) {
				for _, pt := range a.NIC.Ports {
					dropped += pt.Fault.DroppedChunks
				}
			})
		return r, dropped
	}

	r1, d1 := run(1)
	r2, d2 := run(2)
	if d1 == 0 || d2 == 0 {
		t.Fatalf("expected drops under 0.5%% loss: seed1=%d seed2=%d", d1, d2)
	}
	if d1 == d2 && r1.Mbps == r2.Mbps {
		t.Errorf("distinct fault seeds produced identical runs (%d drops, %.1f Mbps)", d1, r1.Mbps)
	}
	r1b, d1b := run(1)
	if d1b != d1 || r1b != r1 {
		t.Errorf("same seed not reproducible: drops %d vs %d, %+v vs %+v", d1, d1b, r1, r1b)
	}
}

// TestFaultLossMonotone pins the loss-sweep figure's defining shape:
// goodput must not increase as the loss rate rises, for either feature
// set.
func TestFaultLossMonotone(t *testing.T) {
	res := FaultLoss(Config{Seed: 1, Scale: 0.05, Parallel: 0, Check: true})
	for _, col := range []string{"non-I/OAT Mbps", "I/OAT Mbps"} {
		prev := -1.0
		for i, p := range res.Series.Points {
			v := p.Values[col]
			if prev >= 0 && v > prev {
				t.Errorf("%s rises from %.1f to %.1f at row %d (loss %g%%)",
					col, prev, v, i, p.X)
			}
			prev = v
		}
	}
}
