package bench

import "testing"

// TestParallelDeterminism is the regression test for the sweep runner:
// one micro-benchmark figure, one data-center figure and one PVFS figure
// must render byte-identical tables when their points run strictly
// sequentially and when they run on eight concurrent workers. Any shared
// mutable state between points — a package-level scratch Params, a
// shared RNG, a reused cluster — shows up here as a diff.
func TestParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig4", "fig8a", "fig10a", "fault_loss"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			r, ok := Find(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			seq := r.Run(Config{Seed: 1, Scale: 0.08, Parallel: 1})
			par := r.Run(Config{Seed: 1, Scale: 0.08, Parallel: 8})
			if got, want := par.Series.Table(), seq.Series.Table(); got != want {
				t.Errorf("parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", want, got)
			}
		})
	}
}
