package bench

import (
	"testing"
)

// fastCfg shrinks every experiment while preserving shape.
var fastCfg = Config{Seed: 1, Scale: 0.15}

func TestExperimentsRegistryComplete(t *testing.T) {
	want := []string{
		"fig3a", "fig3b", "fig4", "fig5a", "fig5b", "fig6", "fig7a", "fig7b",
		"fig8a", "fig8b", "fig9", "fig10a", "fig10b", "fig11a", "fig11b",
		"fig12", "ablrss", "ablpin", "ablcoal", "ext3tier", "extipc",
		"fault_loss",
	}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("experiment %d = %q, want %q", i, got[i].ID, id)
		}
		if _, ok := Find(id); !ok {
			t.Fatalf("Find(%q) failed", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find accepted an unknown id")
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.1}
	if c.count(1000) != 100 {
		t.Fatalf("count = %d", c.count(1000))
	}
	if c.count(20) != 10 {
		t.Fatalf("count floor = %d", c.count(20))
	}
	full := Config{Scale: 1}
	if full.count(1000) != 1000 {
		t.Fatal("scale 1 must not change counts")
	}
}

func TestFig3aShape(t *testing.T) {
	r := Fig3a(fastCfg)
	s := r.Series
	if len(s.Points) != 6 {
		t.Fatalf("rows = %d", len(s.Points))
	}
	// Bandwidth parity: non-I/OAT and I/OAT within 3% at every port count.
	non := s.Column("non-I/OAT Mbps")
	acc := s.Column("I/OAT Mbps")
	for i := range non {
		if acc[i] < non[i]*0.97 {
			t.Fatalf("I/OAT bandwidth regressed at row %d: %v vs %v", i, acc[i], non[i])
		}
	}
	// Bandwidth grows with ports.
	if non[5] < 5*non[0] {
		t.Fatalf("bandwidth not scaling with ports: %v", non)
	}
	// The headline: substantial relative CPU benefit at 6 ports.
	rel := s.Column("rel CPU benefit%")
	if rel[5] < 10 {
		t.Fatalf("relative CPU benefit at 6 ports = %v%%, want >10%%", rel[5])
	}
}

func TestFig4Shape(t *testing.T) {
	r := Fig4(fastCfg)
	cpuNon := r.Series.Column("non-I/OAT CPU%")
	cpuAcc := r.Series.Column("I/OAT CPU%")
	last := len(cpuNon) - 1
	if cpuAcc[last] >= cpuNon[last] {
		t.Fatalf("I/OAT CPU %v not below non-I/OAT %v at 12 threads",
			cpuAcc[last], cpuNon[last])
	}
	// CPU grows with thread count.
	if cpuNon[last] <= cpuNon[0] {
		t.Fatal("CPU did not grow with threads")
	}
}

func TestFig5Shape(t *testing.T) {
	r := Fig5a(fastCfg)
	non := r.Series.Column("non-I/OAT Mbps")
	// Bandwidth rises from Case 1 to Case 5 (cumulative optimizations).
	if non[4] <= non[0] {
		t.Fatalf("optimizations did not raise bandwidth: %v", non)
	}
}

func TestFig6Shape(t *testing.T) {
	r := Fig6(fastCfg)
	s := r.Series
	cache := s.Column("copy-cache us")
	nocache := s.Column("copy-nocache us")
	dma := s.Column("DMA-copy us")
	overlap := s.Column("overlap%")
	last := len(cache) - 1 // 64K row
	if cache[last] >= nocache[last] {
		t.Fatal("cached copy not faster than uncached")
	}
	if dma[last] >= nocache[last] {
		t.Fatal("DMA not beating uncached CPU copy at 64K")
	}
	if dma[0] <= nocache[0] {
		t.Fatal("DMA should lose to CPU copy at 1K (startup dominates)")
	}
	if overlap[last] < 85 {
		t.Fatalf("overlap at 64K = %v%%, want ~91%%", overlap[last])
	}
	for i := 1; i < len(overlap); i++ {
		if overlap[i] <= overlap[i-1] {
			t.Fatalf("overlap not increasing with size: %v", overlap)
		}
	}
}

func TestFig7bShape(t *testing.T) {
	r := Fig7b(fastCfg)
	split := r.Series.Column("Split tput benefit%")
	for i, v := range split {
		if v < 5 {
			t.Fatalf("split-header benefit row %d = %v%%, want >5%%", i, v)
		}
	}
}

func TestFig8aShape(t *testing.T) {
	r := Fig8a(fastCfg)
	non := r.Series.Column("non-I/OAT TPS")
	acc := r.Series.Column("I/OAT TPS")
	for i := range non {
		// 3% tolerance: short scaled windows leave quantization noise.
		if acc[i] < non[i]*0.97 {
			t.Fatalf("I/OAT TPS regressed at row %d: %v vs %v", i, acc[i], non[i])
		}
	}
	// TPS decreases as file size grows.
	if non[0] <= non[len(non)-1] {
		t.Fatalf("TPS should fall with file size: %v", non)
	}
}

func TestFig9Shape(t *testing.T) {
	r := Fig9(fastCfg)
	s := r.Series
	non := s.Column("non-I/OAT TPS")
	acc := s.Column("I/OAT TPS")
	last := len(non) - 1
	// At 256 threads (saturation) I/OAT sustains clearly more TPS.
	if acc[last] < non[last]*1.05 {
		t.Fatalf("I/OAT TPS at 256 threads = %v, non = %v — no scalability win",
			acc[last], non[last])
	}
}

func TestFig10aShape(t *testing.T) {
	r := Fig10a(fastCfg)
	s := r.Series
	non := s.Column("non-I/OAT MB/s")
	rel := s.Column("rel CPU benefit%")
	if non[5] <= non[0] {
		t.Fatalf("read bandwidth not scaling with clients: %v", non)
	}
	if rel[5] < 5 {
		t.Fatalf("client CPU benefit = %v%%, want >5%%", rel[5])
	}
}

func TestFig11aShape(t *testing.T) {
	r := Fig11a(fastCfg)
	rel := r.Series.Column("rel CPU benefit%")
	if rel[5] < 3 {
		t.Fatalf("server CPU benefit = %v%%, want >3%%", rel[5])
	}
}

func TestAblRSSShape(t *testing.T) {
	r := AblRSS(fastCfg)
	s := r.Series
	single := s.Column("I/OAT Mbps")
	multi := s.Column("I/OAT-FULL Mbps")
	last := len(single) - 1
	if multi[last] < single[last]*1.5 {
		t.Fatalf("RSS at 6 ports: %v vs %v — no scaling win", multi[last], single[last])
	}
}

func TestAblPinShape(t *testing.T) {
	r := AblPin(fastCfg)
	wins := r.Series.Column("DMA wins")
	if wins[0] != 1 {
		t.Fatal("DMA must win at zero pin cost")
	}
	if wins[len(wins)-1] != 0 {
		t.Fatal("DMA must lose at extreme pin cost (paper §7)")
	}
	// Monotone: once it loses, it stays lost.
	lost := false
	for _, w := range wins {
		if w == 0 {
			lost = true
		} else if lost {
			t.Fatalf("non-monotone crossover: %v", wins)
		}
	}
}

func TestAblCoalShape(t *testing.T) {
	r := AblCoal(fastCfg)
	heavy := r.Series.Column("heavy Mbps")
	if heavy[len(heavy)-1] <= heavy[0]*1.2 {
		t.Fatalf("coalescing did not help heavy load: %v", heavy)
	}
}

func TestResultString(t *testing.T) {
	r := Fig6(fastCfg)
	out := r.String()
	if len(out) == 0 || out[0] != '=' {
		t.Fatalf("bad render: %q", out[:min(40, len(out))])
	}
}

func TestExt3TierShape(t *testing.T) {
	r := Ext3Tier(fastCfg)
	s := r.Series
	non := s.Column("non-I/OAT TPS")
	acc := s.Column("I/OAT TPS")
	db := s.Column("db CPU%")
	// More queries per request -> fewer transactions, busier database.
	if non[len(non)-1] >= non[0] {
		t.Fatalf("TPS should fall with query count: %v", non)
	}
	if db[len(db)-1] <= db[0] {
		t.Fatalf("DB CPU should rise with query count: %v", db)
	}
	for i := range non {
		if acc[i] < non[i]*0.97 {
			t.Fatalf("I/OAT TPS regressed at row %d: %v vs %v", i, acc[i], non[i])
		}
	}
}

func TestExtIPCShape(t *testing.T) {
	r := ExtIPC(fastCfg)
	s := r.Series
	cpuUtil := s.Column("CPU-copy cpu%")
	engUtil := s.Column("engine cpu%")
	for i := range cpuUtil {
		if engUtil[i] >= cpuUtil[i] {
			t.Fatalf("engine IPC row %d CPU %v not below memcpy %v",
				i, engUtil[i], cpuUtil[i])
		}
	}
}
