package bench

import (
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/datacenter"
	"ioatsim/internal/ioat"
	"ioatsim/internal/stats"
)

// dcPair is the plain-vs-accelerated data-center measurement.
type dcPair struct{ Plain, Accel datacenter.Metrics }

// dcOptions builds the shared data-center options for one run. The
// warm-up has a fixed floor: dozens of client connections need tens of
// simulated milliseconds to reach steady state regardless of how short
// the measurement window is scaled.
func dcOptions(cfg Config, feat ioat.Features) datacenter.Options {
	warm := cfg.duration(60 * time.Millisecond)
	if warm < 40*time.Millisecond {
		warm = 40 * time.Millisecond
	}
	return datacenter.Options{
		P:                cfg.params(),
		Feat:             feat,
		Seed:             cfg.Seed,
		ClientNodes:      16,
		ThreadsPerClient: 4,
		Check:            cfg.Check,
		Strict:           cfg.Strict,
		Fault:            cfg.Fault,
		Obs:              cfg.Obs,
		Warm:             warm,
		Meas:             cfg.duration(240 * time.Millisecond),
	}
}

// Fig8a reproduces Figure 8a: data-center TPS for single-file traces of
// 2K..10K documents, proxy and web tiers with and without I/OAT.
func Fig8a(cfg Config) *Result {
	series := stats.NewSeries("Fig 8a: Single-File Traces", "Trace",
		"non-I/OAT TPS", "I/OAT TPS", "TPS benefit%", "proxyCPU-non%", "proxyCPU-ioat%")
	sizes := []int{2 * cost.KB, 4 * cost.KB, 6 * cost.KB, 8 * cost.KB, 10 * cost.KB}
	rows := points(cfg, len(sizes), func(i int) string {
		return cfg.key("fig8a", sizes[i], cfg.params())
	}, func(i int) dcPair {
		run := func(feat ioat.Features) datacenter.Metrics {
			o := dcOptions(cfg, feat)
			o.FileCount = 1
			o.FileSize = sizes[i]
			return datacenter.RunTwoTier(o)
		}
		return dcPair{run(ioat.None()), run(ioat.Linux())}
	})
	for i, r := range rows {
		series.Add(float64(i+1), fmt.Sprintf("Trace %d (%s)", i+1, sizeLabel(sizes[i])),
			r.Plain.TPS, r.Accel.TPS, pct(gain(r.Plain.TPS, r.Accel.TPS)),
			pct(r.Plain.ProxyCPU), pct(r.Accel.ProxyCPU))
	}
	return &Result{ID: "fig8a", Title: "Data-center TPS: single-file traces", Series: series,
		Notes: []string{"paper: I/OAT wins all traces, peak ~14% at 4K (9754 vs 8569 TPS)"}}
}

// Fig8b reproduces Figure 8b: data-center TPS under Zipf traces with
// alpha from 0.95 (high locality) down to 0.5.
func Fig8b(cfg Config) *Result {
	series := stats.NewSeries("Fig 8b: Zipf Traces", "Alpha",
		"non-I/OAT TPS", "I/OAT TPS", "TPS benefit%")
	alphas := []float64{0.95, 0.9, 0.75, 0.5}
	rows := points(cfg, len(alphas), func(i int) string {
		return cfg.key("fig8b", alphas[i], cfg.params())
	}, func(i int) dcPair {
		run := func(feat ioat.Features) datacenter.Metrics {
			o := dcOptions(cfg, feat)
			o.FileCount = 1000
			o.SpreadMin = 2 * cost.KB
			o.SpreadMax = 10 * cost.KB
			o.Alpha = alphas[i]
			return datacenter.RunTwoTier(o)
		}
		return dcPair{run(ioat.None()), run(ioat.Linux())}
	})
	for i, r := range rows {
		series.Add(alphas[i], fmt.Sprintf("a=%.2f", alphas[i]),
			r.Plain.TPS, r.Accel.TPS, pct(gain(r.Plain.TPS, r.Accel.TPS)))
	}
	return &Result{ID: "fig8b", Title: "Data-center TPS: Zipf traces", Series: series,
		Notes: []string{"paper: I/OAT up to ~11% TPS benefit across alphas"}}
}

// Fig9 reproduces Figure 9: emulated proxy clients (1..256 threads on one
// Testbed-1 node) firing 16K requests at the web tier; TPS and the
// client node's CPU.
func Fig9(cfg Config) *Result {
	series := stats.NewSeries("Fig 9: Emulated Clients (16K file)", "Threads",
		"non-I/OAT TPS", "I/OAT TPS", "non-I/OAT CPU%", "I/OAT CPU%", "TPS benefit%")
	threadCounts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	rows := points(cfg, len(threadCounts), func(i int) string {
		return cfg.key("fig9", threadCounts[i], cfg.params())
	}, func(i int) dcPair {
		run := func(feat ioat.Features) datacenter.Metrics {
			o := dcOptions(cfg, feat)
			o.FileCount = 1
			o.FileSize = 16 * cost.KB
			return datacenter.RunEmulated(o, threadCounts[i])
		}
		return dcPair{run(ioat.None()), run(ioat.Linux())}
	})
	for i, r := range rows {
		series.Add(float64(threadCounts[i]), "",
			r.Plain.TPS, r.Accel.TPS, pct(r.Plain.ClientCPU), pct(r.Accel.ClientCPU),
			pct(gain(r.Plain.TPS, r.Accel.TPS)))
	}
	return &Result{ID: "fig9", Title: "Data-center TPS vs emulated clients", Series: series,
		Notes: []string{
			"paper: non-I/OAT CPU saturates at 64 threads, I/OAT at 256; ~16% TPS at 256",
			"paper: I/OAT sustains up to 4x the concurrent threads",
		}}
}
