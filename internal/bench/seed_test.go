package bench

import "testing"

// seedCfg is deliberately tiny: seed behaviour does not depend on scale,
// and every experiment runs twice (or more) in these tests.
func seedCfg(seed uint64) Config {
	return Config{Seed: seed, Scale: 0.02, Parallel: 1}
}

// TestSeedStability re-runs every experiment with the same seed and
// requires byte-identical tables: the simulator must be a pure function
// of (experiment, Config).
func TestSeedStability(t *testing.T) {
	for _, r := range Experiments() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			first := r.Run(seedCfg(1)).String()
			second := r.Run(seedCfg(1)).String()
			if first != second {
				t.Errorf("%s is not deterministic: two runs with Seed=1 differ\nfirst:\n%s\nsecond:\n%s",
					r.ID, first, second)
			}
		})
	}
}

// TestSeedSensitivity requires that the seed actually reaches the
// stochastic experiments: changing it must change at least one of the
// figures whose workloads draw from the cluster RNG (random working-set
// touches, Zipf traces). A seed that changes nothing means the RNG is
// wired to a constant somewhere.
func TestSeedSensitivity(t *testing.T) {
	stochastic := []string{"fig8a", "fig8b", "fig9", "ext3tier"}
	for _, id := range stochastic {
		r, ok := Find(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		if r.Run(seedCfg(1)).String() != r.Run(seedCfg(2)).String() {
			return
		}
	}
	t.Errorf("Seed change had no effect on any of %v", stochastic)
}
