package bench

import (
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
	"ioatsim/internal/stats"
)

// fig6Row is one measured copy size.
type fig6Row struct {
	Size                               int
	Cached, Uncached, DMATotal, DMACPU time.Duration
}

// fig6Point measures one copy size on a fresh Testbed-1 node, so every
// size is an independent simulation (and the sizes can run concurrently).
// The platform features only matter in that the node must have a copy
// engine.
func fig6Point(cfg Config, size int) fig6Row {
	cl, node, _ := host.Testbed1(cfg.params(), ioat.Linux(), cfg.Seed, cfg.hostOpts()...)
	row := fig6Row{Size: size}
	cl.S.Spawn("fig6", func(p *sim.Proc) {
		// copy-cache: warm both buffers first.
		src := node.Buf(size)
		dst := node.Buf(size)
		node.CPU.Exec(p, node.Mem.TouchCost(src.Addr, size))
		node.CPU.Exec(p, node.Mem.TouchCost(dst.Addr, size))
		row.Cached = node.Copier.CopySync(p, src.Addr, dst.Addr, size)

		// copy-nocache: fresh, never-touched buffers.
		csrc := node.Buf(size)
		cdst := node.Buf(size)
		row.Uncached = node.Copier.CopySync(p, csrc.Addr, cdst.Addr, size)

		// DMA copy: CPU-visible setup, engine transfer. A warm-up
		// round registers (pins) the buffers, as a steady-state
		// application would; the measured round pays descriptor
		// setup only.
		dsrc := node.Buf(size)
		ddst := node.Buf(size)
		node.Copier.Start(p, dsrc.Addr, ddst.Addr, size).Wait(p)
		start := p.Now()
		busy0 := node.CPU.BusyTime()
		done := node.Copier.Start(p, dsrc.Addr, ddst.Addr, size)
		row.DMACPU = node.CPU.BusyTime() - busy0
		done.Wait(p)
		row.DMATotal = p.Now().Sub(start)
	})
	cl.S.Run()
	cl.MustVerify()
	return row
}

// Fig6 reproduces Figure 6: the cost of moving 1K..64K bytes with a CPU
// copy (source/destination cached vs. uncached) against the DMA engine
// (total time, CPU-visible startup overhead, and the overlappable
// fraction).
func Fig6(cfg Config) *Result {
	series := stats.NewSeries("Fig 6: CPU copy vs DMA copy", "Size",
		"copy-cache us", "copy-nocache us", "DMA-copy us", "DMA-overhead us", "overlap%")

	var sizes []int
	for size := 1 * cost.KB; size <= 64*cost.KB; size *= 2 {
		sizes = append(sizes, size)
	}
	rows := points(cfg, len(sizes), func(i int) string {
		return cfg.key("fig6", sizes[i], cfg.params())
	}, func(i int) fig6Row {
		return fig6Point(cfg, sizes[i])
	})

	for _, r := range rows {
		overlap := 0.0
		if r.DMATotal > 0 {
			overlap = float64(r.DMATotal-r.DMACPU) / float64(r.DMATotal)
		}
		series.Add(float64(r.Size), sizeLabel(r.Size),
			us(r.Cached), us(r.Uncached), us(r.DMATotal), us(r.DMACPU), pct(overlap))
	}
	return &Result{ID: "fig6", Title: "CPU-based copy vs DMA-based copy", Series: series,
		Notes: []string{
			"paper: DMA beats copy-nocache above 8K; overlap reaches ~93% at 64K",
			"paper: DMA startup overhead stays below the CPU copy time",
		}}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func sizeLabel(n int) string {
	switch {
	case n >= cost.MB:
		return itoa(n/cost.MB) + "M"
	case n >= cost.KB:
		return itoa(n/cost.KB) + "K"
	default:
		return itoa(n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
