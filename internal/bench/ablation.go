package bench

import (
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
	"ioatsim/internal/stats"
)

// AblRSS quantifies the feature the paper could not measure (§2.2.3,
// disabled in their kernel): multiple receive queues. With a small MTU
// (heavy per-frame work — the paper's "processing small packets can
// fully occupy the CPU"), the single interrupt CPU saturates and caps
// throughput; RSS spreads flows across cores and restores line rate.
func AblRSS(cfg Config) *Result {
	series := stats.NewSeries("Ablation: Multiple Receive Queues (MTU 576)", "Ports",
		"I/OAT Mbps", "I/OAT-FULL Mbps", "I/OAT core0%", "I/OAT-FULL core0%")
	type rssRow struct{ LinuxMbps, FullMbps, LinuxCore0, FullCore0 float64 }
	params := func() *cost.Params {
		p := cfg.params()
		p.MTU = 576
		return p
	}
	rows := points(cfg, 6, func(i int) string {
		return cfg.key("ablrss", i+1, params())
	}, func(i int) rssRow {
		ports := i + 1
		run := func(feat ioat.Features) (float64, float64) {
			p := params()
			core0 := 0.0
			res := runMicroWith(p, feat, cfg, func(a, b *host.Node) []stream {
				var ss []stream
				for port := 0; port < ports; port++ {
					ss = append(ss, stream{from: a, to: b, portFrom: port, portTo: port, msg: 64 * cost.KB})
				}
				return ss
			}, func(a, b *host.Node) { core0 = b.CPU.CoreUtilization(0) })
			return res.Mbps, core0
		}
		var r rssRow
		r.LinuxMbps, r.LinuxCore0 = run(ioat.Linux())
		r.FullMbps, r.FullCore0 = run(ioat.Full())
		return r
	})
	for i, r := range rows {
		series.Add(float64(i+1), "",
			r.LinuxMbps, r.FullMbps, pct(r.LinuxCore0), pct(r.FullCore0))
	}
	return &Result{ID: "ablrss", Title: "Ablation: multiple receive queues", Series: series,
		Notes: []string{"single-queue receive processing saturates core 0 and caps throughput; RSS restores scaling"}}
}

// AblPin sweeps the page-pinning cost for the user-level async memcpy
// (paper §7: "the usefulness of the copy engine becomes questionable if
// the pinning cost exceeds the copy cost"). Buffers are not reused, so
// every copy re-pins.
func AblPin(cfg Config) *Result {
	series := stats.NewSeries("Ablation: pinning cost vs DMA benefit (64K copy)", "PinMult",
		"CPU copy us", "DMA CPU cost us", "DMA wins")
	mults := []int{0, 1, 2, 4, 8, 16, 32}
	type pinRow struct{ CPUCopy, DMACPU time.Duration }
	params := func(i int) *cost.Params {
		p := cfg.params()
		p.PinPerPage = time.Duration(mults[i]) * 150 * time.Nanosecond
		return p
	}
	rows := points(cfg, len(mults), func(i int) string {
		return cfg.key("ablpin", mults[i], params(i))
	}, func(i int) pinRow {
		p := params(i)
		cl, node, _ := host.Testbed1(p, ioat.Linux(), cfg.Seed, cfg.hostOpts()...)
		var r pinRow
		cl.S.Spawn("ablpin", func(pr *sim.Proc) {
			size := 64 * cost.KB
			src := node.Buf(size)
			dst := node.Buf(size)
			r.CPUCopy = node.Copier.CopySync(pr, src.Addr, dst.Addr, size)
			// Fresh buffers every time: pins never amortize.
			s2 := node.Buf(size)
			d2 := node.Buf(size)
			busy0 := node.CPU.BusyTime()
			done := node.Copier.Start(pr, s2.Addr, d2.Addr, size)
			r.DMACPU = node.CPU.BusyTime() - busy0
			done.Wait(pr)
		})
		cl.S.Run()
		cl.MustVerify()
		return r
	})
	for i, r := range rows {
		wins := 0.0
		if r.DMACPU < r.CPUCopy {
			wins = 1
		}
		series.Add(float64(mults[i]), fmt.Sprintf("%dx", mults[i]),
			us(r.CPUCopy), us(r.DMACPU), wins)
	}
	return &Result{ID: "ablpin", Title: "Ablation: page-pinning cost vs DMA benefit", Series: series,
		Notes: []string{"paper §7: once pinning exceeds the copy cost, the engine stops paying off"}}
}

// AblCoal sweeps the interrupt-coalescing frame budget under light and
// heavy load, reproducing the paper's §2.1 claim that coalescing only
// helps when the network is heavily loaded.
func AblCoal(cfg Config) *Result {
	series := stats.NewSeries("Ablation: interrupt coalescing budget", "Frames/intr",
		"light-load CPU%", "heavy-load CPU%", "light Mbps", "heavy Mbps")
	budgets := []int{1, 2, 4, 8, 16, 32}
	type coalRow struct{ Light, Heavy microResult }
	params := func(i int) *cost.Params {
		p := cfg.params()
		p.CoalesceFrames = budgets[i]
		return p
	}
	rows := points(cfg, len(budgets), func(i int) string {
		return cfg.key("ablcoal", budgets[i], params(i))
	}, func(i int) coalRow {
		run := func(ports int) microResult {
			return runMicro(params(i), ioat.None(), cfg, portStreams(ports, 64*cost.KB, false))
		}
		return coalRow{Light: run(1), Heavy: run(6)}
	})
	for i, r := range rows {
		series.Add(float64(budgets[i]), "",
			pct(r.Light.CPURecv), pct(r.Heavy.CPURecv), r.Light.Mbps, r.Heavy.Mbps)
	}
	return &Result{ID: "ablcoal", Title: "Ablation: interrupt coalescing", Series: series,
		Notes: []string{"coalescing saves little at light load and a lot at heavy load (paper §2.1)"}}
}
