package bench

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ioatsim/internal/cost"
)

func TestDecodeRequestRejectsUnknownFields(t *testing.T) {
	_, err := DecodeRequest(strings.NewReader(`{"runers": ["fig6"]}`))
	if err == nil {
		t.Fatal("a typoed field decoded silently")
	}
	q, err := DecodeRequest(strings.NewReader(
		`{"runners": ["fig6"], "seed": 2, "scale": 0.1, "costs": [{"field": "MTU", "value": 2048}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Runners) != 1 || q.Seed != 2 || q.Scale != 0.1 || len(q.Costs) != 1 {
		t.Fatalf("decoded request wrong: %+v", q)
	}
}

func TestRequestValidate(t *testing.T) {
	bad := []Request{
		{Runners: []string{"nope"}},
		{Scale: -1},
		{Parallel: -2},
		{Fault: "loss=notanumber"},
		{Costs: []CostOverride{{Field: "NoSuchField", Value: 1}}},
		{Costs: []CostOverride{{Field: "Cores", Value: -4}}}, // Params.Validate rejects
	}
	for i, q := range bad {
		if err := q.Validate(0); err == nil {
			t.Errorf("bad request %d validated: %+v", i, q)
		}
	}
	if err := (Request{Runners: []string{"fig6"}, Scale: 0.05}).Validate(0); err != nil {
		t.Errorf("good request rejected: %v", err)
	}
	if err := (Request{Scale: 0.5}).Validate(0.25); err == nil {
		t.Error("scale above maxScale validated")
	}
}

func TestRequestConfigDefaultsAndSelection(t *testing.T) {
	cfg, runners, err := Request{}.Config(0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 1 || cfg.Scale != 1 {
		t.Fatalf("zero request must mean the CLI defaults, got seed=%d scale=%v", cfg.Seed, cfg.Scale)
	}
	if len(runners) != len(Experiments()) {
		t.Fatalf("zero request selects %d runners, want all %d", len(runners), len(Experiments()))
	}

	cfg, runners, err = Request{Runners: []string{"fig9", "fig6"}, Seed: 7, Fault: "loss=0.001"}.Config(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(runners) != 2 || runners[0].ID != "fig9" || runners[1].ID != "fig6" {
		t.Fatalf("selection order not preserved: %v", runners)
	}
	if cfg.Fault == nil || cfg.Fault.Seed != 7 {
		t.Fatalf("fault plan seed must default to the request seed, got %+v", cfg.Fault)
	}
}

func TestApplyCostOverrides(t *testing.T) {
	p := cost.Default()
	err := ApplyCostOverrides(p, []CostOverride{
		{Field: "MTU", Value: 2048},
		{Field: "TSO", Value: 1},
		{Field: "Syscall", Value: float64(2 * time.Microsecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.MTU != 2048 || !p.TSO || p.Syscall != 2*time.Microsecond {
		t.Fatalf("overrides not applied: MTU=%d TSO=%v Syscall=%v", p.MTU, p.TSO, p.Syscall)
	}
}

// TestCostOverridesChangeTables runs a tiny figure with and without an
// override that must move the numbers: the request surface really
// reaches the simulation.
func TestCostOverridesChangeTables(t *testing.T) {
	base := Config{Seed: 1, Scale: 0.05}
	slow := base
	// A 10x slower copy engine must change Fig 6's DMA columns.
	slow.Costs = []CostOverride{{Field: "DMABytesPerSec", Value: 260e6}}
	if Fig6(base).String() == Fig6(slow).String() {
		t.Fatal("cost override did not change the rendered table")
	}
	// And the same config twice stays deterministic.
	if Fig6(slow).String() != Fig6(slow).String() {
		t.Fatal("overridden run is not deterministic")
	}
}

// TestRunContextCancelMidSweep cancels during the first points of a
// figure and checks the runner unwinds into an error instead of
// finishing or panicking.
func TestRunContextCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int32
	cfg := Config{Seed: 1, Scale: 0.05, Parallel: 1, Ctx: ctx}
	// Cancel as soon as the first point runs: wrap the context check by
	// cancelling from a goroutine watching a flag set via the cache key
	// function would be invasive; instead run sequentially and cancel
	// after a short delay — the scale-0.05 figure takes long enough
	// that some points remain.
	go func() {
		for atomic.LoadInt32(&started) == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		cancel()
	}()
	atomic.StoreInt32(&started, 1)
	res, err := Runner{ID: "fig9", Run: Fig9}.RunContext(cfg)
	if err == nil {
		// The race between cancel and completion is legal; only a
		// cancelled run must report it.
		if res == nil {
			t.Fatal("nil result without error")
		}
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run still returned a result")
	}
}

// TestRunContextPreCancelled is the deterministic variant: a cancelled
// context aborts before any point runs.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Runner{ID: "fig6", Run: Fig6}.RunContext(Config{Seed: 1, Scale: 0.05, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("pre-cancelled run returned a result")
	}
}
