// Package bench implements one experiment per table/figure of the
// paper's evaluation (§4 micro-benchmarks, §5 data-center, §6 PVFS),
// plus the ablation studies DESIGN.md lists. Each experiment returns a
// Result whose Series renders as a text table mirroring the figure.
package bench

import (
	"context"
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
	"ioatsim/internal/stats"
	"ioatsim/internal/sweep"
	"ioatsim/internal/tcp"
)

// Config scales the experiments. Scale < 1 shortens runs and request
// counts proportionally (used by `go test` so the full suite stays
// fast); Scale = 1 reproduces the paper-sized runs.
//
// Parallel bounds how many of an experiment's points run concurrently:
// 1 is strictly sequential, 0 (or negative) means one worker per
// GOMAXPROCS core. Every point is an independent simulation, so the
// rendered tables are byte-identical at any setting.
type Config struct {
	Seed     uint64
	Scale    float64
	Parallel int

	// Check runs every simulation under the runtime invariant checker
	// (byte conservation, event causality, utilization bounds) and panics
	// on any violation. Tests set it; benchmarks leave it off so the hot
	// paths stay probe-free.
	Check bool

	// Strict upgrades Check to fail-fast: the first violated invariant
	// panics at the virtual time it happens instead of at the end-of-run
	// verdict. Implies Check.
	Strict bool

	// Fault, when non-nil, runs every simulation under the given fault
	// plan (internal/fault): link loss and flaps, NIC ring overflow,
	// degraded nodes, and the transport's retransmission machinery. The
	// plan participates in the point-cache key; a nil plan is the
	// lossless fabric every figure of the paper assumes. Runners that
	// sweep their own fault parameters (the loss-sweep figure) override
	// it per point.
	Fault *fault.Plan

	// Obs attaches observability sinks (tracer, profiler, metrics
	// registry) to every cluster the experiment builds. The tracer and
	// registry are not goroutine-safe across concurrently-running
	// simulations, so callers that set them should also set Parallel to 1;
	// the profiler alone is safe at any parallelism.
	Obs host.Observability

	// Cache, when non-nil, memoizes each sweep point's result under its
	// content-addressed key (sweep.Key over the code version, figure,
	// point parameters, Seed and Scale), so repeated runs at an identical
	// configuration skip the simulation. Tables are byte-identical with
	// or without it — the golden tests pin that.
	Cache *sweep.PointCache

	// Ctx, when non-nil, bounds the experiment's lifetime: once it is
	// cancelled no further sweep point starts, the points in flight run
	// to completion, and Runner.RunContext returns the context's error.
	// Like Parallel it changes how a run executes, never what a finished
	// run's tables say, so it stays out of the point-cache key. A nil
	// Ctx means context.Background().
	Ctx context.Context

	// Costs overrides individual cost-model parameters by cost.Params
	// field name, applied to the base parameter set every experiment
	// starts from (figure-specific adjustments, e.g. Fig 5's socket
	// cases, are applied on top and win on conflict). Overridden costs
	// change the tables, so Costs joins the point-cache key.
	Costs []CostOverride
}

// CostOverride renames one cost.Params field to a new value. Value is
// interpreted per field kind: integers and byte counts are rounded,
// time.Duration fields read Value as nanoseconds, bools as Value != 0.
type CostOverride struct {
	Field string  `json:"field"`
	Value float64 `json:"value"`
}

// params returns the experiment's base parameter set: cost.Default()
// with the config's overrides applied. It panics on an unknown or
// non-numeric field — Request validation rejects bad overrides at the
// API boundary, so reaching here with one is a programming error.
func (c Config) params() *cost.Params {
	p := cost.Default()
	if err := ApplyCostOverrides(p, c.Costs); err != nil {
		panic(fmt.Sprintf("bench: invalid cost override: %v", err))
	}
	return p
}

// context resolves the config's context.
func (c Config) context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// hostOpts translates the config into cluster-construction options.
func (c Config) hostOpts() []host.Option {
	var opts []host.Option
	switch {
	case c.Strict:
		opts = append(opts, host.WithStrictCheck())
	case c.Check:
		opts = append(opts, host.WithCheck())
	}
	if c.Fault != nil {
		opts = append(opts, host.WithFault(*c.Fault))
	}
	if c.Obs.Enabled() {
		opts = append(opts, host.WithObservability(c.Obs))
	}
	return opts
}

// DefaultConfig runs paper-sized experiments.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 1} }

// duration scales a nominal measurement window.
func (c Config) duration(d time.Duration) time.Duration {
	if c.Scale <= 0 || c.Scale == 1 {
		return d
	}
	scaled := time.Duration(float64(d) * c.Scale)
	if scaled < time.Millisecond {
		scaled = time.Millisecond
	}
	return scaled
}

// count scales a nominal request count.
func (c Config) count(n int) int {
	if c.Scale <= 0 || c.Scale == 1 {
		return n
	}
	scaled := int(float64(n) * c.Scale)
	if scaled < 10 {
		scaled = 10
	}
	return scaled
}

// Result is one reproduced figure.
type Result struct {
	ID     string
	Title  string
	Series *stats.Series
	Notes  []string
}

// String renders the result as a table plus notes.
func (r *Result) String() string {
	out := r.Series.Table()
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Runner is a registered experiment. Desc is the one-line description
// the CLI's -list and the daemon's GET /v1/runners both render — one
// shared table, one source of truth.
type Runner struct {
	ID    string
	Title string
	Desc  string
	Run   func(Config) *Result
}

// Experiments lists every reproducible figure in paper order.
func Experiments() []Runner {
	return []Runner{
		{"fig3a", "Bandwidth vs. ports", "unidirectional ttcp over 1..6 GbE ports, 64K messages; receiver CPU with and without I/OAT", Fig3a},
		{"fig3b", "Bi-directional bandwidth vs. ports", "N streams each way over 1..6 ports; one node's CPU utilization", Fig3b},
		{"fig4", "Multi-stream bandwidth vs. threads", "1..12 receiver threads round-robined over six ports, 16K messages", Fig4},
		{"fig5a", "Sender-side optimizations: bandwidth", "cumulative socket-buffer/TSO/jumbo/coalescing cases, unidirectional", Fig5a},
		{"fig5b", "Sender-side optimizations: bi-directional", "the same cases bi-directionally; Case 4 is the paper's 38% headline", Fig5b},
		{"fig6", "CPU-based copy vs. DMA-based copy", "1K..64K copies: cached/uncached memcpy vs engine total, overhead and overlap", Fig6},
		{"fig7a", "I/OAT split-up: CPU benefit (16K-128K)", "non-I/OAT vs DMA-only vs DMA+split-header at medium messages", Fig7a},
		{"fig7b", "I/OAT split-up: throughput (1M-8M)", "the same split at cache-exceeding messages, where split headers pay", Fig7b},
		{"fig8a", "Data-center TPS: single-file traces", "proxy+web two-tier TPS for 2K..10K single-file traces", Fig8a},
		{"fig8b", "Data-center TPS: Zipf traces", "two-tier TPS under Zipf document popularity, alpha 0.95..0.5", Fig8b},
		{"fig9", "Data-center TPS vs. emulated clients", "1..256 client threads against the web tier; the 4x concurrency result", Fig9},
		{"fig10a", "PVFS concurrent read, 6 I/O servers", "parallel-FS read bandwidth and client CPU, 1..6 clients", Fig10a},
		{"fig10b", "PVFS concurrent read, 5 I/O servers", "the same sweep with five I/O servers", Fig10b},
		{"fig11a", "PVFS concurrent write, 6 I/O servers", "parallel-FS write bandwidth and server CPU, 1..6 clients", Fig11a},
		{"fig11b", "PVFS concurrent write, 5 I/O servers", "the same sweep with five I/O servers", Fig11b},
		{"fig12", "PVFS multi-stream read", "1..64 emulated clients on one compute node reading 2M regions", Fig12},
		{"ablrss", "Ablation: multiple receive queues", "MTU 576 interrupt saturation vs RSS spreading flows across cores", AblRSS},
		{"ablpin", "Ablation: page-pinning cost vs. DMA benefit", "sweeps per-page pin cost until the engine stops paying off (paper §7)", AblPin},
		{"ablcoal", "Ablation: interrupt coalescing budget", "frames-per-interrupt budget under light and heavy load (paper §2.1)", AblCoal},
		{"ext3tier", "Extension: 3-tier dynamic-content data-center", "proxy→app→database tiers swept over DB queries per request", Ext3Tier},
		{"extipc", "Extension: intra-node IPC via the copy engine", "shared-memory channel, CPU copies vs engine copies (paper §7)", ExtIPC},
		{"fault_loss", "Extension: goodput and CPU vs. loss rate", "the fig3a layout under 0..2% Bernoulli frame loss with go-back-N recovery", FaultLoss},
	}
}

// canceled carries a context error out of a cancelled sweep; points
// panics with it and RunContext converts it back into an error. Using a
// private type keeps genuine point panics distinguishable.
type canceled struct{ err error }

// RunContext runs the experiment under cfg and converts a mid-sweep
// context cancellation into an error instead of a panic. Every other
// panic propagates unchanged. Callers that never set Config.Ctx can
// keep calling Run directly.
func (r Runner) RunContext(cfg Config) (res *Result, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if c, ok := rec.(canceled); ok {
				err = c.err
				return
			}
			panic(rec)
		}
	}()
	return r.Run(cfg), nil
}

// Find returns the runner with the given id.
func Find(id string) (Runner, bool) {
	for _, r := range Experiments() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// ---- shared traffic machinery for the micro-benchmarks ----

// stream is one unidirectional ttcp-style flow.
type stream struct {
	from, to         *host.Node
	portFrom, portTo int
	msg              int
	opts             tcp.SendOptions
}

// launch starts the stream's sender and receiver loops as event-driven
// continuations (zero goroutine handoffs in steady state); they run
// until the simulation stops. The loops still register as threads —
// they model the same ttcp threads as before; only the host-side
// scheduling cost is gone.
func (sp stream) launch() {
	s := sp.from.S
	ca, cb := tcp.Pair(sp.from.Stack, sp.to.Stack, sp.portFrom, sp.portTo)
	src := sp.from.Buf(min(sp.msg, 256*cost.KB))
	dst := sp.to.Buf(min(sp.msg, 256*cost.KB))
	sp.from.CPU.RegisterThread()
	tx := tcp.NewSender(ca, s.NewTask(fmt.Sprintf("tx-%s-%d", sp.from.Name, sp.portFrom)))
	var txLoop func()
	txLoop = func() { tx.SendOpts(src, sp.msg, sp.opts, txLoop) }
	tx.Task().Start(txLoop)
	sp.to.CPU.RegisterThread()
	rx := tcp.NewReceiver(cb, s.NewTask(fmt.Sprintf("rx-%s-%d", sp.to.Name, sp.portTo)))
	var rxLoop func()
	rxLoop = func() { rx.Recv(dst, sp.msg, rxLoop) }
	rx.Task().Start(rxLoop)
}

// microResult captures one measured configuration. The fields are
// exported (as in every sweep-row type) so the point cache can gob-
// encode them.
type microResult struct {
	Mbps    float64 // goodput delivered during the window
	CPURecv float64 // receiver-node utilization (0..1)
	CPUSend float64 // sender-node utilization (0..1)
}

// runMicro builds Testbed 1 with the given features and parameters,
// launches the streams, and measures goodput at the stream receivers and
// CPU on both nodes over the measurement window.
func runMicro(p *cost.Params, feat ioat.Features, cfg Config,
	build func(a, b *host.Node) []stream) microResult {
	return runMicroWith(p, feat, cfg, build, nil)
}

// runMicroWith is runMicro with a hook that runs at the end of the
// measurement window, before the cluster is discarded — for collecting
// extra metrics such as per-core utilization.
func runMicroWith(p *cost.Params, feat ioat.Features, cfg Config,
	build func(a, b *host.Node) []stream, post func(a, b *host.Node)) microResult {
	cl, a, b := host.Testbed1(p, feat, cfg.Seed, cfg.hostOpts()...)
	streams := build(a, b)
	for _, sp := range streams {
		sp.launch()
	}
	warm := cfg.duration(40 * time.Millisecond)
	meas := cfg.duration(160 * time.Millisecond)

	cl.S.RunUntil(sim.Time(warm))
	cl.ResetMeters()
	recvMark := map[*host.Node]int64{}
	for _, n := range cl.Nodes {
		recvMark[n] = n.Stack.BytesReceived
	}
	cl.S.RunUntil(sim.Time(warm + meas))

	// Goodput is summed over the nodes that receive stream traffic.
	var rxBytes int64
	seen := map[*host.Node]bool{}
	for _, sp := range streams {
		if !seen[sp.to] {
			seen[sp.to] = true
			rxBytes += sp.to.Stack.BytesReceived - recvMark[sp.to]
		}
	}
	mbps := float64(rxBytes*8) / meas.Seconds() / 1e6
	if post != nil {
		post(a, b)
	}
	r := microResult{
		Mbps:    mbps,
		CPURecv: b.CPU.Utilization(),
		CPUSend: a.CPU.Utilization(),
	}
	cl.MustVerify()
	return r
}

// cacheVersion tags every point-cache key with the simulation code
// revision. Cached rows are only valid against the code that produced
// them — the key hashes configurations, not model code — so bump this
// whenever a change alters any experiment's output (a golden-corpus
// diff is the signal).
const cacheVersion = "ioatsim-v6"

// key builds the content-addressed identity of one sweep point from the
// code version, the figure/point discriminators (which must include the
// point's cost.Params when the figure adjusts them), and the config
// fields that reach the tables: Seed, Scale, the fault plan (a nil
// plan and the benign zero plan hash apart, but both produce the golden
// tables — the differential test pins that) and the cost overrides.
// Parallel, Check, Strict, Obs, Cache and Ctx are deliberately
// excluded — they change how a run executes or what it records, never
// what the tables say (the parallel and golden tests pin that
// property).
func (c Config) key(kind string, parts ...any) string {
	return sweep.Key(cacheVersion, kind, c.Seed, c.Scale, c.Fault, c.Costs, parts)
}

// points runs fn for every point index of a figure, concurrently up to
// cfg.Parallel workers, and returns the rows in point order. fn must
// build all of its own state (cluster, cost.Params) per call. key gives
// each point's cache identity (see Config.key); with cfg.Cache unset it
// is never called. A cancelled cfg.Ctx aborts the sweep between points
// and unwinds the runner with a panic RunContext converts back into an
// error.
func points[T any](cfg Config, n int, key func(i int) string, fn func(i int) T) []T {
	out, err := sweep.CachedRunCtx(cfg.context(), cfg.Cache, cfg.Parallel, n, key, fn)
	if err != nil {
		panic(canceled{err})
	}
	return out
}

func pct(x float64) float64 { return x * 100 }
