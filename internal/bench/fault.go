package bench

import (
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/stats"
)

// faultRow is one measured loss rate: the six-port unidirectional
// layout of Fig 3a under per-frame Bernoulli loss, without and with
// the full I/OAT stack.
type faultRow struct {
	Plain, Accel         microResult
	PlainRetx, AccelRetx int64
}

// faultLossRates are the per-frame drop probabilities the sweep visits.
// Zero is deliberate: the first row must match the lossless fabric
// exactly (the benign-plan differential in fault_test.go pins the same
// property across every figure).
var faultLossRates = []float64{0, 0.0005, 0.001, 0.002, 0.005, 0.01, 0.02}

// faultPoint measures one loss rate. The plan seed is derived from the
// config seed, so the same frames are dropped for both feature sets —
// the comparison isolates the recovery cost, not the noise.
func faultPoint(cfg Config, rate float64) faultRow {
	pc := cfg
	// Recovery runs on absolute timescales (RTO backoff), which do not
	// shrink with the measurement window. Below a quarter scale the
	// window is shorter than one timeout cycle and the high-loss rows
	// read zero, so this figure floors its own scale.
	if pc.Scale > 0 && pc.Scale < 0.25 {
		pc.Scale = 0.25
	}
	// RTO bounds sized to this fabric's sub-millisecond RTTs: the
	// defaults (1ms..100ms) are safety margins for unknown networks, and
	// a 100ms initial timer would eat the whole measurement window.
	pc.Fault = &fault.Plan{Seed: cfg.Seed, LossRate: rate,
		RTOMin: 500 * time.Microsecond, RTOMax: 10 * time.Millisecond}
	var row faultRow
	row.Plain = runMicroWith(pc.params(), ioat.None(), pc,
		portStreams(6, 64*cost.KB, false), func(a, b *host.Node) {
			row.PlainRetx = a.Stack.Retransmits
		})
	row.Accel = runMicroWith(pc.params(), ioat.Full(), pc,
		portStreams(6, 64*cost.KB, false), func(a, b *host.Node) {
			row.AccelRetx = a.Stack.Retransmits
		})
	return row
}

// FaultLoss is the loss-sweep figure: goodput and receiver CPU of the
// Fig 3a six-port layout as the per-frame loss rate rises from zero to
// 2%, traditional sockets vs. the full I/OAT stack. Go-back-N recovery
// amplifies every drop into a resent window, so goodput degrades
// faster than the raw loss rate; the I/OAT columns show whether the
// offloads keep their CPU advantage once the receive path is spending
// cycles on discards and retransmitted bytes.
func FaultLoss(cfg Config) *Result {
	series := stats.NewSeries("Loss sweep: goodput under faults", "Loss%",
		"non-I/OAT Mbps", "I/OAT Mbps", "non-I/OAT CPU%", "I/OAT CPU%",
		"non-I/OAT retx", "I/OAT retx")
	rows := points(cfg, len(faultLossRates), func(i int) string {
		return cfg.key("fault_loss", faultLossRates[i], cfg.params())
	}, func(i int) faultRow {
		return faultPoint(cfg, faultLossRates[i])
	})
	for i, r := range rows {
		rate := faultLossRates[i]
		series.Add(rate*100, fmt.Sprintf("%g%%", rate*100),
			r.Plain.Mbps, r.Accel.Mbps, pct(r.Plain.CPURecv), pct(r.Accel.CPURecv),
			float64(r.PlainRetx), float64(r.AccelRetx))
	}
	return &Result{ID: "fault_loss", Title: "Goodput and CPU vs. loss rate", Series: series,
		Notes: []string{
			"extension: the paper's fabric is lossless; this sweep adds per-frame Bernoulli loss",
			"go-back-N recovery resends the whole unacked window per drop, so goodput falls superlinearly",
		}}
}
