package bench

import (
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/datacenter"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/ipc"
	"ioatsim/internal/sim"
	"ioatsim/internal/stats"
)

// Ext3Tier evaluates the paper's third workload class (§5.1, "dynamic
// content ... via CGI, PHP and Java servlets with a back-end database"),
// which the paper describes but does not measure: a full three-tier
// data-center (proxy -> application servers -> database) swept over the
// number of database queries per request.
func Ext3Tier(cfg Config) *Result {
	series := stats.NewSeries("Extension: 3-tier dynamic content", "DB queries/req",
		"non-I/OAT TPS", "I/OAT TPS", "TPS benefit%", "app CPU%", "db CPU%")
	queryCounts := []int{1, 3, 5}
	type tierRow struct{ Plain, Accel datacenter.ThreeTierMetrics }
	rows := points(cfg, len(queryCounts), func(i int) string {
		return cfg.key("ext3tier", queryCounts[i], cfg.params())
	}, func(i int) tierRow {
		run := func(feat ioat.Features) datacenter.ThreeTierMetrics {
			o := datacenter.ThreeTierOptions{Options: dcOptions(cfg, feat)}
			o.QueriesPerRequest = queryCounts[i]
			o.ResponseBytes = 8 * cost.KB
			return datacenter.RunThreeTier(o)
		}
		return tierRow{run(ioat.None()), run(ioat.Linux())}
	})
	for i, r := range rows {
		series.Add(float64(queryCounts[i]), "",
			r.Plain.TPS, r.Accel.TPS, pct(gain(r.Plain.TPS, r.Accel.TPS)),
			pct(r.Accel.AppCPU), pct(r.Accel.DBCPU))
	}
	return &Result{ID: "ext3tier", Title: "Extension: 3-tier dynamic content", Series: series,
		Notes: []string{"the paper's §5.1 third workload class, not measured there: I/OAT helps the inter-tier hops"}}
}

// ExtIPC evaluates the paper's §7 intra-node use of the copy engine:
// shared-memory message passing between two processes, CPU copies vs
// engine copies, across message sizes.
func ExtIPC(cfg Config) *Result {
	series := stats.NewSeries("Extension: intra-node IPC via the copy engine", "Size",
		"CPU-copy MB/s", "engine MB/s", "CPU-copy cpu%", "engine cpu%")
	sizes := []int{4 * cost.KB, 16 * cost.KB, 64 * cost.KB}
	type ipcRow struct{ CPUMBps, EngMBps, CPUUtil, EngUtil float64 }
	rows := points(cfg, len(sizes), func(i int) string {
		return cfg.key("extipc", sizes[i], cfg.params())
	}, func(i int) ipcRow {
		size := sizes[i]
		run := func(mode ipc.Mode) (float64, float64) {
			cl := host.NewCluster(cfg.params(), cfg.Seed, cfg.hostOpts()...)
			n := cl.Add("n", ioat.Linux(), 1)
			ch := ipc.New(n, size, 16)
			ch.Mode = mode
			src := n.Buf(size)
			dst := n.Buf(size)
			cl.S.Spawn("producer", func(p *sim.Proc) {
				for {
					ch.Send(p, src, size)
				}
			})
			cl.S.Spawn("consumer", func(p *sim.Proc) {
				for {
					ch.Recv(p, dst)
				}
			})
			meas := cfg.duration(20 * time.Millisecond)
			cl.S.RunUntil(sim.Time(meas / 4))
			cl.ResetMeters()
			mark := ch.Bytes
			cl.S.RunUntil(sim.Time(meas/4 + meas))
			mbps := float64(ch.Bytes-mark) / meas.Seconds() / 1e6
			util := n.CPU.Utilization()
			cl.MustVerify()
			return mbps, util
		}
		var r ipcRow
		r.CPUMBps, r.CPUUtil = run(ipc.CPUCopy)
		r.EngMBps, r.EngUtil = run(ipc.EngineCopy)
		return r
	})
	for i, r := range rows {
		series.Add(float64(sizes[i]), sizeLabel(sizes[i]),
			r.CPUMBps, r.EngMBps, pct(r.CPUUtil), pct(r.EngUtil))
	}
	return &Result{ID: "extipc", Title: "Extension: intra-node IPC", Series: series,
		Notes: []string{
			"the paper's §7 proposal, quantified: the engine cannot beat hot-cache memcpy bandwidth (Fig. 6's copy-cache result),",
			"but it runs the channel at a fraction of the CPU — the freed cycles are the point, exactly as on the network path",
		}}
}
