package workload

import (
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/mem"
	"ioatsim/internal/ramfs"
	"ioatsim/internal/rng"
)

func newFS() *ramfs.FS {
	return ramfs.New(mem.NewModel(cost.Default()))
}

func TestSingleFile(t *testing.T) {
	tr := &SingleFile{Path: "a.html"}
	for i := 0; i < 5; i++ {
		if tr.Next() != "a.html" {
			t.Fatal("single-file trace wandered")
		}
	}
}

func TestGenerateUniform(t *testing.T) {
	fs := newFS()
	c := GenerateUniform(fs, "doc", 50, 4096)
	if len(c.Names) != 50 || fs.Len() != 50 {
		t.Fatalf("generated %d names, fs has %d", len(c.Names), fs.Len())
	}
	for _, n := range c.Names {
		if c.Sizes[n] != 4096 {
			t.Fatalf("size[%s] = %d", n, c.Sizes[n])
		}
		if fs.MustOpen(n).Size() != 4096 {
			t.Fatal("fs size mismatch")
		}
	}
}

func TestGenerateSpread(t *testing.T) {
	fs := newFS()
	r := rng.New(7)
	c := GenerateSpread(fs, r, "doc", 200, 1024, 16384)
	varied := false
	for _, n := range c.Names {
		s := c.Sizes[n]
		if s < 1024 || s > 16384 {
			t.Fatalf("size %d out of range", s)
		}
		if s != c.Sizes[c.Names[0]] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("spread produced uniform sizes")
	}
}

func TestZipfTraceFavorsPopular(t *testing.T) {
	fs := newFS()
	c := GenerateUniform(fs, "doc", 100, 1024)
	tr := NewZipf(rng.New(1), c.Names, 0.95)
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[tr.Next()]++
	}
	if counts[c.Names[0]] <= counts[c.Names[50]] {
		t.Fatalf("rank 0 (%d) not above rank 50 (%d)",
			counts[c.Names[0]], counts[c.Names[50]])
	}
	// Every draw must name a real file.
	for name := range counts {
		if _, ok := fs.Open(name); !ok {
			t.Fatalf("trace produced unknown file %q", name)
		}
	}
}

func TestZipfEmptyCatalogPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty catalog did not panic")
		}
	}()
	NewZipf(rng.New(1), nil, 0.9)
}
