// Package workload generates the paper's request workloads: single-file
// micro traces (§5.1, one file requested repeatedly) and Zipf-distributed
// document traces (§5.1, Breslau et al.) over a generated file catalog.
package workload

import (
	"fmt"

	"ioatsim/internal/ramfs"
	"ioatsim/internal/rng"
)

// Trace yields the sequence of document names a client requests.
type Trace interface {
	// Next returns the next requested document name.
	Next() string
}

// SingleFile is the §5.2.1 micro workload: every request hits one file.
type SingleFile struct {
	Path string
}

// Next implements Trace.
func (s *SingleFile) Next() string { return s.Path }

// Zipf is the §5.2.2 workload: document i is requested with probability
// proportional to 1/i^alpha over a fixed catalog.
type Zipf struct {
	names []string
	z     *rng.Zipf
}

// NewZipf builds a Zipf trace over the catalog with the given exponent.
// Catalog order defines popularity rank: names[0] is the most popular.
func NewZipf(r *rng.Rand, names []string, alpha float64) *Zipf {
	if len(names) == 0 {
		panic("workload: empty catalog")
	}
	return &Zipf{names: names, z: rng.NewZipf(r, len(names), alpha)}
}

// Next implements Trace.
func (z *Zipf) Next() string { return z.names[z.z.Next()] }

// Catalog describes a generated file set.
type Catalog struct {
	Names []string
	Sizes map[string]int
}

// GenerateUniform creates count files of the given fixed size in fs,
// named <prefix>NNNN.html.
func GenerateUniform(fs *ramfs.FS, prefix string, count, size int) *Catalog {
	c := &Catalog{Sizes: make(map[string]int, count)}
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s%04d.html", prefix, i)
		fs.Create(name, size)
		c.Names = append(c.Names, name)
		c.Sizes[name] = size
	}
	return c
}

// GenerateSpread creates count files whose sizes vary uniformly in
// [minSize, maxSize], mimicking a static-content document mix.
func GenerateSpread(fs *ramfs.FS, r *rng.Rand, prefix string, count, minSize, maxSize int) *Catalog {
	if maxSize < minSize {
		panic("workload: maxSize below minSize")
	}
	c := &Catalog{Sizes: make(map[string]int, count)}
	for i := 0; i < count; i++ {
		name := fmt.Sprintf("%s%04d.html", prefix, i)
		size := minSize
		if maxSize > minSize {
			size += r.Intn(maxSize - minSize + 1)
		}
		fs.Create(name, size)
		c.Names = append(c.Names, name)
		c.Sizes[name] = size
	}
	return c
}
