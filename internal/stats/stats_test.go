package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ioatsim/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative add did not panic")
		}
	}()
	c.Add(-1)
}

func TestSummary(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Observe(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.Stddev()-2.1380899) > 1e-6 {
		t.Fatalf("stddev = %v", s.Stddev())
	}
}

func TestSummaryMatchesNaive(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		var s Summary
		sum := 0.0
		for _, v := range clean {
			s.Observe(v)
			sum += v
		}
		want := sum / float64(len(clean))
		return math.Abs(s.Mean()-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeighted(t *testing.T) {
	var g TimeWeighted
	g.Set(0, 1)   // busy from 0
	g.Set(100, 0) // idle from 100
	g.Set(300, 1) // busy from 300
	g.Set(400, 0) // idle from 400
	// busy 200 of 400 -> 0.5 at t=400
	if got := g.Mean(400); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean = %v, want 0.5", got)
	}
	// at t=800: busy 200 of 800 -> 0.25
	if got := g.Mean(800); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mean = %v, want 0.25", got)
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var g TimeWeighted
	g.Set(0, 1)
	g.Set(100, 0)
	g.Reset(100)
	g.Set(150, 1)
	g.Set(200, 0)
	// window [100,200]: busy 50 -> 0.5
	if got := g.Mean(200); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("mean after reset = %v, want 0.5", got)
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	f := func(v float64, dt uint16) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		var g TimeWeighted
		g.Set(0, v)
		now := sim.Time(dt) + 1
		got := g.Mean(now)
		return math.Abs(got-v) < 1e-9*(1+math.Abs(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.N() != 1000 {
		t.Fatalf("n = %d", h.N())
	}
	if math.Abs(h.Mean()-500.5) > 1e-9 {
		t.Fatalf("mean = %v", h.Mean())
	}
	q50 := h.Quantile(0.5)
	if q50 < 256 || q50 > 1024 {
		t.Fatalf("median bucket edge = %v, want within [256,1024]", q50)
	}
	if h.Quantile(1.0) < 1000 {
		t.Fatalf("max quantile = %v", h.Quantile(1.0))
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("test", "ports", "a", "b")
	s.Add(1, "", 10, 20)
	s.Add(2, "two", 30, 40)
	if v, ok := s.Get("two", "b"); !ok || v != 40 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	col := s.Column("a")
	if len(col) != 2 || col[0] != 10 || col[1] != 30 {
		t.Fatalf("Column = %v", col)
	}
}

func TestSeriesAddMismatchPanics(t *testing.T) {
	s := NewSeries("x", "x", "a")
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Add did not panic")
		}
	}()
	s.Add(1, "", 1, 2)
}

func TestRelativeBenefit(t *testing.T) {
	// The paper's own example: 30% vs 60% CPU -> 50% relative benefit.
	if got := RelativeBenefit(60, 30); got != 0.5 {
		t.Fatalf("relative benefit = %v, want 0.5", got)
	}
	if got := RelativeBenefit(0, 10); got != 0 {
		t.Fatalf("relative benefit with zero base = %v", got)
	}
}

func TestTable(t *testing.T) {
	s := NewSeries("Figure 3a", "Ports", "non-I/OAT Mbps", "I/OAT Mbps")
	s.Add(1, "", 941, 941)
	s.Add(6, "", 5514, 5586)
	out := s.Table()
	for _, want := range []string{"Figure 3a", "Ports", "non-I/OAT Mbps", "941", "5586"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		5514:   "5514",
		0.3821: "0.3821",
		37.25:  "37.25",
		123.45: "123.5",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Fatalf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}
