// Package stats provides the measurement instruments the simulator
// reports through: counters, summaries, time-weighted gauges (for CPU
// utilization), histograms and labelled series, plus plain-text table
// rendering for the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"

	"ioatsim/internal/sim"
)

// Counter accumulates a monotonically increasing count.
type Counter struct {
	n int64
}

// Add increases the counter by d (d >= 0).
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic("stats: negative counter increment")
	}
	c.n += d
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Summary accumulates min/max/mean/variance of a stream of samples
// (Welford's algorithm).
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Observe adds one sample.
func (s *Summary) Observe(v float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	d := v - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (v - s.mean)
}

// N returns the sample count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 if empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest sample (0 if empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest sample (0 if empty).
func (s *Summary) Max() float64 { return s.max }

// Stddev returns the sample standard deviation (0 if n < 2).
func (s *Summary) Stddev() float64 {
	if s.n < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(s.n-1))
}

// TimeWeighted tracks the time integral of a piecewise-constant value —
// the instrument behind CPU-utilization and queue-length reporting.
type TimeWeighted struct {
	value    float64
	since    sim.Time
	integral float64
	started  bool
	start    sim.Time
}

// Set records the value v as of time now. Samples must arrive in
// non-decreasing time order: a piecewise-constant integral cannot be
// amended retroactively, so a backwards sample is a caller bug.
func (g *TimeWeighted) Set(now sim.Time, v float64) {
	if !g.started {
		g.started = true
		g.start = now
		g.since = now
		g.value = v
		return
	}
	if now < g.since {
		panic(fmt.Sprintf("stats: time-weighted gauge sampled backwards (%v after %v)",
			now, g.since))
	}
	g.integral += g.value * float64(now-g.since)
	g.since = now
	g.value = v
}

// Value returns the current value.
func (g *TimeWeighted) Value() float64 { return g.value }

// Mean returns the time-weighted mean over [start, now].
func (g *TimeWeighted) Mean(now sim.Time) float64 {
	if !g.started || now <= g.start {
		return 0
	}
	total := g.integral + g.value*float64(now-g.since)
	return total / float64(now-g.start)
}

// Reset restarts the integration window at now, keeping the current value.
func (g *TimeWeighted) Reset(now sim.Time) {
	g.start = now
	g.since = now
	g.integral = 0
	g.started = true
}

// Histogram counts samples into power-of-two buckets from 1 up.
type Histogram struct {
	buckets [64]int64
	n       int64
	sum     float64
}

// Observe adds one non-negative sample.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		panic("stats: negative histogram sample")
	}
	h.n++
	h.sum += v
	b := 0
	for x := v; x >= 1 && b < 63; x /= 2 {
		b++
	}
	h.buckets[b]++
}

// N returns the sample count.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) using
// bucket upper edges.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	var seen int64
	for b, c := range h.buckets {
		seen += c
		if seen >= target {
			if b == 0 {
				return 1
			}
			return math.Pow(2, float64(b))
		}
	}
	return math.Pow(2, 63)
}

// Point is one labelled (x, y...) row of a Series.
type Point struct {
	X      float64
	Label  string
	Values map[string]float64
}

// Series collects experiment rows in insertion order; the benchmark
// harness renders one Series per paper figure.
type Series struct {
	Name    string
	XLabel  string
	Columns []string
	Points  []Point
}

// NewSeries returns an empty series with the given column set.
func NewSeries(name, xlabel string, columns ...string) *Series {
	return &Series{Name: name, XLabel: xlabel, Columns: columns}
}

// Add appends a row. Values are matched positionally to Columns.
func (s *Series) Add(x float64, label string, values ...float64) {
	if len(values) != len(s.Columns) {
		panic(fmt.Sprintf("stats: row has %d values, series %q has %d columns",
			len(values), s.Name, len(s.Columns)))
	}
	m := make(map[string]float64, len(values))
	for i, c := range s.Columns {
		m[c] = values[i]
	}
	s.Points = append(s.Points, Point{X: x, Label: label, Values: m})
}

// Get returns the value of column col at the row whose label is label.
func (s *Series) Get(label, col string) (float64, bool) {
	for _, p := range s.Points {
		if p.Label == label {
			v, ok := p.Values[col]
			return v, ok
		}
	}
	return 0, false
}

// Column returns all values of one column in row order.
func (s *Series) Column(col string) []float64 {
	out := make([]float64, 0, len(s.Points))
	for _, p := range s.Points {
		out = append(out, p.Values[col])
	}
	return out
}

// RelativeBenefit computes the paper's "relative CPU benefit" (b-a)/b for
// two columns of the same row: base b, accelerated a. Returns 0 when the
// base is 0.
func RelativeBenefit(base, accel float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - accel) / base
}

// Sorted returns a copy of xs in ascending order (helper for tests).
func Sorted(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Float64s(out)
	return out
}
