package stats

import (
	"fmt"
	"strings"
)

// Table renders a Series as a fixed-width text table in the style of the
// paper's figures: one row per x value, one column per metric.
func (s *Series) Table() string {
	var b strings.Builder
	headers := append([]string{s.XLabel}, s.Columns...)
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	rows := make([][]string, 0, len(s.Points))
	for _, p := range s.Points {
		row := make([]string, 0, len(headers))
		label := p.Label
		if label == "" {
			label = trimFloat(p.X)
		}
		row = append(row, label)
		for _, c := range s.Columns {
			row = append(row, formatValue(p.Values[c]))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		rows = append(rows, row)
	}

	fmt.Fprintf(&b, "== %s ==\n", s.Name)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func formatValue(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == float64(int64(v)) && av < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
