package stats

import (
	"testing"

	"ioatsim/internal/sim"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Errorf("empty summary not all-zero: n=%d mean=%v min=%v max=%v stddev=%v",
			s.N(), s.Mean(), s.Min(), s.Max(), s.Stddev())
	}
}

func TestSummarySingleObservation(t *testing.T) {
	var s Summary
	s.Observe(42.5)
	if s.N() != 1 {
		t.Fatalf("n = %d, want 1", s.N())
	}
	if s.Mean() != 42.5 || s.Min() != 42.5 || s.Max() != 42.5 {
		t.Errorf("single sample: mean=%v min=%v max=%v, want all 42.5",
			s.Mean(), s.Min(), s.Max())
	}
	if s.Stddev() != 0 {
		t.Errorf("single-sample stddev = %v, want 0", s.Stddev())
	}
}

func TestSummaryNegativeValues(t *testing.T) {
	var s Summary
	for _, v := range []float64{-3, -1, -2} {
		s.Observe(v)
	}
	if s.Min() != -3 || s.Max() != -1 {
		t.Errorf("min=%v max=%v, want -3 and -1", s.Min(), s.Max())
	}
	if s.Mean() != -2 {
		t.Errorf("mean = %v, want -2", s.Mean())
	}
	if s.Stddev() != 1 {
		t.Errorf("stddev = %v, want 1", s.Stddev())
	}
}

func TestTimeWeightedZeroElapsed(t *testing.T) {
	var g TimeWeighted
	if g.Mean(0) != 0 {
		t.Errorf("mean of never-sampled gauge = %v, want 0", g.Mean(0))
	}
	g.Set(100, 7)
	// No time has passed since the first sample: the integral is empty
	// and the mean must not divide by zero.
	if got := g.Mean(100); got != 0 {
		t.Errorf("mean at zero elapsed = %v, want 0", got)
	}
	if got := g.Mean(50); got != 0 {
		t.Errorf("mean before the window start = %v, want 0", got)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var g TimeWeighted
	g.Set(0, 1)
	g.Set(10, 3)
	// [0,10) at 1, [10,20) at 3 -> mean 2.
	if got := g.Mean(20); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("backwards sample did not panic")
		}
	}()
	var g TimeWeighted
	g.Set(sim.Time(100), 1)
	g.Set(sim.Time(99), 2)
}

func TestTimeWeightedRepeatedSampleOK(t *testing.T) {
	var g TimeWeighted
	g.Set(100, 1)
	g.Set(100, 2) // same instant is fine: zero-width interval
	if got := g.Mean(200); got != 2 {
		t.Errorf("mean = %v, want 2", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Errorf("empty histogram: n=%d mean=%v q50=%v, want zeros",
			h.N(), h.Mean(), h.Quantile(0.5))
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	var h Histogram
	h.Observe(5)
	if h.N() != 1 || h.Mean() != 5 {
		t.Fatalf("n=%d mean=%v, want 1 and 5", h.N(), h.Mean())
	}
	// 5 lands in the (4,8] bucket; every quantile reports its upper edge.
	if q := h.Quantile(0.5); q != 8 {
		t.Errorf("q50 = %v, want bucket upper edge 8", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Errorf("q100 = %v, want 8", q)
	}
}

func TestHistogramSubUnitSample(t *testing.T) {
	var h Histogram
	h.Observe(0.25)
	if q := h.Quantile(1); q != 1 {
		t.Errorf("quantile of sub-unit sample = %v, want bucket edge 1", q)
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative histogram sample did not panic")
		}
	}()
	var h Histogram
	h.Observe(-1)
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative counter increment did not panic")
		}
	}()
	var c Counter
	c.Add(-1)
}
