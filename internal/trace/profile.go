package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"ioatsim/internal/sim"
)

// Profiler attributes simulated busy time to cost-model sites. Unlike a
// wall-clock sampling profiler it is exact: every nanosecond a core
// model enqueues is added to its site at pricing time, so the report's
// self-time columns sum to the run's total simulated CPU time, and the
// memory-pricing detail explains where inside those sites the cache
// model spent it.
//
// Adds are atomic, so one Profiler can aggregate a whole sweep even when
// the points run on parallel workers; the totals are order-independent.
// It implements sim.Probe with no-op hooks purely so it can be installed
// and discovered through the same probe mechanism as the tracer and the
// invariant checker.
type Profiler struct {
	self [numSites]atomic.Int64
}

// NewProfiler returns an empty profiler.
func NewProfiler() *Profiler { return &Profiler{} }

// ProfilerEnabled returns the Profiler installed on the simulator, or
// nil.
func ProfilerEnabled(s *sim.Simulator) *Profiler {
	for _, p := range s.Probes() {
		if pf, ok := p.(*Profiler); ok {
			return pf
		}
	}
	return nil
}

// EventScheduled implements sim.Probe.
func (p *Profiler) EventScheduled(now, at sim.Time) {}

// EventDispatched implements sim.Probe.
func (p *Profiler) EventDispatched(at sim.Time) {}

// Add attributes d of simulated time to site.
func (p *Profiler) Add(site Site, d time.Duration) {
	if d != 0 {
		p.self[site].Add(int64(d))
	}
}

// Self returns the accumulated self time of one site.
func (p *Profiler) Self(site Site) time.Duration {
	return time.Duration(p.self[site].Load())
}

// CPUTotal returns the total simulated CPU time across the core-work
// sites (the memory-pricing detail group is a breakdown, not an
// addition, so it is excluded).
func (p *Profiler) CPUTotal() time.Duration {
	var total time.Duration
	for s := Site(0); s < firstDetailSite; s++ {
		total += p.Self(s)
	}
	return total
}

// siteRow is one rendered report line.
type siteRow struct {
	site Site
	d    time.Duration
}

// group collects and sorts the non-zero sites in [lo, hi).
func (p *Profiler) group(lo, hi Site) []siteRow {
	rows := make([]siteRow, 0, hi-lo)
	for s := lo; s < hi; s++ {
		if d := p.Self(s); d > 0 {
			rows = append(rows, siteRow{site: s, d: d})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].d != rows[j].d {
			return rows[i].d > rows[j].d
		}
		return rows[i].site < rows[j].site
	})
	return rows
}

// Report renders the sorted self-time table: first the CPU sites (whose
// percentages sum to 100% of simulated busy time), then the
// memory-pricing detail that breaks the copy/header work down by cache
// behaviour.
func (p *Profiler) Report() string {
	var b strings.Builder
	total := p.CPUTotal()
	fmt.Fprintf(&b, "simulated-CPU profile: %.3f ms busy\n", float64(total)/1e6)
	fmt.Fprintf(&b, "%-15s %12s %7s\n", "site", "self(ms)", "cpu%")
	for _, r := range p.group(0, firstDetailSite) {
		pctOf := 0.0
		if total > 0 {
			pctOf = 100 * float64(r.d) / float64(total)
		}
		fmt.Fprintf(&b, "%-15s %12.3f %6.1f%%\n", r.site.String(), float64(r.d)/1e6, pctOf)
	}
	detail := p.group(firstDetailSite, numSites)
	if len(detail) > 0 {
		fmt.Fprintf(&b, "memory-pricing detail (inside the sites above):\n")
		for _, r := range detail {
			pctOf := 0.0
			if total > 0 {
				pctOf = 100 * float64(r.d) / float64(total)
			}
			fmt.Fprintf(&b, "%-15s %12.3f %6.1f%%\n", r.site.String(), float64(r.d)/1e6, pctOf)
		}
	}
	return b.String()
}
