// Package trace is the simulator's observability layer: a typed event
// tracer and a simulated-CPU profiler that the device models drive
// through the same probe-style hooks as the invariant checker
// (internal/check).
//
// The Tracer records spans (core run slices, link occupancy, DMA
// transfers) and instants (NIC arrivals, TCP segment/deliver events,
// cache-miss bursts, process wake-ups) into a preallocated ring of
// fixed-size records, and exports Chrome trace-event JSON that loads
// directly into chrome://tracing or Perfetto. Each simulated node is one
// trace "process" (pid); its cores and devices are threads (tids), so
// the receive-path story — interrupt, softirq slice, copy or DMA
// transfer, reader wake-up — reads core by core on a shared time axis.
//
// The Profiler attributes simulated busy time to cost-model sites
// (softirq protocol work, copy-in-cache vs copy-miss, DMA descriptor
// posts, context switches), giving every CPU-utilization figure a
// flat self-time breakdown.
//
// Both are installed per simulator via sim.WithProbe (host wires whole
// clusters); devices discover them with Enabled/ProfilerEnabled and keep
// the resulting *Obs pointer. When disabled, every instrumented site
// costs exactly one nil comparison, so the benchmark configurations stay
// on the allocation-free fast path and golden output is byte-identical.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"time"

	"ioatsim/internal/sim"
)

// Site identifies an instrumented cost-model site. The first group is
// CPU-core work (every simulated busy nanosecond is tagged with one of
// them); the second is instant-only trace markers; the third is the
// memory-pricing detail the profiler reports as a breakdown within the
// CPU sites.
type Site uint8

const (
	// CPU-core sites: all work enqueued on a core carries one of these.
	SiteOther      Site = iota // untagged kernel work (syscalls, handshakes)
	SiteApp                    // application-level processing (Exec default)
	SiteSoftirq                // NIC interrupt + per-frame protocol work
	SiteTxSend                 // send syscall, user->kernel copy, segmentation
	SiteRecvCopy               // recv syscall + kernel->user CPU copy
	SiteCtxSwitch              // thread wake-up / context-switch cost
	SiteDMASubmit              // copy-engine descriptor post
	SitePin                    // page pinning for engine-addressable buffers
	SiteTxComplete             // transmit-completion interrupt work
	SiteAckProc                // ACK processing on the sender

	// Instant-only trace markers (never profiled).
	SiteNICRx      // chunk finished softirq-side placement
	SiteTCPSegment // transport handed one segment group to the fabric
	SiteTCPDeliver // transport queued one received chunk
	SiteDMAXfer    // engine transfer span (start..complete)
	SiteLinkChunk  // wire occupancy span of one chunk
	SiteMissBurst  // one priced operation missed many lines at once
	SiteProcRun    // process run slice (scheduler hand-off)
	SiteLinkDrop   // fault plane ate a chunk on the wire
	SiteNICDrop    // receive ring overflowed, chunk dropped at the NIC
	SiteTCPRetx    // transport retransmitted unacked segments
	SiteTCPRTO     // retransmission timer fired (arg: consecutive count)
	SiteTCPDiscard // receiver discarded an out-of-order or duplicate chunk

	// Memory-pricing detail (profiler only): how the copy/header work
	// inside the CPU sites splits between cache hits and DRAM.
	SiteCopyHit    // streaming copy lines served from cache
	SiteCopyMiss   // streaming copy lines from DRAM
	SiteHeaderHit  // header/connection-state lines served from cache
	SiteHeaderMiss // header/connection-state lines from DRAM
	SiteEvict      // direct-cache-placement pollution penalty

	numSites
)

var siteNames = [numSites]string{
	"other", "app", "softirq", "tx-send", "recv-copy", "ctx-switch",
	"dma-submit", "page-pin", "tx-complete", "ack-proc",
	"nic-rx", "tcp-segment", "tcp-deliver", "dma-xfer", "link-chunk",
	"miss-burst", "proc-run",
	"link-drop", "nic-drop", "tcp-retx", "tcp-rto", "tcp-discard",
	"copy-in-cache", "copy-miss", "header-in-cache", "header-miss",
	"dca-evict",
}

// String returns the site's stable report/trace name.
func (s Site) String() string {
	if int(s) < len(siteNames) {
		return siteNames[s]
	}
	return fmt.Sprintf("site%d", int(s))
}

// firstDetailSite splits the profiler's two report groups.
const firstDetailSite = SiteCopyHit

// Track (tid) layout within one node's pid. Cores occupy tids
// [1, TidNIC); device tracks follow.
const (
	TidNIC      = int32(40)
	TidDMA      = int32(41)
	TidMem      = int32(42)
	TidTCP      = int32(43)
	TidLinkBase = int32(48) // + port index
)

// TidCore returns the track id of core i.
func TidCore(i int) int32 { return int32(i) + 1 }

// trackName renders a tid as a human-readable thread name.
func trackName(pid, tid int32) string {
	if pid == 0 {
		return "procs"
	}
	switch {
	case tid >= 1 && tid < TidNIC:
		return fmt.Sprintf("core%d", tid-1)
	case tid == TidNIC:
		return "nic"
	case tid == TidDMA:
		return "dma"
	case tid == TidMem:
		return "mem"
	case tid == TidTCP:
		return "tcp"
	case tid >= TidLinkBase:
		return fmt.Sprintf("link%d", tid-TidLinkBase)
	}
	return fmt.Sprintf("t%d", tid)
}

// kind discriminates ring records.
type kind uint8

const (
	kindSpan kind = iota
	kindInstant
)

// record is one ring entry: a complete span or an instant, pinned to a
// (pid, tid) track. Str overrides the site name when non-empty (process
// run slices carry the process name).
type record struct {
	start sim.Time
	dur   time.Duration
	arg   int64
	str   string
	pid   int32
	tid   int32
	site  Site
	kind  kind
}

// DefaultCapacity is the ring size New(0) picks: large enough for tens
// of milliseconds of fully-loaded Testbed-1 traffic, small enough to
// preallocate instantly.
const DefaultCapacity = 1 << 19

// Tracer records typed observability events into a fixed-capacity ring.
// When the ring wraps, the oldest records are overwritten and counted as
// dropped — a trace always holds the most recent window.
//
// A Tracer implements sim.Probe (event counters) and sim.ProcProbe
// (process run slices), so it installs with sim.WithProbe and is
// discovered by devices via Enabled. It is not safe for concurrent use
// from multiple simulators; trace one run at a time (the benchmark
// driver forces sequential mode when tracing).
type Tracer struct {
	recs    []record
	next    int
	full    bool
	dropped uint64

	nodes []string // pid-1 -> node name

	scheduled  uint64
	dispatched uint64
}

// New returns a tracer with the given ring capacity in records
// (DefaultCapacity if n <= 0).
func New(n int) *Tracer {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Tracer{recs: make([]record, n)}
}

// Enabled returns the Tracer installed on the simulator, or nil.
func Enabled(s *sim.Simulator) *Tracer {
	for _, p := range s.Probes() {
		if t, ok := p.(*Tracer); ok {
			return t
		}
	}
	return nil
}

// RegisterNode assigns the next trace pid to a node. Pids start at 1;
// pid 0 is the simulator's own process track.
func (t *Tracer) RegisterNode(name string) int32 {
	t.nodes = append(t.nodes, name)
	return int32(len(t.nodes))
}

// EventScheduled implements sim.Probe.
func (t *Tracer) EventScheduled(now, at sim.Time) { t.scheduled++ }

// EventDispatched implements sim.Probe.
func (t *Tracer) EventDispatched(at sim.Time) { t.dispatched++ }

// ProcRun implements sim.ProcProbe: one instant per scheduler hand-off
// to a simulation process, on the shared pid-0 track.
func (t *Tracer) ProcRun(name string, at sim.Time) {
	t.rec(record{start: at, str: name, pid: 0, tid: 1, site: SiteProcRun, kind: kindInstant})
}

// Span records a completed or scheduled occupancy interval on a track.
func (t *Tracer) Span(pid, tid int32, site Site, start sim.Time, dur time.Duration, arg int64) {
	t.rec(record{start: start, dur: dur, arg: arg, pid: pid, tid: tid, site: site, kind: kindSpan})
}

// Instant records a point event on a track.
func (t *Tracer) Instant(pid, tid int32, site Site, at sim.Time, arg int64) {
	t.rec(record{start: at, arg: arg, pid: pid, tid: tid, site: site, kind: kindInstant})
}

// rec appends one record, overwriting the oldest when the ring is full.
func (t *Tracer) rec(r record) {
	if t.full {
		t.dropped++
	}
	t.recs[t.next] = r
	t.next++
	if t.next == len(t.recs) {
		t.next = 0
		t.full = true
	}
}

// Len reports how many records the ring currently holds.
func (t *Tracer) Len() int {
	if t.full {
		return len(t.recs)
	}
	return t.next
}

// Dropped reports how many records were overwritten after the ring
// filled.
func (t *Tracer) Dropped() uint64 { return t.dropped }

// Events reports (scheduled, dispatched) engine event counts observed
// through the probe hooks.
func (t *Tracer) Events() (scheduled, dispatched uint64) {
	return t.scheduled, t.dispatched
}

// ordered visits the ring's records oldest first.
func (t *Tracer) ordered(fn func(*record)) {
	if t.full {
		for i := t.next; i < len(t.recs); i++ {
			fn(&t.recs[i])
		}
	}
	for i := 0; i < t.next; i++ {
		fn(&t.recs[i])
	}
}

// WriteJSON exports the ring as Chrome trace-event JSON (the
// "JSON Array Format" with object wrapper), loadable by chrome://tracing
// and Perfetto. Timestamps are microseconds of virtual time; durations
// keep nanosecond precision as fractional microseconds.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"records\":%d,\"dropped\":%d},\"traceEvents\":[",
		t.Len(), t.dropped)
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteString("\n")
	}

	// Process metadata: pid 0 is the simulator's process-scheduling
	// track; each registered node follows.
	meta := func(pid int32, name string) {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","name":"process_name","pid":%d,"tid":0,"args":{"name":%q}}`, pid, name)
	}
	meta(0, "sim")
	for i, name := range t.nodes {
		meta(int32(i+1), fmt.Sprintf("%s#%d", name, i+1))
	}

	// Thread metadata for every (pid, tid) track that actually recorded.
	type track struct{ pid, tid int32 }
	seen := map[track]bool{}
	t.ordered(func(r *record) { seen[track{r.pid, r.tid}] = true })
	tracks := make([]track, 0, len(seen))
	//ioatlint:allow simdeterminism — keys are collected then sorted below; the range order never escapes
	for tr := range seen {
		tracks = append(tracks, tr)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, tr := range tracks {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","name":"thread_name","pid":%d,"tid":%d,"args":{"name":%q}}`,
			tr.pid, tr.tid, trackName(tr.pid, tr.tid))
	}

	t.ordered(func(r *record) {
		name := r.str
		if name == "" {
			name = r.site.String()
		}
		ts := float64(r.start) / 1e3
		sep()
		switch r.kind {
		case kindSpan:
			fmt.Fprintf(bw, `{"ph":"X","name":%q,"pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"v":%d}}`,
				name, r.pid, r.tid, ts, float64(r.dur)/1e3, r.arg)
		default:
			fmt.Fprintf(bw, `{"ph":"i","s":"t","name":%q,"pid":%d,"tid":%d,"ts":%.3f,"args":{"v":%d}}`,
				name, r.pid, r.tid, ts, r.arg)
		}
	})
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// Obs bundles the per-node observability sinks one device holds: the
// tracer, the profiler, the node's trace pid and the owning simulator's
// clock. Devices keep a single *Obs pointer, nil when observability is
// off, so every instrumented site costs one nil comparison when
// disabled.
type Obs struct {
	S   *sim.Simulator
	T   *Tracer
	P   *Profiler
	Pid int32
}

// NewObs discovers the tracer and profiler installed on the simulator
// and registers the node with the tracer. It returns nil when neither is
// installed, which is the signal devices use to skip instrumentation
// entirely.
func NewObs(s *sim.Simulator, node string) *Obs {
	t := Enabled(s)
	p := ProfilerEnabled(s)
	if t == nil && p == nil {
		return nil
	}
	o := &Obs{S: s, T: t, P: p}
	if t != nil {
		o.Pid = t.RegisterNode(node)
	}
	return o
}

// Span records a tracer span on one of this node's tracks (no-op
// without a tracer).
func (o *Obs) Span(tid int32, site Site, start sim.Time, dur time.Duration, arg int64) {
	if o.T != nil {
		o.T.Span(o.Pid, tid, site, start, dur, arg)
	}
}

// Instant records a tracer instant at the current virtual time.
func (o *Obs) Instant(tid int32, site Site, arg int64) {
	if o.T != nil {
		o.T.Instant(o.Pid, tid, site, o.S.Now(), arg)
	}
}

// Cost attributes d of simulated time to a profiler site (no-op without
// a profiler).
func (o *Obs) Cost(site Site, d time.Duration) {
	if o.P != nil {
		o.P.Add(site, d)
	}
}
