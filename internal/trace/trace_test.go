package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ioatsim/internal/sim"
)

func TestSiteNamesComplete(t *testing.T) {
	for s := Site(0); s < numSites; s++ {
		if s.String() == "" || strings.HasPrefix(s.String(), "site") {
			t.Errorf("site %d has no name", s)
		}
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	tr := New(4)
	for i := 0; i < 7; i++ {
		tr.Instant(1, 1, SiteNICRx, sim.Time(i), int64(i))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	var args []int64
	tr.ordered(func(r *record) { args = append(args, r.arg) })
	for i, a := range args {
		if want := int64(i + 3); a != want {
			t.Fatalf("record %d: arg %d, want %d (oldest records must be dropped)", i, a, want)
		}
	}
}

func TestEnabledDiscovery(t *testing.T) {
	tr := New(8)
	pf := NewProfiler()
	s := sim.New(sim.WithProbe(tr), sim.WithProbe(pf))
	if Enabled(s) != tr {
		t.Fatal("Enabled did not find the tracer among multiple probes")
	}
	if ProfilerEnabled(s) != pf {
		t.Fatal("ProfilerEnabled did not find the profiler among multiple probes")
	}
	if Enabled(sim.New()) != nil || ProfilerEnabled(sim.New()) != nil {
		t.Fatal("discovery on a bare simulator must return nil")
	}
}

func TestObsNilWithoutSinks(t *testing.T) {
	if o := NewObs(sim.New(), "n"); o != nil {
		t.Fatalf("NewObs on a bare simulator = %+v, want nil", o)
	}
}

func TestProcRunRecorded(t *testing.T) {
	tr := New(16)
	s := sim.New(sim.WithProbe(tr))
	s.Spawn("worker", func(p *sim.Proc) { p.Sleep(time.Microsecond) })
	s.Run()
	found := 0
	tr.ordered(func(r *record) {
		if r.site == SiteProcRun && r.str == "worker" {
			found++
		}
	})
	if found < 2 { // spawn + sleep wake-up
		t.Fatalf("recorded %d proc-run instants for worker, want >= 2", found)
	}
}

func TestWriteJSONValid(t *testing.T) {
	tr := New(16)
	pid := tr.RegisterNode("node1")
	tr.Span(pid, TidCore(0), SiteSoftirq, 1000, 500*time.Nanosecond, 7)
	tr.Instant(pid, TidNIC, SiteNICRx, 2000, 1500)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	// 1 process meta for sim + 1 for node1, 2 thread metas, 2 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("got %d events, want 6:\n%s", len(doc.TraceEvents), buf.String())
	}
}

func TestProfilerReport(t *testing.T) {
	p := NewProfiler()
	p.Add(SiteSoftirq, 3*time.Millisecond)
	p.Add(SiteRecvCopy, time.Millisecond)
	p.Add(SiteCopyMiss, 600*time.Microsecond)
	if got := p.CPUTotal(); got != 4*time.Millisecond {
		t.Fatalf("CPUTotal = %v, want 4ms (detail sites must not add)", got)
	}
	rep := p.Report()
	iSoft := strings.Index(rep, "softirq")
	iCopy := strings.Index(rep, "recv-copy")
	iDetail := strings.Index(rep, "copy-miss")
	if iSoft < 0 || iCopy < 0 || iDetail < 0 {
		t.Fatalf("report missing sites:\n%s", rep)
	}
	if !(iSoft < iCopy && iCopy < iDetail) {
		t.Fatalf("report not sorted (softirq, recv-copy, then detail):\n%s", rep)
	}
}
