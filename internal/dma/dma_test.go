package dma

import (
	"math"
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
)

func newEngine() (*sim.Simulator, *mem.Model, *Engine) {
	s := sim.New()
	p := cost.Default()
	m := mem.NewModel(p)
	return s, m, New(s, p, m)
}

func TestTransferTiming(t *testing.T) {
	s, m, e := newEngine()
	src := m.Space.Alloc(64*cost.KB, 0)
	dst := m.Space.Alloc(64*cost.KB, 0)
	done := e.Submit(src.Addr, dst.Addr, 64*cost.KB)
	var doneAt sim.Time = -1
	s.Spawn("w", func(p *sim.Proc) {
		done.Wait(p)
		doneAt = p.Now()
	})
	s.Run()
	want := e.TransferTime(64 * cost.KB)
	if doneAt != sim.Time(want) {
		t.Fatalf("doneAt = %v, want %v", doneAt, want)
	}
	// 64K at 2.6 GB/s is ~25.2 us.
	if want < 23*time.Microsecond || want > 28*time.Microsecond {
		t.Fatalf("64K transfer = %v, want ~25us", want)
	}
}

func TestEngineSerializes(t *testing.T) {
	s, m, e := newEngine()
	buf := m.Space.Alloc(1*cost.MB, 0)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		done := e.Submit(buf.Addr, buf.Addr+512*1024, 64*cost.KB)
		s.Spawn("w", func(p *sim.Proc) {
			done.Wait(p)
			ends = append(ends, p.Now())
		})
	}
	s.Run()
	one := sim.Time(e.TransferTime(64 * cost.KB))
	if len(ends) != 3 || ends[1] != 2*one || ends[2] != 3*one {
		t.Fatalf("ends = %v, want multiples of %v", ends, one)
	}
}

func TestSetupCostScalesWithPages(t *testing.T) {
	_, _, e := newEngine()
	small := e.SetupCost(1 * cost.KB)
	big := e.SetupCost(64 * cost.KB)
	if big <= small {
		t.Fatalf("setup cost not page-scaled: %v vs %v", small, big)
	}
	p := cost.Default()
	want := p.DMAStartup + 16*p.DMAPerPage
	if big != want {
		t.Fatalf("SetupCost(64K) = %v, want %v", big, want)
	}
}

func TestSetupMuchCheaperThanCPUCopy(t *testing.T) {
	// The paper's Fig. 6 point: even when data is cached, the DMA
	// startup overhead is below the CPU copy time for moderate sizes.
	p := cost.Default()
	_, _, e := newEngine()
	cpuCopyCached := time.Duration(2*64*cost.KB/p.CacheLine) * p.StreamHit
	if e.SetupCost(64*cost.KB) >= cpuCopyCached {
		t.Fatalf("setup %v not below cached CPU copy %v",
			e.SetupCost(64*cost.KB), cpuCopyCached)
	}
}

func TestOverlapIncreasesWithSize(t *testing.T) {
	// Overlap = engine time / (setup + engine time); Fig. 6 shows it
	// rising to ~93% at 64K.
	_, _, e := newEngine()
	overlap := func(n int) float64 {
		xfer := e.TransferTime(n).Seconds()
		total := (e.SetupCost(n) + e.TransferTime(n)).Seconds()
		return xfer / total
	}
	if overlap(64*cost.KB) <= overlap(4*cost.KB) {
		t.Fatal("overlap does not increase with size")
	}
	got := overlap(64 * cost.KB)
	if math.Abs(got-0.93) > 0.04 {
		t.Fatalf("overlap(64K) = %.3f, want ~0.93", got)
	}
}

func TestCompletionInvalidatesDst(t *testing.T) {
	s, m, e := newEngine()
	src := m.Space.Alloc(8*cost.KB, 0)
	dst := m.Space.Alloc(8*cost.KB, 0)
	m.TouchCost(dst.Addr, dst.Size) // dst warm in cache
	if m.Cache.Resident(dst.Addr, dst.Size) == 0 {
		t.Fatal("warm-up failed")
	}
	e.Submit(src.Addr, dst.Addr, 8*cost.KB)
	s.Run()
	if got := m.Cache.Resident(dst.Addr, dst.Size); got != 0 {
		t.Fatalf("dst still cached after DMA write: %d lines", got)
	}
}

func TestPinCost(t *testing.T) {
	_, _, e := newEngine()
	p := cost.Default()
	if got := e.PinCost(1 * cost.MB); got != 256*p.PinPerPage {
		t.Fatalf("PinCost(1M) = %v, want %v", got, 256*p.PinPerPage)
	}
}

func TestQueueDelay(t *testing.T) {
	s, m, e := newEngine()
	buf := m.Space.Alloc(256*cost.KB, 0)
	e.Submit(buf.Addr, buf.Addr+128*1024, 64*cost.KB)
	if e.QueueDelay() != e.TransferTime(64*cost.KB) {
		t.Fatalf("queue delay = %v", e.QueueDelay())
	}
	s.Run()
	if e.QueueDelay() != 0 {
		t.Fatalf("queue delay after drain = %v", e.QueueDelay())
	}
}

func TestUtilization(t *testing.T) {
	s, m, e := newEngine()
	buf := m.Space.Alloc(256*cost.KB, 0)
	e.Submit(buf.Addr, buf.Addr+128*1024, 64*cost.KB)
	xfer := e.TransferTime(64 * cost.KB)
	s.Schedule(2*xfer, func() {
		if u := e.Utilization(); math.Abs(u-0.5) > 1e-9 {
			t.Errorf("utilization = %v, want 0.5", u)
		}
	})
	s.Run()
	if e.Transfers != 1 || e.BytesMoved != 64*cost.KB {
		t.Fatalf("stats: %d transfers, %d bytes", e.Transfers, e.BytesMoved)
	}
}
