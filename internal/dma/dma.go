// Package dma models the I/OAT asynchronous copy engine: a per-node
// device that moves memory at its own bandwidth while the CPU does other
// work. The CPU pays only a per-transfer setup cost (descriptor writes,
// one per physical page, plus a doorbell); the bytes never pass through
// the CPU cache, though destination lines must be invalidated to stay
// coherent (paper §2.2.2).
package dma

import (
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
	"ioatsim/internal/trace"
)

// Engine is one node's copy engine. Transfers are executed in submission
// order at the engine's bandwidth.
type Engine struct {
	S   *sim.Simulator
	P   *cost.Params
	Mem *mem.Model

	nextFree sim.Time

	// Transfers and BytesMoved count completed work for reporting.
	Transfers  int64
	BytesMoved int64
	busy       time.Duration
	markAt     sim.Time
	markBusy   time.Duration

	// Free lists for in-flight transfer records and retired completions,
	// so a steady-state copy stream allocates nothing per Submit.
	xferFree []*xfer
	doneFree []*sim.Completion

	chk *check.Checker
	obs *trace.Obs
}

// SetObs attaches the owning node's observability sinks; each transfer
// then records its engine-occupancy span on the node's dma track. (The
// CPU-side setup cost is charged — and attributed — by the caller.)
func (e *Engine) SetObs(o *trace.Obs) { e.obs = o }

// xfer carries one in-flight transfer between Submit and its completion
// event, pre-bound so no per-transfer closure is needed.
type xfer struct {
	e    *Engine
	dst  mem.Addr
	n    int
	done *sim.Completion
}

// New returns an idle engine.
func New(s *sim.Simulator, p *cost.Params, m *mem.Model) *Engine {
	return &Engine{S: s, P: p, Mem: m, chk: check.Enabled(s)}
}

// SetupCost returns the CPU time to program one n-byte transfer: a fixed
// startup plus one descriptor per spanned page (physical pages are
// discontiguous, so a transfer cannot span them in one descriptor).
func (e *Engine) SetupCost(n int) time.Duration {
	return e.P.DMAStartup + time.Duration(e.P.Pages(n))*e.P.DMAPerPage
}

// PinCost returns the CPU time to pin the pages of an n-byte user buffer
// before the engine may address it (paper §7's caveat: if pinning costs
// exceed the copy, the engine stops paying off).
func (e *Engine) PinCost(n int) time.Duration {
	return time.Duration(e.P.Pages(n)) * e.P.PinPerPage
}

// TransferTime returns how long the engine itself needs for n bytes.
func (e *Engine) TransferTime(n int) time.Duration {
	return time.Duration(int64(n) * int64(time.Second) / e.P.DMABytesPerSec)
}

// Submit queues a copy of n bytes from src to dst and returns a
// completion that fires when the data is in place. The caller is
// responsible for charging SetupCost (and PinCost where applicable) to a
// CPU core; Submit itself only occupies the engine.
//
// Destination cache lines are invalidated at completion: the engine wrote
// memory behind the cache's back.
//
//ioat:hotpath
func (e *Engine) Submit(src, dst mem.Addr, n int) *sim.Completion {
	if n < 0 {
		panic("dma: negative transfer")
	}
	var done *sim.Completion
	if k := len(e.doneFree); k > 0 {
		done = e.doneFree[k-1]
		e.doneFree = e.doneFree[:k-1]
	} else {
		//ioatlint:allow hotpathalloc — completion free-list refill: amortized to zero by Recycle
		done = e.S.NewCompletion()
	}
	now := e.S.Now()
	start := e.nextFree
	if start < now {
		start = now
	}
	ser := e.TransferTime(n)
	end := start.Add(ser)
	if e.chk != nil {
		e.auditDescriptors(src, n)
		e.chk.Assert(end >= e.nextFree && end >= now,
			"dma", "transfer finishing %v behind the engine queue (nextFree %v)", end, e.nextFree)
		e.chk.Ledger("dma:bytes").In(int64(n))
	}
	e.nextFree = end
	e.busy += ser
	if e.obs != nil && n > 0 {
		e.obs.Span(trace.TidDMA, trace.SiteDMAXfer, start, ser, int64(n))
	}
	var x *xfer
	if k := len(e.xferFree); k > 0 {
		x = e.xferFree[k-1]
		e.xferFree = e.xferFree[:k-1]
	} else {
		//ioatlint:allow hotpathalloc — xfer free-list refill: xferDone recycles every descriptor
		x = &xfer{e: e}
	}
	x.dst, x.n, x.done = dst, n, done
	e.S.AtArg(end, xferDone, x)
	return done
}

// xferDone is the pre-bound transfer-completion event.
//
//ioat:hotpath
func xferDone(a any) {
	x := a.(*xfer)
	e := x.e
	e.Transfers++
	e.BytesMoved += int64(x.n)
	if e.chk != nil {
		e.chk.Ledger("dma:bytes").Out(int64(x.n))
	}
	if e.Mem != nil {
		e.Mem.DMAWrite(x.dst, x.n)
	}
	done := x.done
	x.done = nil
	e.xferFree = append(e.xferFree, x)
	done.Complete()
}

// Recycle returns a fired completion handed out by Submit to the engine's
// pool. Callers may recycle only after the completion has fired and its
// waiter (if any) has resumed — i.e. after Wait has returned.
//
//ioat:hotpath
func (e *Engine) Recycle(done *sim.Completion) {
	done.Reset()
	e.doneFree = append(e.doneFree, done)
}

// auditDescriptors walks the descriptor chain the engine would program
// for an n-byte transfer from src — one descriptor per spanned source
// page, split at page boundaries — and verifies that the descriptor
// byte counts sum exactly to the transfer length and that the chain is
// no longer than the SetupCost model charges for.
func (e *Engine) auditDescriptors(src mem.Addr, n int) {
	if n == 0 {
		return
	}
	page := e.P.PageSize
	descs, sum := 0, 0
	for off := 0; off < n; descs++ {
		span := page - int((uint64(src)+uint64(off))%uint64(page))
		if span > n-off {
			span = n - off
		}
		sum += span
		off += span
	}
	e.chk.Assert(sum == n,
		"dma", "descriptor chain covers %d bytes of a %d-byte transfer", sum, n)
	// An unaligned start adds at most one descriptor over the page count
	// SetupCost charges for.
	e.chk.Assert(descs <= e.P.Pages(n)+1,
		"dma", "%d-byte transfer needs %d descriptors, model charges for %d pages",
		n, descs, e.P.Pages(n))
}

// QueueDelay reports how long a transfer submitted now would wait before
// the engine starts on it.
func (e *Engine) QueueDelay() time.Duration {
	now := e.S.Now()
	if e.nextFree <= now {
		return 0
	}
	return e.nextFree.Sub(now)
}

// ResetWindow starts a new utilization measurement window.
func (e *Engine) ResetWindow() {
	e.markAt = e.S.Now()
	e.markBusy = e.busyUpTo(e.markAt)
}

func (e *Engine) busyUpTo(t sim.Time) time.Duration {
	b := e.busy
	if e.nextFree > t {
		b -= e.nextFree.Sub(t)
	}
	return b
}

// Utilization returns the engine's busy fraction since the last
// ResetWindow.
func (e *Engine) Utilization() float64 {
	now := e.S.Now()
	if now <= e.markAt {
		return 0
	}
	busy := e.busyUpTo(now) - e.markBusy
	u := busy.Seconds() / now.Sub(e.markAt).Seconds()
	if e.chk != nil {
		e.chk.InRange("dma", "engine utilization", u, 0, 1+1e-9)
	}
	return u
}
