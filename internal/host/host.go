// Package host assembles complete simulated machines — cores, cache,
// memory, DMA engine, NIC and transport stack — and builds the paper's
// testbeds:
//
//   - Testbed 1: two SuperMicro X7DB8+ nodes (dual-core dual Xeon
//     3.46 GHz, 2 MB L2) with six 1-GbE ports each, one VLAN per port
//     pair (paper §4);
//   - Testbed 2: a cluster of client nodes used purely as request
//     generators (paper §4, §5).
package host

import (
	"fmt"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/ioat"
	"ioatsim/internal/mem"
	"ioatsim/internal/nic"
	"ioatsim/internal/rng"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

// Node is one complete machine.
type Node struct {
	Name   string
	S      *sim.Simulator
	P      *cost.Params
	Feat   ioat.Features
	CPU    *cpu.CPU
	Mem    *mem.Model
	DMA    *dma.Engine
	NIC    *nic.NIC
	Stack  *tcp.Stack
	Copier *ioat.Copier
}

// NewNode builds a machine with nports NIC ports.
func NewNode(s *sim.Simulator, p *cost.Params, feat ioat.Features, name string, nports int) *Node {
	m := mem.NewModel(p)
	m.SetChecker(check.Enabled(s))
	c := cpu.New(s, p)
	e := dma.New(s, p, m)
	n := nic.New(s, p, c, m, e, feat, name, nports)
	st := tcp.NewStack(s, p, c, m, e, n, feat, name)
	return &Node{
		Name: name, S: s, P: p, Feat: feat,
		CPU: c, Mem: m, DMA: e, NIC: n, Stack: st,
		Copier: ioat.NewCopier(c, e, m),
	}
}

// Buf allocates a user buffer in the node's address space.
func (n *Node) Buf(size int) mem.Buffer { return n.Mem.Space.Alloc(size, 0) }

// ResetMeters starts fresh CPU and DMA utilization windows, discarding
// warm-up activity.
func (n *Node) ResetMeters() {
	n.CPU.ResetWindow()
	n.DMA.ResetWindow()
}

// Cluster is a set of nodes sharing one simulator and parameter set.
type Cluster struct {
	S      *sim.Simulator
	P      *cost.Params
	Rand   *rng.Rand
	Nodes  []*Node
	byName map[string]*Node

	// Check is the invariant checker installed by WithCheck, nil otherwise.
	Check *check.Checker
}

// Option configures a Cluster under construction.
type Option func(*Cluster)

// WithCheck installs a runtime invariant checker on the cluster's
// simulator: every device built on it self-registers its probes, and
// Verify reports the verdict at the end of the run.
func WithCheck() Option {
	return func(c *Cluster) { c.Check = check.New() }
}

// NewCluster returns an empty cluster with a deterministic RNG. The
// parameter set is validated up front so a bad sweep point fails here,
// naming the offending field, instead of misbehaving inside a device
// model.
func NewCluster(p *cost.Params, seed uint64, opts ...Option) *Cluster {
	if err := p.Validate(); err != nil {
		panic("host: " + err.Error())
	}
	c := &Cluster{
		P: p, Rand: rng.New(seed),
		byName: make(map[string]*Node),
	}
	for _, o := range opts {
		o(c)
	}
	if c.Check != nil {
		c.S = sim.New(sim.WithProbe(c.Check))
	} else {
		c.S = sim.New()
	}
	return c
}

// Verify finalizes the invariant checker (running its end-of-run audits)
// and returns the first violation, or nil if the run was clean or
// unchecked.
func (c *Cluster) Verify() error {
	if c.Check == nil {
		return nil
	}
	c.Check.Finish()
	return c.Check.Err()
}

// MustVerify panics on the first recorded invariant violation. Harness
// code calls it after a checked run so violations fail loudly.
func (c *Cluster) MustVerify() {
	if err := c.Verify(); err != nil {
		panic("host: invariant violation: " + err.Error())
	}
}

// Add builds and registers a node.
func (c *Cluster) Add(name string, feat ioat.Features, nports int) *Node {
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("host: duplicate node %q", name))
	}
	n := NewNode(c.S, c.P, feat, name, nports)
	c.Nodes = append(c.Nodes, n)
	c.byName[name] = n
	return n
}

// Node returns a registered node by name.
func (c *Cluster) Node(name string) *Node {
	n, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("host: unknown node %q", name))
	}
	return n
}

// ResetMeters resets every node's measurement windows.
func (c *Cluster) ResetMeters() {
	for _, n := range c.Nodes {
		n.ResetMeters()
	}
}

// Testbed1 builds the paper's two-node micro-benchmark testbed: both
// nodes run the same feature set and have six 1-GbE ports connected
// port-to-port (the paper's per-port VLANs).
func Testbed1(p *cost.Params, feat ioat.Features, seed uint64, opts ...Option) (*Cluster, *Node, *Node) {
	c := NewCluster(p, seed, opts...)
	a := c.Add("node1", feat, 6)
	b := c.Add("node2", feat, 6)
	return c, a, b
}

// AddClients adds n single-port client nodes (Testbed 2's request
// generators). Clients are conventional (non-I/OAT) machines unless feat
// says otherwise.
func (c *Cluster) AddClients(n int, feat ioat.Features) []*Node {
	clients := make([]*Node, n)
	for i := range clients {
		clients[i] = c.Add(fmt.Sprintf("client%d", i), feat, 1)
	}
	return clients
}
