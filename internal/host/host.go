// Package host assembles complete simulated machines — cores, cache,
// memory, DMA engine, NIC and transport stack — and builds the paper's
// testbeds:
//
//   - Testbed 1: two SuperMicro X7DB8+ nodes (dual-core dual Xeon
//     3.46 GHz, 2 MB L2) with six 1-GbE ports each, one VLAN per port
//     pair (paper §4);
//   - Testbed 2: a cluster of client nodes used purely as request
//     generators (paper §4, §5).
package host

import (
	"fmt"
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/fault"
	"ioatsim/internal/ioat"
	"ioatsim/internal/mem"
	"ioatsim/internal/metrics"
	"ioatsim/internal/nic"
	"ioatsim/internal/rng"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
	"ioatsim/internal/trace"
)

// Node is one complete machine.
type Node struct {
	Name   string
	S      *sim.Simulator
	P      *cost.Params
	Feat   ioat.Features
	CPU    *cpu.CPU
	Mem    *mem.Model
	DMA    *dma.Engine
	NIC    *nic.NIC
	Stack  *tcp.Stack
	Copier *ioat.Copier
}

// NewNode builds a machine with nports NIC ports.
func NewNode(s *sim.Simulator, p *cost.Params, feat ioat.Features, name string, nports int) *Node {
	m := mem.NewModel(p)
	m.SetChecker(check.Enabled(s))
	c := cpu.New(s, p)
	e := dma.New(s, p, m)
	n := nic.New(s, p, c, m, e, feat, name, nports)
	st := tcp.NewStack(s, p, c, m, e, n, feat, name)
	if o := trace.NewObs(s, name); o != nil {
		c.SetObs(o)
		m.SetObs(o)
		e.SetObs(o)
		n.SetObs(o) // also wires the ports
		st.SetObs(o)
	}
	return &Node{
		Name: name, S: s, P: p, Feat: feat,
		CPU: c, Mem: m, DMA: e, NIC: n, Stack: st,
		Copier: ioat.NewCopier(c, e, m),
	}
}

// Buf allocates a user buffer in the node's address space.
func (n *Node) Buf(size int) mem.Buffer { return n.Mem.Space.Alloc(size, 0) }

// ResetMeters starts fresh CPU and DMA utilization windows, discarding
// warm-up activity.
func (n *Node) ResetMeters() {
	n.CPU.ResetWindow()
	n.DMA.ResetWindow()
}

// Cluster is a set of nodes sharing one simulator and parameter set.
type Cluster struct {
	S      *sim.Simulator
	P      *cost.Params
	Rand   *rng.Rand
	Nodes  []*Node
	byName map[string]*Node

	// Check is the invariant checker installed by WithCheck, nil otherwise.
	Check *check.Checker

	// Fault is the fault-plan injector installed by WithFault, nil for
	// the lossless fabric. Every node added to the cluster gets its
	// hooks (link drops, NIC ring bound, CPU slowdown) and arms the
	// transport's loss recovery.
	Fault *fault.Injector

	// Obs holds the observability sinks installed by WithObservability.
	Obs Observability

	// scope is this cluster's metrics instrument scope, nil without a
	// registry.
	scope *metrics.Scope
}

// Observability bundles the optional observability sinks a cluster can
// be built with. Any subset may be set; all-nil means fully disabled
// (the zero value).
type Observability struct {
	// Trace records typed spans/instants for Chrome trace-event export.
	Trace *trace.Tracer
	// Profile attributes simulated CPU time to cost-model sites.
	Profile *trace.Profiler
	// Metrics collects sampled time-series rows.
	Metrics *metrics.Registry
	// MetricsInterval is the sampling tick (metrics.DefaultInterval when
	// zero).
	MetricsInterval time.Duration
}

// Enabled reports whether any sink is installed.
func (o Observability) Enabled() bool {
	return o.Trace != nil || o.Profile != nil || o.Metrics != nil
}

// Option configures a Cluster under construction.
type Option func(*Cluster)

// WithCheck installs a runtime invariant checker on the cluster's
// simulator: every device built on it self-registers its probes, and
// Verify reports the verdict at the end of the run.
func WithCheck() Option {
	return func(c *Cluster) { c.Check = check.New() }
}

// WithStrictCheck is WithCheck with fail-fast semantics: the first
// violated invariant panics at the exact virtual time it happens instead
// of being collected for the end-of-run verdict.
func WithStrictCheck() Option {
	return func(c *Cluster) {
		c.Check = check.New()
		c.Check.Strict = true
	}
}

// WithFault installs a fault plan: every node subsequently added gets
// per-link loss/flap state, a bounded NIC receive ring, a CPU slowdown
// factor (all as the plan directs — the zero plan is benign), and a
// transport armed for retransmission. Composes with WithCheck, whose
// conservation ledgers then audit the drop/retransmit flow end-to-end.
func WithFault(plan fault.Plan) Option {
	return func(c *Cluster) { c.Fault = fault.NewInjector(plan) }
}

// WithObservability installs the given observability sinks on the
// cluster's simulator as additional probes (composing with WithCheck).
// Sinks may be shared across sequentially-built clusters of one sweep;
// the tracer and registry are not safe for concurrently-running
// simulators.
func WithObservability(o Observability) Option {
	return func(c *Cluster) { c.Obs = o }
}

// NewCluster returns an empty cluster with a deterministic RNG. The
// parameter set is validated up front so a bad sweep point fails here,
// naming the offending field, instead of misbehaving inside a device
// model.
func NewCluster(p *cost.Params, seed uint64, opts ...Option) *Cluster {
	if err := p.Validate(); err != nil {
		panic("host: " + err.Error())
	}
	c := &Cluster{
		P: p, Rand: rng.New(seed),
		byName: make(map[string]*Node),
	}
	for _, o := range opts {
		o(c)
	}
	var simOpts []sim.Option
	if c.Check != nil {
		simOpts = append(simOpts, sim.WithProbe(c.Check))
	}
	if c.Obs.Trace != nil {
		simOpts = append(simOpts, sim.WithProbe(c.Obs.Trace))
	}
	if c.Obs.Profile != nil {
		simOpts = append(simOpts, sim.WithProbe(c.Obs.Profile))
	}
	if c.Obs.Metrics != nil {
		simOpts = append(simOpts, sim.WithProbe(c.Obs.Metrics))
	}
	if c.Fault != nil {
		if r := c.Fault.Plan().RxRingFrames; r > 0 && r < p.Frames(p.ChunkMax) {
			// A ring that cannot hold one full-size chunk would reject
			// it on every (re)transmission — an unrecoverable livelock,
			// not a fault model.
			panic(fmt.Sprintf("host: RxRingFrames %d below one %d-byte chunk (%d frames)",
				r, p.ChunkMax, p.Frames(p.ChunkMax)))
		}
	}
	c.S = sim.New(simOpts...)
	if c.Obs.Metrics != nil {
		c.scope = c.Obs.Metrics.NewScope()
		c.scope.StartSampler(c.S, c.Obs.MetricsInterval)
		registerSchedMetrics(c.scope, c.S)
	}
	return c
}

// registerSchedMetrics wires the event scheduler's own depth and
// timing-wheel activity: pending-set depth (current and high-water),
// the fullest one-tick bucket seen, and the bucket cascade rate. These
// size the scheduler for a given workload and show why dispatch stays
// O(1) as the data-center sweeps pile up tens of thousands of events.
func registerSchedMetrics(sc *metrics.Scope, s *sim.Simulator) {
	sc.GaugeFunc("sched/pending", func() float64 {
		return float64(s.Pending())
	})
	sc.GaugeFunc("sched/peak_pending", func() float64 {
		return float64(s.SchedStats().PeakPending)
	})
	sc.GaugeFunc("sched/peak_bucket", func() float64 {
		return float64(s.SchedStats().PeakBucket)
	})
	sc.CounterFunc("sched/cascades", func() float64 {
		return float64(s.SchedStats().Cascades)
	})
}

// Verify finalizes the invariant checker (running its end-of-run audits)
// and returns the first violation, or nil if the run was clean or
// unchecked.
func (c *Cluster) Verify() error {
	if c.Check == nil {
		return nil
	}
	c.Check.Finish()
	return c.Check.Err()
}

// MustVerify panics on the first recorded invariant violation. Harness
// code calls it after a checked run so violations fail loudly.
func (c *Cluster) MustVerify() {
	if err := c.Verify(); err != nil {
		panic("host: invariant violation: " + err.Error())
	}
}

// Add builds and registers a node.
func (c *Cluster) Add(name string, feat ioat.Features, nports int) *Node {
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("host: duplicate node %q", name))
	}
	n := NewNode(c.S, c.P, feat, name, nports)
	if c.Fault != nil {
		n.CPU.SetFault(c.Fault.Node(name))
		n.NIC.Fault = c.Fault.NIC(name)
		for i, pt := range n.NIC.Ports {
			pt.Fault = c.Fault.Link(name, i)
		}
		n.Stack.EnableRecovery(c.Fault.Plan())
	}
	c.Nodes = append(c.Nodes, n)
	c.byName[name] = n
	if c.scope != nil {
		registerNodeMetrics(c.scope, n)
	}
	return n
}

// registerNodeMetrics wires the per-node time series the paper's
// resource stories are told in: per-core utilization and run-queue
// depth, link and transport throughput, DMA-engine occupancy, cache hit
// ratio and interrupt rate. Cumulative device counters become rates (or
// windowed ratios) at each sampler tick, so every series is directly
// plottable against virtual time.
func registerNodeMetrics(sc *metrics.Scope, n *Node) {
	pre := n.Name + "/"
	for i := 0; i < n.CPU.NumCores(); i++ {
		i := i
		// Busy seconds are cumulative, so the sampled rate is the core's
		// busy fraction (utilization in [0, 1]) over each tick window.
		sc.CounterFunc(pre+fmt.Sprintf("cpu%d/util", i), func() float64 {
			return n.CPU.CoreBusyTotal(i).Seconds()
		})
		sc.GaugeFunc(pre+fmt.Sprintf("cpu%d/runq_us", i), func() float64 {
			return float64(n.CPU.Backlog(i)) / 1e3
		})
	}
	sc.CounterFunc(pre+"net/rx_mbps", func() float64 {
		var b int64
		for _, p := range n.NIC.Ports {
			b += p.RxWireBytes
		}
		return float64(b) * 8 / 1e6
	})
	sc.CounterFunc(pre+"net/tx_mbps", func() float64 {
		var b int64
		for _, p := range n.NIC.Ports {
			b += p.TxWireBytes
		}
		return float64(b) * 8 / 1e6
	})
	sc.GaugeFunc(pre+"dma/queue_us", func() float64 {
		return float64(n.DMA.QueueDelay()) / 1e3
	})
	sc.CounterFunc(pre+"dma/copy_mbps", func() float64 {
		return float64(n.DMA.BytesMoved) * 8 / 1e6
	})
	sc.CounterFunc(pre+"nic/interrupts", func() float64 {
		return float64(n.NIC.Interrupts)
	})
	sc.RatioFunc(pre+"cache/hit_ratio",
		func() float64 { return float64(n.Mem.Cache.Hits) },
		func() float64 { return float64(n.Mem.Cache.Hits + n.Mem.Cache.Misses) })
	sc.CounterFunc(pre+"tcp/rx_mbps", func() float64 {
		return float64(n.Stack.BytesReceived) * 8 / 1e6
	})
	n.Stack.SetMetrics(
		sc.TimeWeighted(pre+"tcp/rx_backlog_bytes"),
		sc.HistogramInstrument(pre+"tcp/seg_bytes",
			1024, 4096, 9216, 16384, 32768, 65536))
	if n.NIC.Fault != nil {
		// Fault-plane series, present only under a fault plan (the NIC
		// hook is installed exactly when the rest are).
		sc.CounterFunc(pre+"fault/link_drop_bytes", func() float64 {
			var b int64
			for _, p := range n.NIC.Ports {
				if p.Fault != nil {
					b += p.Fault.DroppedBytes
				}
			}
			return float64(b)
		})
		sc.CounterFunc(pre+"fault/nic_drop_bytes", func() float64 {
			//ioatlint:allow probeguard — this CounterFunc is only registered under a fault plan, which installs NIC.Fault before any sampling tick
			return float64(n.NIC.Fault.DroppedBytes)
		})
		sc.CounterFunc(pre+"fault/retx_bytes", func() float64 {
			return float64(n.Stack.RetransmitBytes)
		})
		sc.CounterFunc(pre+"fault/rto", func() float64 {
			return float64(n.Stack.Timeouts)
		})
		sc.CounterFunc(pre+"fault/fast_retx", func() float64 {
			return float64(n.Stack.FastRetransmits)
		})
		sc.CounterFunc(pre+"fault/rx_discard_bytes", func() float64 {
			return float64(n.Stack.RxDiscardBytes)
		})
	}
}

// Node returns a registered node by name.
func (c *Cluster) Node(name string) *Node {
	n, ok := c.byName[name]
	if !ok {
		panic(fmt.Sprintf("host: unknown node %q", name))
	}
	return n
}

// ResetMeters resets every node's measurement windows.
func (c *Cluster) ResetMeters() {
	for _, n := range c.Nodes {
		n.ResetMeters()
	}
}

// Testbed1 builds the paper's two-node micro-benchmark testbed: both
// nodes run the same feature set and have six 1-GbE ports connected
// port-to-port (the paper's per-port VLANs).
func Testbed1(p *cost.Params, feat ioat.Features, seed uint64, opts ...Option) (*Cluster, *Node, *Node) {
	c := NewCluster(p, seed, opts...)
	a := c.Add("node1", feat, 6)
	b := c.Add("node2", feat, 6)
	return c, a, b
}

// AddClients adds n single-port client nodes (Testbed 2's request
// generators). Clients are conventional (non-I/OAT) machines unless feat
// says otherwise.
func (c *Cluster) AddClients(n int, feat ioat.Features) []*Node {
	clients := make([]*Node, n)
	for i := range clients {
		clients[i] = c.Add(fmt.Sprintf("client%d", i), feat, 1)
	}
	return clients
}
