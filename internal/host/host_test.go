package host

import (
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

func TestTestbed1Shape(t *testing.T) {
	c, a, b := Testbed1(cost.Default(), ioat.Linux(), 1)
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if a.CPU.NumCores() != 4 || b.CPU.NumCores() != 4 {
		t.Fatal("Testbed 1 nodes must have 4 cores")
	}
	if len(a.NIC.Ports) != 6 || len(b.NIC.Ports) != 6 {
		t.Fatal("Testbed 1 nodes must have 6 ports")
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	c := NewCluster(cost.Default(), 1)
	c.Add("x", ioat.None(), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate node did not panic")
		}
	}()
	c.Add("x", ioat.None(), 1)
}

func TestNodeLookup(t *testing.T) {
	c := NewCluster(cost.Default(), 1)
	n := c.Add("svr", ioat.None(), 2)
	if c.Node("svr") != n {
		t.Fatal("lookup returned wrong node")
	}
}

func TestAddClients(t *testing.T) {
	c := NewCluster(cost.Default(), 1)
	clients := c.AddClients(5, ioat.None())
	if len(clients) != 5 || len(c.Nodes) != 5 {
		t.Fatal("client count wrong")
	}
	for _, cl := range clients {
		if len(cl.NIC.Ports) != 1 {
			t.Fatal("clients must have one port")
		}
	}
}

func TestEndToEndTransferAcrossCluster(t *testing.T) {
	c, a, b := Testbed1(cost.Default(), ioat.Linux(), 1)
	ca, cb := tcp.Pair(a.Stack, b.Stack, 0, 0)
	src, dst := a.Buf(64*cost.KB), b.Buf(64*cost.KB)
	var done sim.Time
	c.S.Spawn("tx", func(p *sim.Proc) { ca.Send(p, src, cost.MB) })
	c.S.Spawn("rx", func(p *sim.Proc) {
		cb.Recv(p, dst, cost.MB)
		done = p.Now()
	})
	c.S.Run()
	if done <= 0 {
		t.Fatal("transfer did not complete")
	}
	mbps := float64(cost.MB*8) / time.Duration(done).Seconds() / 1e6
	if mbps < 800 {
		t.Fatalf("goodput = %.0f Mb/s", mbps)
	}
}

func TestResetMetersClearsUtilization(t *testing.T) {
	c, a, b := Testbed1(cost.Default(), ioat.None(), 1)
	ca, cb := tcp.Pair(a.Stack, b.Stack, 0, 0)
	src, dst := a.Buf(64*cost.KB), b.Buf(64*cost.KB)
	c.S.Spawn("tx", func(p *sim.Proc) { ca.Send(p, src, cost.MB) })
	c.S.Spawn("rx", func(p *sim.Proc) { cb.Recv(p, dst, cost.MB) })
	c.S.Run()
	if b.CPU.Utilization() <= 0 {
		t.Fatal("expected nonzero utilization after transfer")
	}
	c.ResetMeters()
	c.S.Schedule(time.Millisecond, func() {})
	c.S.Run()
	if u := b.CPU.Utilization(); u != 0 {
		t.Fatalf("utilization after reset and idle = %v, want 0", u)
	}
}
