// Package cost centralizes every calibrated constant of the simulation's
// cost model. The anchors are the paper's Testbed 1 (dual-core dual Xeon
// 3.46 GHz, 2 MB L2, Intel PRO/1000 ports) and the TCP/IP packet-cost
// literature the paper cites (Clark et al.; Makineni & Iyer, HPCA-10;
// Regnier et al., IEEE Computer Nov'04). Constants were tuned so that the
// micro-benchmark endpoints of Fig. 3a and Fig. 6 match the paper; all
// other figures are left to emerge from the model.
package cost

import (
	"fmt"
	"time"
)

// Byte-size units.
const (
	KB = 1 << 10
	MB = 1 << 20
	GB = 1 << 30
)

// Params is the complete tunable cost model. Experiments copy Default()
// and adjust (socket buffer, MTU, TSO, coalescing) per scenario.
type Params struct {
	// ---- CPU & scheduling ----

	// Cores is the number of cores per node (dual-core dual Xeon).
	Cores int
	// ContextSwitch is charged each time a blocked thread is woken.
	ContextSwitch time.Duration
	// CSIndirect is the additional per-wake cost paid for every full
	// multiple of oversubscription (runnable threads beyond the core
	// count): cold caches and scheduler queueing make context switches
	// far more expensive on a loaded machine. This is what limits how
	// many concurrent threads a server sustains (paper §5.2.3).
	CSIndirect time.Duration
	// Syscall is the fixed kernel-entry cost of send/recv/accept.
	Syscall time.Duration

	// ---- Memory hierarchy ----

	// CacheSize/CacheLine/CacheWays describe the node's L2 (2 MB, 64 B,
	// 8-way), the cache whose pollution the split-header feature avoids.
	CacheSize int
	CacheLine int
	CacheWays int
	// StreamHit/StreamMiss price one cache-line access during a bulk
	// (hardware-prefetched) copy: a 64 KB in-cache memcpy lands near
	// 8 GB/s, an out-of-cache one near 1.5 GB/s, matching Fig. 6.
	StreamHit  time.Duration
	StreamMiss time.Duration
	// RandHit/RandMiss price one dependent (non-streamed) line access,
	// e.g. protocol header and connection-state reads.
	RandHit  time.Duration
	RandMiss time.Duration

	// ---- I/OAT DMA copy engine ----

	// DMABytesPerSec is the engine's copy bandwidth (~2.6 GB/s puts the
	// CPU-copy crossover at 8 KB as in Fig. 6).
	DMABytesPerSec int64
	// DMAStartup is the CPU cost to set up one transfer (descriptor
	// write + doorbell).
	DMAStartup time.Duration
	// DMAPerPage is the CPU cost per 4 KB page of a transfer: physical
	// pages are discontiguous, so each page needs its own descriptor
	// (paper §2.2.2).
	DMAPerPage time.Duration
	// PinPerPage is the CPU cost to pin one user page before the engine
	// may touch it (paper §7's caveat).
	PinPerPage time.Duration
	// DMAFrameSubmit is the per-frame CPU cost of handing one received
	// frame's payload to the copy engine (the net_dma per-skb submit).
	DMAFrameSubmit time.Duration
	// PageSize is the virtual-memory page size.
	PageSize int

	// ---- NIC & per-frame protocol costs ----

	// FrameWireOverhead is the on-wire overhead of one frame: preamble,
	// Ethernet header+FCS, inter-frame gap, IP and TCP headers.
	FrameWireOverhead int
	// HeaderBytes is the in-memory protocol header size per frame.
	HeaderBytes int
	// Intr is the cost of taking one receive interrupt.
	Intr time.Duration
	// CoalesceFrames is how many back-to-back frames one interrupt
	// covers (driver default; the Case-5 optimization raises it).
	CoalesceFrames int
	// FrameProc is the fixed per-frame driver + TCP/IP processing cost,
	// excluding the header-memory accesses priced through the cache.
	FrameProc time.Duration
	// HeaderLines is the number of header cache lines touched per frame.
	HeaderLines int
	// ConnStateLines is the number of connection-state cache lines
	// touched per frame.
	ConnStateLines int
	// BufMgmt is the per-frame kernel buffer alloc/free cost.
	BufMgmt time.Duration
	// AckProc is the sender-side cost of processing one delayed ACK
	// (the receiver acknowledges every second frame).
	AckProc time.Duration
	// TxFrame is the per-frame sender cost (segmentation + driver) when
	// the host CPU segments.
	TxFrame time.Duration
	// TSOFrame is the residual per-frame sender cost when the NIC
	// segments (TSO enabled).
	TSOFrame time.Duration
	// TxCompleteFrame is the per-frame transmit-completion cost (IRQ +
	// skb free), charged to the interrupt core.
	TxCompleteFrame time.Duration
	// RxBufSize is the size of one kernel receive buffer (slab object).
	RxBufSize int
	// HeaderRingBytes is the split-header ring size: small enough to
	// stay cache-resident, which is the point of the feature.
	HeaderRingBytes int
	// EvictPenalty is the per-line cost charged to the receive path when
	// a full-packet direct-cache placement (I/OAT without split headers)
	// evicts a valid line: the displaced line's writeback plus its
	// owner's eventual re-fetch. This is the "cache pollution" of the
	// paper's §2.2.1, priced per eviction.
	EvictPenalty time.Duration

	// ---- Sockets / transport ----

	// SockBuf is the socket buffer (flow-control window) size.
	SockBuf int
	// MTU is the maximum transmission unit (1500; Case 4 raises it).
	MTU int
	// ChunkMax is the largest burst simulated as one event.
	ChunkMax int
	// TSO reports whether transmit segmentation is offloaded.
	TSO bool

	// ---- Link fabric ----

	// PortRateBps is one port's line rate (1 Gb/s).
	PortRateBps int64
	// PropDelay is switch + propagation latency per chunk.
	PropDelay time.Duration
}

// Default returns the calibrated Testbed-1 parameter set.
func Default() *Params {
	return &Params{
		Cores:         4,
		ContextSwitch: 1200 * time.Nanosecond,
		CSIndirect:    3 * time.Microsecond,
		Syscall:       900 * time.Nanosecond,

		CacheSize:  2 * MB,
		CacheLine:  64,
		CacheWays:  8,
		StreamHit:  4 * time.Nanosecond,
		StreamMiss: 25 * time.Nanosecond,
		RandHit:    4 * time.Nanosecond,
		RandMiss:   90 * time.Nanosecond,

		DMABytesPerSec: 2600 * 1000 * 1000,
		DMAStartup:     1800 * time.Nanosecond,
		DMAPerPage:     40 * time.Nanosecond,
		PinPerPage:     150 * time.Nanosecond,
		DMAFrameSubmit: 150 * time.Nanosecond,
		PageSize:       4 * KB,

		FrameWireOverhead: 90,
		HeaderBytes:       66,
		Intr:              2200 * time.Nanosecond,
		CoalesceFrames:    4,
		FrameProc:         950 * time.Nanosecond,
		HeaderLines:       2,
		ConnStateLines:    2,
		BufMgmt:           300 * time.Nanosecond,
		AckProc:           300 * time.Nanosecond,
		TxFrame:           650 * time.Nanosecond,
		TSOFrame:          80 * time.Nanosecond,
		TxCompleteFrame:   500 * time.Nanosecond,
		RxBufSize:         2 * KB,
		HeaderRingBytes:   64 * KB,
		EvictPenalty:      70 * time.Nanosecond,

		SockBuf:  256 * KB,
		MTU:      1500,
		ChunkMax: 64 * KB,
		TSO:      false,

		PortRateBps: 1000 * 1000 * 1000,
		PropDelay:   2 * time.Microsecond,
	}
}

// Validate rejects parameter sets whose geometry would make a component
// misbehave far from the mistake: a non-positive RxBufSize sends the NIC's
// buffer sizing into an infinite doubling loop, a zero CoalesceFrames
// divides by zero deep in interrupt pricing, a bad cache geometry panics
// inside mem.NewCache with no hint of which experiment supplied it.
// Runners call it once at cluster construction so a bad sweep point fails
// immediately, by name.
func (p *Params) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("cost: invalid params: "+format, args...)
	}
	if p.Cores <= 0 {
		return fail("Cores = %d, need at least one core", p.Cores)
	}
	if p.CacheSize <= 0 || p.CacheLine <= 0 || p.CacheWays <= 0 {
		return fail("cache geometry %d bytes / %d-byte lines / %d ways must be positive",
			p.CacheSize, p.CacheLine, p.CacheWays)
	}
	if p.CacheLine&(p.CacheLine-1) != 0 {
		return fail("CacheLine = %d, must be a power of two", p.CacheLine)
	}
	nsets := p.CacheSize / (p.CacheLine * p.CacheWays)
	if nsets == 0 || nsets&(nsets-1) != 0 {
		return fail("cache of %d bytes with %d-byte lines and %d ways yields %d sets, need a power of two",
			p.CacheSize, p.CacheLine, p.CacheWays, nsets)
	}
	if p.PageSize <= 0 {
		return fail("PageSize = %d, must be positive", p.PageSize)
	}
	if p.MTU <= 52 {
		return fail("MTU = %d leaves no payload after 52 header bytes", p.MTU)
	}
	if p.RxBufSize <= 0 {
		return fail("RxBufSize = %d, must be positive (buffer sizing doubles it up to one frame)",
			p.RxBufSize)
	}
	if p.CoalesceFrames <= 0 {
		return fail("CoalesceFrames = %d, must cover at least one frame per interrupt",
			p.CoalesceFrames)
	}
	if p.HeaderBytes < 0 || p.HeaderLines < 0 || p.ConnStateLines < 0 {
		return fail("negative header geometry (HeaderBytes %d, HeaderLines %d, ConnStateLines %d)",
			p.HeaderBytes, p.HeaderLines, p.ConnStateLines)
	}
	if slot := p.HeaderLines * p.CacheLine; p.HeaderRingBytes < slot {
		return fail("HeaderRingBytes = %d cannot hold one %d-byte split-header slot",
			p.HeaderRingBytes, slot)
	}
	if p.SockBuf <= 0 {
		return fail("SockBuf = %d, must be positive", p.SockBuf)
	}
	if p.ChunkMax <= 0 {
		return fail("ChunkMax = %d, must be positive", p.ChunkMax)
	}
	if p.PortRateBps <= 0 {
		return fail("PortRateBps = %d, must be positive", p.PortRateBps)
	}
	if p.DMABytesPerSec <= 0 {
		return fail("DMABytesPerSec = %d, must be positive", p.DMABytesPerSec)
	}
	for _, d := range []struct {
		name string
		v    time.Duration
	}{
		{"ContextSwitch", p.ContextSwitch}, {"CSIndirect", p.CSIndirect},
		{"Syscall", p.Syscall}, {"StreamHit", p.StreamHit},
		{"StreamMiss", p.StreamMiss}, {"RandHit", p.RandHit},
		{"RandMiss", p.RandMiss}, {"DMAStartup", p.DMAStartup},
		{"DMAPerPage", p.DMAPerPage}, {"PinPerPage", p.PinPerPage},
		{"DMAFrameSubmit", p.DMAFrameSubmit}, {"Intr", p.Intr},
		{"FrameProc", p.FrameProc}, {"BufMgmt", p.BufMgmt},
		{"AckProc", p.AckProc}, {"TxFrame", p.TxFrame},
		{"TSOFrame", p.TSOFrame}, {"TxCompleteFrame", p.TxCompleteFrame},
		{"EvictPenalty", p.EvictPenalty}, {"PropDelay", p.PropDelay},
	} {
		if d.v < 0 {
			return fail("%s = %v, costs cannot be negative", d.name, d.v)
		}
	}
	return nil
}

// Clone returns a copy that experiments may mutate independently.
func (p *Params) Clone() *Params {
	q := *p
	return &q
}

// MSS returns the TCP payload per frame for the configured MTU
// (IP + TCP headers with options take 52 bytes).
func (p *Params) MSS() int { return p.MTU - 52 }

// Frames returns the number of wire frames needed for n payload bytes.
func (p *Params) Frames(n int) int {
	if n <= 0 {
		return 0
	}
	mss := p.MSS()
	return (n + mss - 1) / mss
}

// WireBytes returns the on-wire size of n payload bytes including
// all per-frame overheads.
func (p *Params) WireBytes(n int) int {
	return n + p.Frames(n)*p.FrameWireOverhead
}

// WireTime returns the serialization time of n payload bytes on one port.
func (p *Params) WireTime(n int) time.Duration {
	bits := int64(p.WireBytes(n)) * 8
	return time.Duration(bits * int64(time.Second) / p.PortRateBps)
}

// Pages returns the number of pages spanned by an n-byte buffer.
func (p *Params) Pages(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.PageSize - 1) / p.PageSize
}
