package cost

import (
	"testing"
	"time"
)

func TestDefaultsSane(t *testing.T) {
	p := Default()
	if p.Cores != 4 {
		t.Fatalf("cores = %d, want 4 (dual-core dual Xeon)", p.Cores)
	}
	if p.CacheSize != 2*MB {
		t.Fatalf("cache = %d, want 2MB (Testbed 1 L2)", p.CacheSize)
	}
	if p.MSS() != 1448 {
		t.Fatalf("MSS = %d, want 1448 for MTU 1500", p.MSS())
	}
}

func TestClone(t *testing.T) {
	p := Default()
	q := p.Clone()
	q.MTU = 9000
	if p.MTU != 1500 {
		t.Fatal("Clone aliases the original")
	}
}

func TestFrames(t *testing.T) {
	p := Default()
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {1448, 1}, {1449, 2}, {64 * KB, 46},
	}
	for _, c := range cases {
		if got := p.Frames(c.n); got != c.want {
			t.Fatalf("Frames(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestFramesJumbo(t *testing.T) {
	p := Default()
	p.MTU = 2048
	if got := p.Frames(64 * KB); got != 33 {
		t.Fatalf("jumbo Frames(64K) = %d, want 33", got)
	}
	if p.Frames(64*KB) >= Default().Frames(64*KB) {
		t.Fatal("jumbo MTU should need fewer frames")
	}
}

func TestWireTime(t *testing.T) {
	p := Default()
	// One MSS payload: 1448 + 90 overhead = 1538 B = 12304 bits at 1 Gb/s.
	want := 12304 * time.Nanosecond
	if got := p.WireTime(1448); got != want {
		t.Fatalf("WireTime(1448) = %v, want %v", got, want)
	}
	// Wire time scales with payload.
	if p.WireTime(64*KB) <= p.WireTime(32*KB) {
		t.Fatal("wire time not monotonic")
	}
}

func TestWireRateNearLine(t *testing.T) {
	p := Default()
	// Effective goodput of a 1 Gb/s port with MTU 1500 should be ~941 Mb/s.
	n := 10 * MB
	d := p.WireTime(n)
	mbps := float64(n*8) / d.Seconds() / 1e6
	if mbps < 930 || mbps > 950 {
		t.Fatalf("goodput = %.1f Mb/s, want ~941", mbps)
	}
}

func TestPages(t *testing.T) {
	p := Default()
	if got := p.Pages(0); got != 0 {
		t.Fatalf("Pages(0) = %d", got)
	}
	if got := p.Pages(1); got != 1 {
		t.Fatalf("Pages(1) = %d", got)
	}
	if got := p.Pages(64 * KB); got != 16 {
		t.Fatalf("Pages(64K) = %d, want 16", got)
	}
}

func TestMemcpyCalibration(t *testing.T) {
	p := Default()
	// In-cache 64 KB copy: 1024 lines, 2 accesses each, ~8 GB/s.
	lines := 64 * KB / p.CacheLine
	inCache := time.Duration(2*lines) * p.StreamHit
	rate := float64(64*KB) / inCache.Seconds() / 1e9
	if rate < 6 || rate > 10 {
		t.Fatalf("in-cache copy rate = %.1f GB/s, want ~8", rate)
	}
	// Out-of-cache: ~1.5 GB/s.
	outCache := time.Duration(2*lines) * p.StreamMiss
	rate = float64(64*KB) / outCache.Seconds() / 1e9
	if rate < 1.2 || rate > 1.9 {
		t.Fatalf("out-of-cache copy rate = %.2f GB/s, want ~1.5", rate)
	}
}

func TestDMACrossoverCalibration(t *testing.T) {
	p := Default()
	// Paper Fig. 6: the DMA engine beats an out-of-cache CPU copy for
	// sizes above 8 KB.
	dmaTotal := func(n int) time.Duration {
		xfer := time.Duration(int64(n) * int64(time.Second) / p.DMABytesPerSec)
		return p.DMAStartup + time.Duration(p.Pages(n))*p.DMAPerPage + xfer
	}
	cpuNocache := func(n int) time.Duration {
		return time.Duration(2*n/p.CacheLine) * p.StreamMiss
	}
	if dmaTotal(4*KB) < cpuNocache(4*KB) {
		t.Fatalf("DMA should not beat CPU copy at 4K: %v vs %v",
			dmaTotal(4*KB), cpuNocache(4*KB))
	}
	if dmaTotal(16*KB) > cpuNocache(16*KB) {
		t.Fatalf("DMA should beat CPU copy at 16K: %v vs %v",
			dmaTotal(16*KB), cpuNocache(16*KB))
	}
}

func TestValidateAcceptsDefault(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
	// The sweep-style variations experiments actually use must pass too.
	for _, mutate := range []func(*Params){
		func(p *Params) { p.MTU = 9000 },
		func(p *Params) { p.TSO = true },
		func(p *Params) { p.CoalesceFrames = 64 },
		func(p *Params) { p.SockBuf = 16 * KB },
		func(p *Params) { p.Cores = 1 },
		func(p *Params) { p.CacheWays = 1 },
	} {
		p := Default()
		mutate(p)
		if err := p.Validate(); err != nil {
			t.Fatalf("plausible sweep point rejected: %v", err)
		}
	}
}

func TestValidateRejectsBadGeometry(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
	}{
		{"zero cores", func(p *Params) { p.Cores = 0 }},
		{"negative cores", func(p *Params) { p.Cores = -2 }},
		{"zero cache size", func(p *Params) { p.CacheSize = 0 }},
		{"zero cache line", func(p *Params) { p.CacheLine = 0 }},
		{"non-power-of-two line", func(p *Params) { p.CacheLine = 96 }},
		{"zero ways", func(p *Params) { p.CacheWays = 0 }},
		{"non-power-of-two sets", func(p *Params) { p.CacheSize = 3 * MB / 2 }},
		{"cache smaller than one set", func(p *Params) { p.CacheSize = 16 }},
		{"zero page size", func(p *Params) { p.PageSize = 0 }},
		{"mtu below headers", func(p *Params) { p.MTU = 52 }},
		{"zero rx buf", func(p *Params) { p.RxBufSize = 0 }},
		{"negative rx buf", func(p *Params) { p.RxBufSize = -1 }},
		{"zero coalesce", func(p *Params) { p.CoalesceFrames = 0 }},
		{"negative header bytes", func(p *Params) { p.HeaderBytes = -1 }},
		{"header ring below one slot", func(p *Params) { p.HeaderRingBytes = 1 }},
		{"zero sockbuf", func(p *Params) { p.SockBuf = 0 }},
		{"zero chunk max", func(p *Params) { p.ChunkMax = 0 }},
		{"zero port rate", func(p *Params) { p.PortRateBps = 0 }},
		{"zero dma rate", func(p *Params) { p.DMABytesPerSec = 0 }},
		{"negative syscall cost", func(p *Params) { p.Syscall = -time.Nanosecond }},
		{"negative prop delay", func(p *Params) { p.PropDelay = -time.Microsecond }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.mutate(p)
			if err := p.Validate(); err == nil {
				t.Fatal("bad geometry accepted")
			}
		})
	}
}
