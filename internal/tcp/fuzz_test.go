package tcp

import (
	"testing"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/ioat"
	"ioatsim/internal/mem"
	"ioatsim/internal/nic"
	"ioatsim/internal/sim"
)

// FuzzTCPSegmentation drives one transfer through the full receive path
// — segmentation, link serialization, interrupt coalescing, buffer
// placement, the kernel-to-user (or DMA-engine) copy — across fuzzed
// payload sizes, MTUs (standard through jumbo), TSO and feature sets,
// under the runtime invariant checker. Whatever the geometry, the stream
// must deliver exactly n bytes, exactly once, and drain its kernel
// buffers.
func FuzzTCPSegmentation(f *testing.F) {
	f.Add(uint32(1), uint16(1500), false, uint8(0))
	f.Add(uint32(64*cost.KB), uint16(1500), true, uint8(1))
	f.Add(uint32(200*cost.KB+17), uint16(9000), false, uint8(2))
	f.Add(uint32(53), uint16(53), false, uint8(3))
	f.Add(uint32(3*cost.KB), uint16(576), true, uint8(2))

	f.Fuzz(func(t *testing.T, n32 uint32, mtu16 uint16, tso bool, featSel uint8) {
		n := int(n32)%(256*cost.KB) + 1
		// MSS is MTU-52; anything at or below the header size carries no
		// payload and cannot exist on a real link.
		mtu := int(mtu16)
		if mtu < 53 {
			mtu = 53
		}
		if mtu > 9000 {
			mtu = 9000
		}
		feats := []ioat.Features{ioat.None(), ioat.Linux(), ioat.DMAOnly(), ioat.Full()}
		feat := feats[int(featSel)%len(feats)]

		p := cost.Default()
		p.MTU = mtu
		p.TSO = tso

		chk := check.New()
		s := sim.New(sim.WithProbe(chk))
		mkNode := func(name string) *Stack {
			m := mem.NewModel(p)
			m.SetChecker(chk)
			c := cpu.New(s, p)
			e := dma.New(s, p, m)
			nc := nic.New(s, p, c, m, e, feat, name, 1)
			return NewStack(s, p, c, m, e, nc, feat, name)
		}
		sa, sb := mkNode("a"), mkNode("b")
		ca, cb := Pair(sa, sb, 0, 0)
		src := sa.Mem.Space.Alloc(min(n, 64*cost.KB), 0)
		dst := sb.Mem.Space.Alloc(min(n, 64*cost.KB), 0)

		s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, n) })
		received := false
		s.Spawn("rx", func(pr *sim.Proc) {
			cb.Recv(pr, dst, n)
			received = true
		})
		s.Run()

		if !received {
			t.Fatalf("n=%d mtu=%d tso=%v feat=%s: receiver never completed",
				n, mtu, tso, feat.Label())
		}
		if sa.BytesSent != int64(n) || sb.BytesReceived != int64(n) {
			t.Fatalf("n=%d mtu=%d tso=%v feat=%s: sent=%d received=%d — bytes lost or duplicated",
				n, mtu, tso, feat.Label(), sa.BytesSent, sb.BytesReceived)
		}
		if live := sb.NIC.PoolLiveBytes(); live != 0 {
			t.Fatalf("n=%d mtu=%d tso=%v feat=%s: %d bytes of kernel buffers leaked",
				n, mtu, tso, feat.Label(), live)
		}
		if fl := chk.Ledger("tcp:stream").InFlight(); fl != 0 {
			t.Fatalf("n=%d mtu=%d tso=%v feat=%s: %d stream bytes unaccounted at end of run",
				n, mtu, tso, feat.Label(), fl)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("n=%d mtu=%d tso=%v feat=%s: %v", n, mtu, tso, feat.Label(), err)
		}
	})
}
