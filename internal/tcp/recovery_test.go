package tcp

import (
	"strings"
	"testing"
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/fault"
	"ioatsim/internal/ioat"
	"ioatsim/internal/mem"
	"ioatsim/internal/nic"
	"ioatsim/internal/sim"
)

// faultNet is a two-node checked topology with a fault plan wired the
// way host construction wires it: link faults on every port, a ring
// bound on every NIC, recovery armed on both stacks.
type faultNet struct {
	chk    *check.Checker
	s      *sim.Simulator
	in     *fault.Injector
	sa, sb *Stack
}

func newFaultNet(feat ioat.Features, p *cost.Params, plan fault.Plan) *faultNet {
	chk := check.New()
	s := sim.New(sim.WithProbe(chk))
	in := fault.NewInjector(plan)
	mk := func(name string) *Stack {
		m := mem.NewModel(p)
		m.SetChecker(chk)
		c := cpu.New(s, p)
		e := dma.New(s, p, m)
		nc := nic.New(s, p, c, m, e, feat, name, 6)
		c.SetFault(in.Node(name))
		nc.Fault = in.NIC(name)
		for i, pt := range nc.Ports {
			pt.Fault = in.Link(name, i)
		}
		st := NewStack(s, p, c, m, e, nc, feat, name)
		st.EnableRecovery(in.Plan())
		return st
	}
	return &faultNet{chk: chk, s: s, in: in, sa: mk("a"), sb: mk("b")}
}

// transfer runs one n-byte stream a->b on port 0 and returns the
// receiver's completion time.
func (fn *faultNet) transfer(t *testing.T, n int) sim.Time {
	t.Helper()
	ca, cb := Pair(fn.sa, fn.sb, 0, 0)
	src := fn.sa.Mem.Space.Alloc(min(n, 64*cost.KB), 0)
	dst := fn.sb.Mem.Space.Alloc(min(n, 64*cost.KB), 0)
	fn.s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, n) })
	var done sim.Time
	received := false
	fn.s.Spawn("rx", func(pr *sim.Proc) {
		cb.Recv(pr, dst, n)
		done = pr.Now()
		received = true
	})
	fn.s.Run()
	if !received {
		t.Fatal("receiver never completed")
	}
	if fn.sa.BytesSent != int64(n) || fn.sb.BytesReceived != int64(n) {
		t.Fatalf("sent=%d received=%d, want %d exactly once", fn.sa.BytesSent, fn.sb.BytesReceived, n)
	}
	if fl := fn.chk.Ledger("tcp:stream").InFlight(); fl != 0 {
		t.Fatalf("%d stream bytes unaccounted", fl)
	}
	if live := fn.sb.NIC.PoolLiveBytes(); live != 0 {
		t.Fatalf("%d bytes of kernel buffers leaked", live)
	}
	fn.chk.Finish()
	if err := fn.chk.Err(); err != nil {
		t.Fatal(err)
	}
	return done
}

// TestZeroPlanInert pins the differential property at the transport
// level: an enabled-but-benign plan must not move delivery times, CPU
// busy time, or byte counts relative to the nil-plan fast path — the
// recovery machinery runs (segments tracked, ACKs flow, timers arm) but
// perturbs nothing.
func TestZeroPlanInert(t *testing.T) {
	const n = 512 * cost.KB
	run := func(withPlan bool) (sim.Time, time.Duration, time.Duration) {
		p := cost.Default()
		var sa, sb *Stack
		var s *sim.Simulator
		if withPlan {
			fn := newFaultNet(ioat.None(), p, fault.Plan{})
			s, sa, sb = fn.s, fn.sa, fn.sb
		} else {
			var a, b *node
			s, a, b = twoNodes(ioat.None(), p)
			sa, sb = a.st, b.st
		}
		ca, cb := Pair(sa, sb, 0, 0)
		src := sa.Mem.Space.Alloc(64*cost.KB, 0)
		dst := sb.Mem.Space.Alloc(64*cost.KB, 0)
		s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, n) })
		var done sim.Time
		var txBusy, rxBusy time.Duration
		s.Spawn("rx", func(pr *sim.Proc) {
			cb.Recv(pr, dst, n)
			// Sample busy time at the delivery instant, not after Run
			// drains: the zero-plan run keeps (inert) timer events alive
			// past this point, and busy-time accounting elapses queued
			// work as virtual time advances.
			done = pr.Now()
			txBusy = sa.CPU.BusyTime()
			rxBusy = sb.CPU.BusyTime()
		})
		s.Run()
		return done, txBusy, rxBusy
	}
	d0, tx0, rx0 := run(false)
	d1, tx1, rx1 := run(true)
	if d0 != d1 {
		t.Errorf("delivery time moved: nil plan %v, zero plan %v", d0, d1)
	}
	if tx0 != tx1 || rx0 != rx1 {
		t.Errorf("CPU busy moved: nil plan tx=%v rx=%v, zero plan tx=%v rx=%v", tx0, rx0, tx1, rx1)
	}
}

// TestFastRetransmit drops exactly one mid-stream chunk; the chunks
// behind it arrive, are discarded as out-of-order, and their duplicate
// ACKs must trigger recovery without waiting out a full RTO (the
// retransmission timer may still fire alongside — fast retransmit just
// has to be part of the story).
func TestFastRetransmit(t *testing.T) {
	fn := newFaultNet(ioat.None(), cost.Default(), fault.Plan{
		DropMask: 1 << 1, MaskBits: 64, // drop only the second chunk offered
		// Duplicate ACKs trail the ~530µs chunk serialization; a
		// conservative RTO keeps the timer out of the race so the test
		// isolates the dup-ack path.
		RTOMin: 20 * time.Millisecond,
	})
	fn.transfer(t, 1*cost.MB)
	if fn.sa.FastRetransmits == 0 {
		t.Errorf("no fast retransmit after %d discards (retx=%d timeouts=%d)",
			fn.sb.RxDiscards, fn.sa.Retransmits, fn.sa.Timeouts)
	}
	if fn.sb.RxDiscards < int64(fn.sa.dupAckThresh) {
		t.Errorf("only %d out-of-order discards, want at least the dup-ack threshold %d",
			fn.sb.RxDiscards, fn.sa.dupAckThresh)
	}
	if fn.sa.Retransmits == 0 || fn.sa.RetransmitBytes == 0 {
		t.Error("drop recovered without any recorded retransmission")
	}
	if got := fn.in.Totals().LinkDroppedChunks; got != 1 {
		t.Errorf("link dropped %d chunks, mask says exactly 1", got)
	}
}

// TestRTOTailDrop drops the final chunk of the stream: nothing follows
// it, so no duplicate ACKs can arrive and only the retransmission timer
// can recover it.
func TestRTOTailDrop(t *testing.T) {
	const n = 256 * cost.KB // 4 chunks; drop the 4th
	fn := newFaultNet(ioat.None(), cost.Default(), fault.Plan{
		DropMask: 1 << 3, MaskBits: 64,
	})
	done := fn.transfer(t, n)
	if fn.sa.Timeouts == 0 {
		t.Errorf("tail drop recovered without an RTO (fastretx=%d)", fn.sa.FastRetransmits)
	}
	if fn.sa.Retransmits == 0 {
		t.Error("no retransmission recorded")
	}
	// Completion must include at least one full RTO of dead air.
	if done < sim.Time(fn.sa.rtoMin) {
		t.Errorf("finished at %v, before a single RTO (%v) could fire", done, fn.sa.rtoMin)
	}
}

// TestRTOBackoffBounded kills the link permanently: retransmission must
// back off exponentially and then abort the run loudly instead of
// spinning forever.
func TestRTOBackoffBounded(t *testing.T) {
	fn := newFaultNet(ioat.None(), cost.Default(), fault.Plan{
		DropMask: 1, MaskBits: 1, // every chunk drops
		MaxRetries: 4,
	})
	ca, _ := Pair(fn.sa, fn.sb, 0, 0)
	src := fn.sa.Mem.Space.Alloc(64*cost.KB, 0)
	fn.s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, 64*cost.KB) })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("dead fabric did not abort the run")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "retransmission timeouts") {
			t.Fatalf("unexpected panic: %v", r)
		}
		if fn.sa.Timeouts != 5 {
			t.Errorf("aborted after %d timeouts, want MaxRetries+1 = 5", fn.sa.Timeouts)
		}
		// Backoff doubled each round: 1, 2, 4, 8 ms between firings.
		if now := fn.s.Now(); now < sim.Time(15*time.Millisecond) {
			t.Errorf("aborted at %v, before exponential backoff could accumulate", now)
		}
	}()
	fn.s.Run()
}

// TestNICRingOverflow converges three ports on one receiver whose ring
// holds a single chunk's frames: concurrent bursts must overflow, be
// dropped at the NIC (before any protocol work), and be recovered.
func TestNICRingOverflow(t *testing.T) {
	p := cost.Default()
	fn := newFaultNet(ioat.None(), p, fault.Plan{RxRingFrames: p.Frames(p.ChunkMax)})
	const per = 256 * cost.KB
	var streams []struct{ ca, cb *Conn }
	for port := 0; port < 3; port++ {
		ca, cb := Pair(fn.sa, fn.sb, port, port)
		streams = append(streams, struct{ ca, cb *Conn }{ca, cb})
	}
	recvd := 0
	for i, sp := range streams {
		sp := sp
		src := fn.sa.Mem.Space.Alloc(64*cost.KB, 0)
		dst := fn.sb.Mem.Space.Alloc(64*cost.KB, 0)
		fn.s.Spawn("tx"+itoa(i), func(pr *sim.Proc) { sp.ca.Send(pr, src, per) })
		fn.s.Spawn("rx"+itoa(i), func(pr *sim.Proc) {
			sp.cb.Recv(pr, dst, per)
			recvd++
		})
	}
	fn.s.Run()
	if recvd != len(streams) {
		t.Fatalf("%d of %d streams completed", recvd, len(streams))
	}
	tot := fn.in.Totals()
	if tot.NICDroppedChunks == 0 {
		t.Error("one-chunk ring under 3 converging ports never overflowed")
	}
	if fn.sa.Retransmits == 0 {
		t.Error("ring drops recovered without retransmission")
	}
	fn.chk.Finish()
	if err := fn.chk.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSlowNodeStretchesRun pins the CPU fault: the same transfer on a
// uniformly degraded cluster must finish strictly later and burn
// strictly more simulated CPU.
func TestSlowNodeStretchesRun(t *testing.T) {
	base := newFaultNet(ioat.None(), cost.Default(), fault.Plan{})
	dBase := base.transfer(t, 512*cost.KB)
	busyBase := base.sb.CPU.BusyTime()

	slow := newFaultNet(ioat.None(), cost.Default(), fault.Plan{SlowFactor: 3})
	dSlow := slow.transfer(t, 512*cost.KB)
	busySlow := slow.sb.CPU.BusyTime()
	if slow.in.Totals().SlowNodes != 2 {
		t.Fatalf("SlowFraction 0 with a factor must degrade both nodes, got %d", slow.in.Totals().SlowNodes)
	}
	if dSlow <= dBase {
		t.Errorf("degraded run finished at %v, baseline %v; want strictly later", dSlow, dBase)
	}
	if busySlow <= busyBase {
		t.Errorf("degraded receiver busy %v, baseline %v; want strictly more", busySlow, busyBase)
	}
}

// TestLossyStreamStrict runs a moderately lossy stream under Strict
// checking: every violation would panic immediately, so a clean finish
// is the assertion.
func TestLossyStreamStrict(t *testing.T) {
	fn := newFaultNet(ioat.Full(), cost.Default(), fault.Plan{Seed: 5, LossRate: 0.002})
	fn.chk.Strict = true
	fn.transfer(t, 2*cost.MB)
	if fn.in.Totals().LinkDroppedChunks == 0 {
		t.Skip("seed produced no drops at this rate; raise rate or change seed")
	}
	if fn.sa.Retransmits == 0 {
		t.Error("drops occurred but nothing was retransmitted")
	}
}

func itoa(i int) string { return string(rune('0' + i)) }
