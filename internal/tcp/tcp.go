// Package tcp models a reliable, in-order byte-stream transport over the
// simulated fabric, with the paper's sender- and receiver-side CPU cost
// structure:
//
//   - sender: syscall per socket-buffer write, user-to-kernel copy (unless
//     sendfile-style zero copy), per-frame segmentation (unless TSO), and
//     ACK processing;
//   - receiver: interrupts + per-frame protocol work (priced by the NIC
//     through the cache model), then a kernel-to-user copy performed
//     either by the CPU (through the cache) or by the I/OAT engine
//     (startup cost only, overlapped).
//
// Flow control is credit-based with a window of one socket buffer. The
// fabric is lossless by default (the paper's testbed is a switched LAN
// measured in steady state) and the transport then runs a no-retransmit
// fast path; under a fault plan (internal/fault) each stack additionally
// arms a minimal loss-recovery machine — per-connection retransmission
// queue, cumulative ACKs, RTO with exponential backoff and bounded
// retries, and duplicate-ACK fast retransmit (see recovery.go).
package tcp

import (
	"fmt"
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/fault"
	"ioatsim/internal/ioat"
	"ioatsim/internal/link"
	"ioatsim/internal/mem"
	"ioatsim/internal/metrics"
	"ioatsim/internal/nic"
	"ioatsim/internal/sim"
	"ioatsim/internal/trace"
)

// Stack is one node's transport instance.
type Stack struct {
	S    *sim.Simulator
	P    *cost.Params
	CPU  *cpu.CPU
	Mem  *mem.Model
	DMA  *dma.Engine
	NIC  *nic.NIC
	Feat ioat.Features
	Name string

	listeners map[string]*Listener
	txPool    *mem.Pool
	nextFlow  int

	// Free lists keep the steady-state packet path allocation-free: link
	// chunks, pending-queue records and credit events are all recycled.
	chunkPool  *link.ChunkPool
	pendFree   []*pending
	creditFree []*creditEv

	// Loss recovery (recovery.go). fp == nil is the lossless fabric and
	// gates every recovery branch with one pointer compare; EnableRecovery
	// resolves the plan's RTO/retry knobs into the derived fields.
	fp           *fault.Plan
	rtoMin       time.Duration
	rtoMax       time.Duration
	dupAckThresh int
	maxRetries   int // negative = unlimited
	segFree      []*txSeg
	ackFree      []*ackEv
	conns        []*Conn

	// Stats.
	BytesSent     int64
	BytesReceived int64

	// Recovery stats (all zero under a nil or benign plan).
	Retransmits      int64 // segment groups retransmitted
	RetransmitBytes  int64
	FastRetransmits  int64 // dup-ack-triggered recovery rounds
	Timeouts         int64 // RTO firings
	RxDiscards       int64 // out-of-order/duplicate chunks discarded
	RxDiscardBytes   int64
	AcceptedBytes    int64 // in-order bytes accepted into the stream
	DeliveredUpBytes int64 // everything the NIC handed up (accepted + discarded)

	chk *check.Checker
	obs *trace.Obs

	// Optional metrics instruments (nil without a registry): the summed
	// unconsumed receive backlog across this stack's connections, and the
	// distribution of transmitted segment-group sizes.
	bkGauge   *metrics.TimeWeighted
	segHist   *metrics.Histogram
	rxBacklog int64
}

// SetObs attaches the node's observability sinks: segment hand-offs and
// deliveries become instants on the tcp track, and the transport's CPU
// work is attributed per cost-model site.
func (st *Stack) SetObs(o *trace.Obs) { st.obs = o }

// SetMetrics attaches the stack's push-style instruments (either may be
// nil). Host registration calls this once per node when a registry is
// installed.
func (st *Stack) SetMetrics(backlog *metrics.TimeWeighted, seg *metrics.Histogram) {
	st.bkGauge = backlog
	st.segHist = seg
}

// noteBacklog tracks the stack-wide unconsumed receive backlog in the
// time-weighted gauge. Called only when the gauge is installed.
func (st *Stack) noteBacklog(d int64) {
	st.rxBacklog += d
	st.bkGauge.Set(st.S.Now(), float64(st.rxBacklog))
}

// NewStack wires a transport onto the node's NIC and installs the receive
// handler.
func NewStack(s *sim.Simulator, p *cost.Params, c *cpu.CPU, m *mem.Model,
	e *dma.Engine, n *nic.NIC, feat ioat.Features, name string) *Stack {
	st := &Stack{
		S: s, P: p, CPU: c, Mem: m, DMA: e, NIC: n, Feat: feat, Name: name,
		listeners: make(map[string]*Listener),
		txPool:    mem.NewPool(m.Space, p.ChunkMax),
		chunkPool: link.NewChunkPool(),
		chk:       check.Enabled(s),
	}
	n.OnReceive = st.onReceive
	return st
}

// Listener accepts inbound connections for one named service.
type Listener struct {
	stack   *Stack
	service string
	backlog *sim.Chan[*Conn]
}

// Listen registers a service name on this stack.
func (st *Stack) Listen(service string) *Listener {
	if _, dup := st.listeners[service]; dup {
		panic(fmt.Sprintf("tcp: duplicate listener %q on %s", service, st.Name))
	}
	l := &Listener{stack: st, service: service, backlog: sim.NewChan[*Conn](st.S)}
	st.listeners[service] = l
	return l
}

// Accept blocks until a connection arrives and returns its server-side
// endpoint.
func (l *Listener) Accept(p *sim.Proc) *Conn {
	l.stack.CPU.Exec(p, l.stack.P.Syscall)
	c, ok := l.backlog.Recv(p)
	if !ok {
		panic("tcp: listener closed")
	}
	l.stack.CPU.Exec(p, l.stack.P.ContextSwitch)
	return c
}

// pending is one received chunk queued on a connection, partially
// consumable. Kernel buffers are freed when the owning recv call returns.
type pending struct {
	rx  *nic.RxChunk
	off int // consumed payload bytes
	dma *sim.Completion
}

func (pd *pending) remaining() int { return pd.rx.Chunk.Bytes - pd.off }

// Conn is one endpoint of an established connection.
type Conn struct {
	stack *Stack
	peer  *Conn

	flowID    int
	state     mem.Buffer
	localPort int
	peerPort  int
	userData  any

	// Receive side. rxq is consumed from rxqHead (a head index instead of
	// re-slicing keeps the backing array reusable); doneScratch is the
	// per-recv retired-chunk list, reusable because Recv is never
	// concurrent on one connection.
	rxq         []*pending
	rxqHead     int
	rxAvail     int
	rxWaiter    any  // *sim.Proc or *sim.Task, woken via WakeAny
	posted      bool // a recv is posted (enables eager DMA submit)
	doneScratch []*pending

	// Transmit side (flow control). Waiters are *sim.Proc or *sim.Task.
	window    int
	inflight  int
	txWaiters []any

	// Loss recovery (recovery.go); all idle when the stack has no fault
	// plan. sndUna..sndNxt is the unacked stream range, tracked segment
	// by segment in rtxq (consumed from rtxHead like rxq); rcvNxt is the
	// next in-order stream offset this endpoint accepts.
	sndUna  int64
	sndNxt  int64
	rcvNxt  int64
	rtxq    []*txSeg
	rtxHead int
	dupAcks int
	retries int // consecutive RTOs without cumulative-ack progress

	rto          time.Duration
	srtt         time.Duration
	rttvar       time.Duration
	rtoScheduled bool
	rtoDeadline  sim.Time
}

// Peer returns the other endpoint of the connection.
func (c *Conn) Peer() *Conn { return c.peer }

// Stack returns the owning transport stack.
func (c *Conn) Stack() *Stack { return c.stack }

// UserData carries a higher layer's per-endpoint state (e.g. the framed
// message wrapper).
func (c *Conn) UserData() any { return c.userData }

// SetUserData attaches higher-layer state to the endpoint.
func (c *Conn) SetUserData(v any) { c.userData = v }

// FlowID implements nic.Flow.
func (c *Conn) FlowID() int { return c.flowID }

// StateAddr implements nic.Flow.
func (c *Conn) StateAddr() mem.Addr { return c.state.Addr }

// LocalPort returns the index of the NIC port this endpoint uses.
func (c *Conn) LocalPort() int { return c.localPort }

// newConn builds one endpoint on st using local port lp, speaking to
// remote port rp.
func (st *Stack) newConn(lp, rp int) *Conn {
	st.nextFlow++
	c := &Conn{
		stack:     st,
		flowID:    st.nextFlow,
		state:     st.Mem.Space.Alloc(st.P.ConnStateLines*st.P.CacheLine, 0),
		localPort: lp,
		peerPort:  rp,
		window:    st.P.SockBuf,
	}
	if st.fp != nil {
		st.conns = append(st.conns, c)
	}
	return c
}

// Dial establishes a connection from this stack to the named service on
// the remote stack, using localPort on this node and remotePort on the
// remote node. It charges the connection-setup syscall and one round
// trip, then enqueues the server endpoint on the remote listener backlog.
func (st *Stack) Dial(p *sim.Proc, remote *Stack, service string, localPort, remotePort int) *Conn {
	l, ok := remote.listeners[service]
	if !ok {
		panic(fmt.Sprintf("tcp: no listener %q on %s", service, remote.Name))
	}
	cl := st.newConn(localPort, remotePort)
	sv := remote.newConn(remotePort, localPort)
	cl.peer, sv.peer = sv, cl

	st.CPU.Exec(p, st.P.Syscall)
	// SYN + SYN/ACK round trip.
	p.Sleep(2 * st.P.PropDelay)
	remote.CPU.Submit(remote.P.Syscall, func() { l.backlog.Send(sv) })
	return cl
}

// Pair establishes a connection without the handshake costs — a helper
// for tests and for pre-built topologies.
func Pair(a, b *Stack, portA, portB int) (*Conn, *Conn) {
	ca := a.newConn(portA, portB)
	cb := b.newConn(portB, portA)
	ca.peer, cb.peer = cb, ca
	return ca, cb
}

// SendOptions modify one Send call.
type SendOptions struct {
	// ZeroCopy skips the user-to-kernel copy (the sendfile() path: the
	// kernel transmits straight from pinned page-cache pages).
	ZeroCopy bool
}

// Send transmits n bytes whose source is the user buffer src (cycled if
// smaller than n), blocking the calling process for the CPU portions and
// for window stalls. It returns when the last byte has been handed to
// the NIC.
func (c *Conn) Send(p *sim.Proc, src mem.Buffer, n int) {
	c.SendOpts(p, src, n, SendOptions{})
}

// SendOpts is Send with options.
func (c *Conn) SendOpts(p *sim.Proc, src mem.Buffer, n int, opts SendOptions) {
	st := c.stack
	pm := st.P
	sent := 0
	for sent < n {
		// Window stall: wait for credit.
		for c.inflight >= c.window {
			c.txWaiters = append(c.txWaiters, p)
			p.Park()
			st.CPU.ExecSite(p, trace.SiteCtxSwitch, st.CPU.WakeCost())
		}
		chunk := n - sent
		if chunk > pm.ChunkMax {
			chunk = pm.ChunkMax
		}
		if free := c.window - c.inflight; chunk > free {
			chunk = free
		}

		var work time.Duration = pm.Syscall
		if !opts.ZeroCopy {
			kb := st.txPool.Get()
			srcOff := 0
			if src.Size > chunk {
				srcOff = sent % (src.Size - chunk + 1)
			}
			work += st.Mem.CopyCost(src.Addr+mem.Addr(srcOff), kb.Addr, chunk)
			st.txPool.Put(kb)
		}
		work += st.NIC.TxCost(chunk)
		st.CPU.ExecSite(p, trace.SiteTxSend, work)

		c.inflight += chunk
		if st.chk != nil {
			st.chk.Assert(chunk > 0 && c.inflight <= c.window,
				"tcp", "%s sent %d-byte chunk, inflight %d over window %d",
				st.Name, chunk, c.inflight, c.window)
			st.chk.Ledger("tcp:stream").In(int64(chunk))
		}
		st.BytesSent += int64(chunk)
		lc := st.chunkPool.Get()
		lc.Bytes = chunk
		lc.Frames = pm.Frames(chunk)
		lc.WireBytes = pm.WireBytes(chunk)
		lc.Meta = c.peer
		if st.fp != nil {
			lc.Seq = c.sndNxt
			st.trackSeg(c, c.sndNxt, chunk)
			c.sndNxt += int64(chunk)
		}
		st.NIC.Port(c.localPort).Send(c.peer.stack.NIC.Port(c.peerPort), lc)
		if st.obs != nil {
			st.obs.Instant(trace.TidTCP, trace.SiteTCPSegment, int64(chunk))
		}
		if st.segHist != nil {
			st.segHist.Observe(float64(chunk))
		}
		st.NIC.TxComplete(c.localPort, c, chunk)
		sent += chunk
	}
}

// onReceive is the NIC handler: queue the chunk on its connection, start
// the engine copy eagerly if a recv is posted, and wake the reader.
func (st *Stack) onReceive(rx *nic.RxChunk) {
	c, ok := rx.Flow.(*Conn)
	if !ok {
		panic("tcp: chunk for foreign flow")
	}
	if st.fp != nil && !st.acceptChunk(c, rx) {
		return
	}
	var pd *pending
	if k := len(st.pendFree); k > 0 {
		pd = st.pendFree[k-1]
		st.pendFree = st.pendFree[:k-1]
		pd.rx = rx
	} else {
		pd = &pending{rx: rx}
	}
	if st.Feat.DMACopy && c.posted {
		st.submitDMA(c, pd, nil)
	}
	if c.rxqHead > 0 && len(c.rxq) == cap(c.rxq) {
		// Compact the consumed prefix instead of growing the backing array.
		k := copy(c.rxq, c.rxq[c.rxqHead:])
		c.rxq = c.rxq[:k]
		c.rxqHead = 0
	}
	c.rxq = append(c.rxq, pd)
	c.rxAvail += rx.Chunk.Bytes
	if st.chk != nil {
		// The stream ledger closes here: every byte the receiver queues
		// was sent exactly once. A duplicate or fabricated chunk trips
		// the conservation law immediately.
		st.chk.Ledger("tcp:stream").Out(int64(rx.Chunk.Bytes))
		st.chk.Assert(c.rxAvail >= 0, "tcp", "%s negative receive backlog %d", st.Name, c.rxAvail)
	}
	st.BytesReceived += int64(rx.Chunk.Bytes)
	if st.obs != nil {
		st.obs.Instant(trace.TidTCP, trace.SiteTCPDeliver, int64(rx.Chunk.Bytes))
	}
	if st.bkGauge != nil {
		st.noteBacklog(int64(rx.Chunk.Bytes))
	}
	if w := c.rxWaiter; w != nil {
		c.rxWaiter = nil
		st.S.WakeAny(w)
	}
}

// submitDMA hands a whole chunk's payload to the copy engine. The per-
// frame submit cost lands on the rx core when issued from softirq context
// (proc == nil) or blocks the reader when issued from recv.
func (st *Stack) submitDMA(c *Conn, pd *pending, p *sim.Proc) {
	frames := pd.rx.Chunk.Frames
	submit := time.Duration(frames) * st.P.DMAFrameSubmit
	if p != nil {
		st.CPU.ExecSite(p, trace.SiteDMASubmit, submit)
	} else {
		st.CPU.SubmitOnSite(st.NIC.RxCore(pd.rx.Port, c), trace.SiteDMASubmit, submit, nil)
	}
	// Destination: the posted user buffer region. Address identity only
	// matters for cache bookkeeping (the engine invalidates it).
	pd.dma = st.DMA.Submit(pd.rx.Bufs[0].Addr, 0, pd.rx.Chunk.Bytes)
}

// Recv consumes exactly n bytes of the stream into the user buffer dst
// (cycled if smaller), blocking until they have arrived and been copied —
// by the CPU through the cache, or by the I/OAT engine. Kernel buffers
// are retained until this call returns (the net_dma skb lifetime), so
// large in-flight messages hold a large receive-path working set.
func (c *Conn) Recv(p *sim.Proc, dst mem.Buffer, n int) {
	st := c.stack
	pm := st.P
	if n <= 0 {
		return
	}
	if st.Feat.DMACopy {
		// Pin the posted buffer once per recv call.
		st.CPU.ExecSite(p, trace.SitePin, time.Duration(pm.Pages(n))*pm.PinPerPage)
	}
	c.posted = true
	done := c.doneScratch[:0]
	need := n
	off := 0
	for need > 0 {
		for c.rxAvail == 0 {
			if c.rxWaiter != nil {
				panic("tcp: concurrent Recv on one connection")
			}
			c.rxWaiter = p
			p.Park()
			st.CPU.ExecSite(p, trace.SiteCtxSwitch, st.CPU.WakeCost())
		}
		pd := c.rxq[c.rxqHead]
		m := pd.remaining()
		if m > need {
			m = need
		}

		work := pm.Syscall
		if st.Feat.DMACopy {
			if pd.dma == nil {
				st.submitDMA(c, pd, p)
			}
			st.CPU.ExecSite(p, trace.SiteRecvCopy, work)
			pd.dma.Wait(p)
		} else {
			work += c.copyCost(pd, m, dst, off)
			st.CPU.ExecSite(p, trace.SiteRecvCopy, work)
		}

		pd.off += m
		c.rxAvail -= m
		need -= m
		if st.bkGauge != nil {
			st.noteBacklog(int64(-m))
		}
		if st.chk != nil {
			st.chk.Assert(pd.off <= pd.rx.Chunk.Bytes,
				"tcp", "%s consumed %d bytes of a %d-byte chunk", st.Name, pd.off, pd.rx.Chunk.Bytes)
			st.chk.Assert(c.rxAvail >= 0,
				"tcp", "%s receive backlog went negative (%d)", st.Name, c.rxAvail)
		}
		off = (off + m) % max(dst.Size, 1)
		if pd.remaining() == 0 {
			c.rxq[c.rxqHead] = nil
			c.rxqHead++
			if c.rxqHead == len(c.rxq) {
				c.rxq = c.rxq[:0]
				c.rxqHead = 0
			}
			done = append(done, pd)
		}
		c.credit(m)
	}
	c.posted = false
	for _, pd := range done {
		pd.rx.Free()
		if pd.dma != nil {
			// The completion has fired and its waiter resumed (this very
			// call waited on it), so it is safe to rearm for reuse.
			st.DMA.Recycle(pd.dma)
		}
		*pd = pending{}
		st.pendFree = append(st.pendFree, pd)
	}
	c.doneScratch = done[:0]
}

// copyCost prices the CPU copy of m bytes from the chunk's kernel buffers
// (starting at the chunk's consumed offset) into dst+dstOff, through the
// cache.
func (c *Conn) copyCost(pd *pending, m int, dst mem.Buffer, dstOff int) time.Duration {
	st := c.stack
	mss := st.P.MSS()
	var total time.Duration
	remaining := m
	pos := pd.off
	for remaining > 0 {
		frame := pos / mss
		frameOff := pos % mss
		seg := mss - frameOff
		if seg > remaining {
			seg = remaining
		}
		// Every consumable offset maps inside the chunk's buffer list:
		// pos < Chunk.Bytes and the NIC allocated ceil(Bytes/MSS) buffers,
		// so frame = pos/MSS is always in range. A clamp here would paper
		// over a segmentation bug; fail loudly instead.
		if st.chk != nil {
			st.chk.Assert(frame < len(pd.rx.Bufs),
				"tcp", "%s copy at offset %d of a %d-byte chunk addresses frame %d, chunk has %d buffers",
				st.Name, pos, pd.rx.Chunk.Bytes, frame, len(pd.rx.Bufs))
		}
		src := pd.rx.Bufs[frame].Addr + mem.Addr(frameOff)
		dOff := 0
		if dst.Size > seg {
			dOff = dstOff % (dst.Size - seg + 1)
		}
		total += st.Mem.CopyCost(src, dst.Addr+mem.Addr(dOff), seg)
		pos += seg
		dstOff += seg
		remaining -= seg
	}
	return total
}

// creditEv is one in-flight window-credit record, pooled on the receiving
// stack so the per-chunk ACK path schedules without a closure.
type creditEv struct {
	conn *Conn // receiving endpoint; the credit lands on its peer
	m    int
	acks int
}

// credit returns m bytes of window to the sender after the ACK delay and
// charges the sender's ACK processing (one delayed ACK per two frames).
//
//ioat:hotpath
func (c *Conn) credit(m int) {
	st := c.stack
	var ev *creditEv
	if k := len(st.creditFree); k > 0 {
		ev = st.creditFree[k-1]
		st.creditFree = st.creditFree[:k-1]
	} else {
		//ioatlint:allow hotpathalloc — credit-event free-list refill: applyCredit recycles every event
		ev = &creditEv{}
	}
	ev.conn, ev.m, ev.acks = c, m, (st.P.Frames(m)+1)/2
	st.S.ScheduleArg(st.P.PropDelay, applyCredit, ev)
}

// applyCredit is the pre-bound ACK-arrival event on the sender side.
func applyCredit(a any) {
	ev := a.(*creditEv)
	c := ev.conn
	peer := c.peer
	m := ev.m
	peer.stack.CPU.SubmitSite(trace.SiteAckProc, time.Duration(ev.acks)*peer.stack.P.AckProc, nil)
	peer.inflight -= m
	if peer.inflight < 0 {
		panic("tcp: negative inflight")
	}
	for len(peer.txWaiters) > 0 && peer.inflight < peer.window {
		w := peer.txWaiters[0]
		k := copy(peer.txWaiters, peer.txWaiters[1:])
		peer.txWaiters = peer.txWaiters[:k]
		peer.stack.S.WakeAny(w)
	}
	st := c.stack
	ev.conn = nil
	st.creditFree = append(st.creditFree, ev)
}

// Available reports how many received bytes are queued and unconsumed.
func (c *Conn) Available() int { return c.rxAvail }
