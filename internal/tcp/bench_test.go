package tcp

import (
	"runtime"
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/ioat"
)

// BenchmarkSteadyStatePacketPath streams messages between two nodes and
// measures the allocation behaviour of the whole per-message machinery:
// send syscall + copy pricing, link chunk, NIC softirq, pending queue,
// recv copy (CPU or engine), credits and wake-ups. After a warm-up that
// fills every free list, the steady state must allocate nothing — the
// benchmark fails if a single allocation happens in the measured window.
func BenchmarkSteadyStatePacketPath(b *testing.B) {
	cases := []struct {
		name string
		feat ioat.Features
	}{
		{"traditional", ioat.None()},
		{"ioat-dma", ioat.DMAOnly()},
		{"ioat-full", ioat.Full()},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			p := cost.Default()
			s, na, nb := twoNodes(bc.feat, p)
			ca, cb := Pair(na.st, nb.st, 0, 0)
			const msg = 32 * cost.KB
			src := na.buf(64 * cost.KB)
			dst := nb.buf(64 * cost.KB)

			// The streaming loops run on the continuation API — the same
			// machinery the figure experiments use in steady state. All
			// construction (state machines, loop closures) happens here,
			// before the warm-up.
			tx := NewSender(ca, s.NewTask("tx"))
			rx := NewReceiver(cb, s.NewTask("rx"))
			txLeft, rxLeft, received := 0, 0, 0
			var txLoop, rxLoop func()
			txLoop = func() {
				if txLeft == 0 {
					return
				}
				txLeft--
				tx.Send(src, msg, txLoop)
			}
			rxDone := func() { received++; rxLoop() }
			rxLoop = func() {
				if rxLeft == 0 {
					return
				}
				rxLeft--
				rx.Recv(dst, msg, rxDone)
			}

			// Warm-up run to full drain: free lists only reach their
			// high-water mark when all in-flight traffic retires, so the
			// warm phase must include its own drain tail for every slice
			// (chunk pool, pending pool, event arena) to reach final
			// capacity before the measured burst starts.
			const warm = 64
			txLeft, rxLeft = warm, warm
			tx.Task().Start(txLoop)
			rx.Task().Start(rxLoop)
			s.Run()

			txLeft, rxLeft, received = b.N, b.N, 0
			tx.Task().Start(txLoop)
			rx.Task().Start(rxLoop)

			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for received < b.N {
				if !s.Step() {
					b.Fatal("simulation drained before all messages arrived")
				}
			}
			runtime.ReadMemStats(&after)
			b.StopTimer()
			// Mallocs is process-wide, so the runtime itself (GC metadata,
			// timers) can contribute a stray object or two; a real leak in
			// the packet path scales with the message count. Allow the
			// former, fail on the latter.
			if n := after.Mallocs - before.Mallocs; n > 4+uint64(b.N)/16 {
				b.Fatalf("steady-state packet path allocated %d objects over %d messages; want 0",
					n, b.N)
			}
		})
	}
}
