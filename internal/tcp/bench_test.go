package tcp

import (
	"runtime"
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
)

// BenchmarkSteadyStatePacketPath streams messages between two nodes and
// measures the allocation behaviour of the whole per-message machinery:
// send syscall + copy pricing, link chunk, NIC softirq, pending queue,
// recv copy (CPU or engine), credits and wake-ups. After a warm-up that
// fills every free list, the steady state must allocate nothing — the
// benchmark fails if a single allocation happens in the measured window.
func BenchmarkSteadyStatePacketPath(b *testing.B) {
	cases := []struct {
		name string
		feat ioat.Features
	}{
		{"traditional", ioat.None()},
		{"ioat-dma", ioat.DMAOnly()},
		{"ioat-full", ioat.Full()},
	}
	for _, bc := range cases {
		b.Run(bc.name, func(b *testing.B) {
			p := cost.Default()
			s, na, nb := twoNodes(bc.feat, p)
			ca, cb := Pair(na.st, nb.st, 0, 0)
			const msg = 32 * cost.KB
			src := na.buf(64 * cost.KB)
			dst := nb.buf(64 * cost.KB)

			// Warm-up run to full drain: free lists only reach their
			// high-water mark when all in-flight traffic retires, so the
			// warm phase must include its own drain tail for every slice
			// (chunk pool, pending pool, event arena) to reach final
			// capacity before the measured burst starts.
			const warm = 64
			s.Spawn("warm-tx", func(pr *sim.Proc) {
				for i := 0; i < warm; i++ {
					ca.Send(pr, src, msg)
				}
			})
			s.Spawn("warm-rx", func(pr *sim.Proc) {
				for i := 0; i < warm; i++ {
					cb.Recv(pr, dst, msg)
				}
			})
			s.Run()

			received := 0
			s.Spawn("tx", func(pr *sim.Proc) {
				for i := 0; i < b.N; i++ {
					ca.Send(pr, src, msg)
				}
			})
			s.Spawn("rx", func(pr *sim.Proc) {
				for i := 0; i < b.N; i++ {
					cb.Recv(pr, dst, msg)
					received++
				}
			})

			b.ReportAllocs()
			runtime.GC()
			b.ResetTimer()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			for received < b.N {
				if !s.Step() {
					b.Fatal("simulation drained before all messages arrived")
				}
			}
			runtime.ReadMemStats(&after)
			b.StopTimer()
			// Mallocs is process-wide, so the runtime itself (GC metadata,
			// timers) can contribute a stray object or two; a real leak in
			// the packet path scales with the message count. Allow the
			// former, fail on the latter.
			if n := after.Mallocs - before.Mallocs; n > 4+uint64(b.N)/16 {
				b.Fatalf("steady-state packet path allocated %d objects over %d messages; want 0",
					n, b.N)
			}
		})
	}
}
