// Loss recovery: the minimal retransmission machine a stack arms when a
// fault plan is installed (EnableRecovery). The design is go-back-N at
// chunk granularity with cumulative ACKs:
//
//   - every transmitted chunk carries its stream offset (link.Chunk.Seq)
//     and is remembered in the connection's retransmission queue until
//     cumulatively acknowledged;
//   - the receiver accepts only the next in-order chunk; anything else
//     (a gap after a drop, or a duplicate from a spurious retransmit) is
//     discarded and re-ACKed, so delivery up the stack stays exactly-once
//     and in-order — the tcp:stream conservation ledger would trip
//     immediately on a duplicate accept;
//   - ACKs are pure bookkeeping: they travel after the propagation delay
//     but are never dropped and charge no CPU, so a benign (all-zero)
//     plan perturbs neither timing nor utilization and every golden
//     table stays byte-identical (the differential test pins this). The
//     paper's ACK-processing cost remains charged by the credit path.
//   - the retransmission timer runs per connection for the oldest
//     unacked segment, with Jacobson/Karn RTT estimation, exponential
//     backoff capped at the plan's RTOMax, and a bounded number of
//     consecutive timeouts without progress before the run aborts (a
//     livelock guard: a simulated fabric that eats everything forever
//     would otherwise spin retransmissions endlessly);
//   - dupAckThresh duplicate cumulative ACKs trigger fast retransmit of
//     the whole unacked range (go-back-N, not SACK — the window is a
//     handful of chunks, so selective repeat would buy little realism
//     for considerably more machinery).
//
// Retransmitted chunks charge the sender's segmentation cost
// (SiteTxSend) and transmit-completion work like any send, but do not
// touch the flow-control window (the original transmission still owns
// those credits) and do not re-enter the stream ledger's In side.
package tcp

import (
	"fmt"
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/fault"
	"ioatsim/internal/nic"
	"ioatsim/internal/sim"
	"ioatsim/internal/trace"
)

// Recovery defaults, used for plan fields left at zero.
const (
	defaultRTOMin       = time.Millisecond
	defaultRTOMax       = 100 * time.Millisecond
	defaultDupAckThresh = 3
	defaultMaxRetries   = 24
)

// txSeg is one transmitted-and-unacked chunk on a connection's
// retransmission queue, pooled on the sending stack.
type txSeg struct {
	seq     int64
	bytes   int
	sentAt  sim.Time
	rexmits int
}

// ackEv is one in-flight cumulative acknowledgment, pooled on the
// receiving stack (the side that allocates it).
type ackEv struct {
	conn *Conn // receiving endpoint; the ACK lands on its peer
	ack  int64
}

// EnableRecovery arms the stack's loss-recovery machine for the given
// plan, resolving zero-valued tuning knobs to the package defaults. Host
// construction calls it once per node when a cluster is built with a
// fault plan; a nil plan leaves the stack on the lossless fast path.
func (st *Stack) EnableRecovery(p *fault.Plan) {
	if p == nil {
		return
	}
	st.fp = p
	st.rtoMin = p.RTOMin
	if st.rtoMin == 0 {
		st.rtoMin = defaultRTOMin
	}
	st.rtoMax = p.RTOMax
	if st.rtoMax == 0 {
		st.rtoMax = defaultRTOMax
	}
	if st.rtoMax < st.rtoMin {
		st.rtoMax = st.rtoMin
	}
	st.dupAckThresh = p.DupAckThresh
	if st.dupAckThresh == 0 {
		st.dupAckThresh = defaultDupAckThresh
	}
	switch {
	case p.MaxRetries < 0:
		st.maxRetries = -1
	case p.MaxRetries == 0:
		st.maxRetries = defaultMaxRetries
	default:
		st.maxRetries = p.MaxRetries
	}
	if st.chk != nil {
		st.chk.OnFinish(st.auditRecovery)
	}
}

// auditRecovery runs at Finish on checked runs: every byte the NIC
// handed up was either accepted exactly once or discarded, and every
// connection's acknowledged prefix was actually received by its peer —
// exactly-once delivery, asserted end-to-end at any cutoff point.
func (st *Stack) auditRecovery(ck *check.Checker) {
	ck.Assert(st.DeliveredUpBytes == st.AcceptedBytes+st.RxDiscardBytes,
		"tcp", "%s delivered %d bytes up, but accepted %d + discarded %d",
		st.Name, st.DeliveredUpBytes, st.AcceptedBytes, st.RxDiscardBytes)
	for _, c := range st.conns {
		ck.Assert(c.sndUna <= c.sndNxt,
			"tcp", "%s flow %d acked past its send horizon (una %d, nxt %d)",
			st.Name, c.flowID, c.sndUna, c.sndNxt)
		ck.Assert(len(c.rtxq)-c.rtxHead >= 0,
			"tcp", "%s flow %d negative retransmit queue", st.Name, c.flowID)
		if c.peer != nil {
			ck.Assert(c.sndUna <= c.peer.rcvNxt && c.peer.rcvNxt <= c.sndNxt,
				"tcp", "%s flow %d acked prefix %d outside peer's received stream [%d..%d]",
				st.Name, c.flowID, c.sndUna, c.peer.rcvNxt, c.sndNxt)
		}
	}
}

// trackSeg records one freshly transmitted chunk on the retransmission
// queue and makes sure the RTO timer is running.
func (st *Stack) trackSeg(c *Conn, seq int64, bytes int) {
	var sg *txSeg
	if k := len(st.segFree); k > 0 {
		sg = st.segFree[k-1]
		st.segFree = st.segFree[:k-1]
	} else {
		sg = &txSeg{}
	}
	now := st.S.Now()
	sg.seq, sg.bytes, sg.sentAt, sg.rexmits = seq, bytes, now, 0
	if c.rtxHead > 0 && len(c.rtxq) == cap(c.rtxq) {
		k := copy(c.rtxq, c.rtxq[c.rtxHead:])
		c.rtxq = c.rtxq[:k]
		c.rtxHead = 0
	}
	wasEmpty := c.rtxHead == len(c.rtxq)
	c.rtxq = append(c.rtxq, sg)
	if c.rto == 0 {
		// No RTT sample yet: start conservative (RFC 6298 uses a full
		// second). A timid initial timer fires spuriously the moment a
		// window's worth of queueing delays the first ACK, and spurious
		// retransmits would perturb even a lossless run.
		c.rto = st.rtoMax
	}
	if wasEmpty {
		// Timer semantics: one timer per connection, armed for the
		// oldest unacked segment.
		c.rtoDeadline = now.Add(c.rto)
	}
	st.armRTO(c, c.rtoDeadline)
}

// armRTO makes sure one (and only one) timer event is pending for the
// connection. The deadline moves forward as ACKs arrive; the event
// lazily re-schedules itself instead of being cancelled.
func (st *Stack) armRTO(c *Conn, at sim.Time) {
	if c.rtoScheduled {
		return
	}
	c.rtoScheduled = true
	st.S.ScheduleArg(at.Sub(st.S.Now()), rtoFire, c)
}

// rtoFire is the pre-bound retransmission-timer event.
func rtoFire(a any) {
	c := a.(*Conn)
	st := c.stack
	c.rtoScheduled = false
	if c.sndUna == c.sndNxt {
		// Everything acked; the timer dies and trackSeg re-arms it on
		// the next transmission.
		return
	}
	now := st.S.Now()
	if now < c.rtoDeadline {
		// ACK progress pushed the deadline out while this event was in
		// flight; chase it.
		st.armRTO(c, c.rtoDeadline)
		return
	}
	st.Timeouts++
	c.retries++
	if st.maxRetries >= 0 && c.retries > st.maxRetries {
		msg := fmt.Sprintf(
			"tcp: %s flow %d: %d consecutive retransmission timeouts without progress (una %d, nxt %d) — fabric unrecoverable",
			st.Name, c.flowID, c.retries-1, c.sndUna, c.sndNxt)
		if st.chk != nil {
			st.chk.Failf("tcp", "%s", msg)
		}
		panic(msg)
	}
	if st.obs != nil {
		st.obs.Instant(trace.TidTCP, trace.SiteTCPRTO, int64(c.retries))
	}
	c.rto *= 2
	if c.rto > st.rtoMax {
		c.rto = st.rtoMax
	}
	c.dupAcks = 0
	st.retransmitUnacked(c)
	c.rtoDeadline = now.Add(c.rto)
	st.armRTO(c, c.rtoDeadline)
}

// retransmitUnacked re-sends the whole unacked range (go-back-N). The
// CPU pays the segmentation cost up front on the sender, then the chunks
// enter the fabric. Segment values are copied out of the queue: by the
// time the work drains, ACKs may have recycled the records.
func (st *Stack) retransmitUnacked(c *Conn) {
	n := len(c.rtxq) - c.rtxHead
	if n == 0 {
		return
	}
	type resend struct {
		seq   int64
		bytes int
	}
	batch := make([]resend, 0, n)
	var work time.Duration
	var total int64
	for i := c.rtxHead; i < len(c.rtxq); i++ {
		sg := c.rtxq[i]
		sg.rexmits++
		batch = append(batch, resend{sg.seq, sg.bytes})
		work += st.NIC.TxCost(sg.bytes)
		total += int64(sg.bytes)
	}
	st.Retransmits += int64(n)
	st.RetransmitBytes += total
	if st.chk != nil {
		st.chk.Ledger("tcp:retx").In(total)
	}
	st.CPU.SubmitSite(trace.SiteTxSend, work, func() {
		for _, rs := range batch {
			st.sendRetx(c, rs.seq, rs.bytes)
		}
	})
}

// sendRetx puts one retransmitted chunk on the wire. Unlike a fresh
// send it does not consume window credits and does not re-enter the
// stream ledger — the original transmission owns both.
func (st *Stack) sendRetx(c *Conn, seq int64, bytes int) {
	pm := st.P
	lc := st.chunkPool.Get()
	lc.Seq = seq
	lc.Bytes = bytes
	lc.Frames = pm.Frames(bytes)
	lc.WireBytes = pm.WireBytes(bytes)
	lc.Meta = c.peer
	st.NIC.Port(c.localPort).Send(c.peer.stack.NIC.Port(c.peerPort), lc)
	if st.obs != nil {
		st.obs.Instant(trace.TidTCP, trace.SiteTCPRetx, int64(bytes))
	}
	st.NIC.TxComplete(c.localPort, c, bytes)
}

// acceptChunk is the receiver-side recovery gate, called from onReceive
// before any queueing: accept the chunk iff it is the next in-order
// stream offset, discard (and re-ACK) otherwise. Returns whether the
// caller should continue with normal delivery.
func (st *Stack) acceptChunk(c *Conn, rx *nic.RxChunk) bool {
	seq, n := rx.Chunk.Seq, rx.Chunk.Bytes
	st.DeliveredUpBytes += int64(n)
	if seq != c.rcvNxt {
		// A gap (the go-back-N sender will resend everything from the
		// hole) or a duplicate from a spurious retransmit. Either way
		// the bytes never reach the stream ledger's Out side.
		st.RxDiscards++
		st.RxDiscardBytes += int64(n)
		if st.obs != nil {
			st.obs.Instant(trace.TidTCP, trace.SiteTCPDiscard, int64(n))
		}
		st.sendAck(c)
		rx.Free()
		return false
	}
	c.rcvNxt += int64(n)
	st.AcceptedBytes += int64(n)
	st.sendAck(c)
	return true
}

// sendAck schedules a cumulative acknowledgment of everything received
// in order so far. ACKs ride a reliable path and charge no CPU (see the
// package comment in this file); dropping or pricing them would make a
// benign plan perturb the lossless-fabric timings.
func (st *Stack) sendAck(c *Conn) {
	var ev *ackEv
	if k := len(st.ackFree); k > 0 {
		ev = st.ackFree[k-1]
		st.ackFree = st.ackFree[:k-1]
	} else {
		ev = &ackEv{}
	}
	ev.conn, ev.ack = c, c.rcvNxt
	st.S.ScheduleArg(st.P.PropDelay, ackArrive, ev)
}

// ackArrive is the pre-bound ACK-arrival event on the sending side.
func ackArrive(a any) {
	ev := a.(*ackEv)
	rcv := ev.conn
	snd := rcv.peer
	ack := ev.ack
	rst := rcv.stack
	ev.conn = nil
	rst.ackFree = append(rst.ackFree, ev)

	st := snd.stack
	switch {
	case ack > snd.sndUna:
		st.ackAdvance(snd, ack)
	case ack == snd.sndUna && snd.sndUna < snd.sndNxt:
		snd.dupAcks++
		if snd.dupAcks >= st.dupAckThresh {
			snd.dupAcks = 0
			st.FastRetransmits++
			if st.obs != nil {
				st.obs.Instant(trace.TidTCP, trace.SiteTCPRetx, 0)
			}
			st.retransmitUnacked(snd)
		}
	}
	// ack < sndUna: stale, ignore.
}

// ackAdvance applies cumulative-ACK progress: pop fully-acked segments,
// take an RTT sample from a never-retransmitted one (Karn's rule), and
// restart the timer for whatever remains.
func (st *Stack) ackAdvance(c *Conn, ack int64) {
	now := st.S.Now()
	if st.chk != nil {
		st.chk.Assert(ack <= c.sndNxt,
			"tcp", "%s flow %d acked %d beyond send horizon %d",
			st.Name, c.flowID, ack, c.sndNxt)
	}
	sample := time.Duration(-1)
	for c.rtxHead < len(c.rtxq) {
		sg := c.rtxq[c.rtxHead]
		if sg.seq+int64(sg.bytes) > ack {
			break
		}
		if sample < 0 && sg.rexmits == 0 {
			sample = now.Sub(sg.sentAt)
		}
		c.rtxq[c.rtxHead] = nil
		c.rtxHead++
		*sg = txSeg{}
		st.segFree = append(st.segFree, sg)
	}
	if c.rtxHead == len(c.rtxq) {
		c.rtxq = c.rtxq[:0]
		c.rtxHead = 0
	} else if st.chk != nil {
		// Cumulative ACKs always land on chunk boundaries: the receiver
		// only accepts whole sender chunks, so an ACK splitting a
		// tracked segment means the two sides disagree on segmentation.
		st.chk.Assert(c.rtxq[c.rtxHead].seq == ack,
			"tcp", "%s flow %d ack %d splits segment at %d",
			st.Name, c.flowID, ack, c.rtxq[c.rtxHead].seq)
	}
	c.sndUna = ack
	c.dupAcks = 0
	c.retries = 0
	if sample >= 0 {
		// Jacobson: srtt/rttvar EWMA with the standard 1/8 and 1/4 gains.
		if c.srtt == 0 {
			c.srtt = sample
			c.rttvar = sample / 2
		} else {
			diff := c.srtt - sample
			if diff < 0 {
				diff = -diff
			}
			c.rttvar += (diff - c.rttvar) / 4
			c.srtt += (sample - c.srtt) / 8
		}
		// RFC 6298 with the clock-granularity term: the variance decays
		// to zero on a jitter-free fabric, and srtt alone is a deadline
		// the expected ACK lands exactly on. The rtoMin floor on the
		// margin keeps steady-state jitter from reading as loss.
		margin := 4 * c.rttvar
		if margin < st.rtoMin {
			margin = st.rtoMin
		}
		rto := c.srtt + margin
		if rto < st.rtoMin {
			rto = st.rtoMin
		}
		if rto > st.rtoMax {
			rto = st.rtoMax
		}
		c.rto = rto
	}
	if c.sndUna < c.sndNxt {
		// Timer restart for the new oldest-unacked segment.
		c.rtoDeadline = now.Add(c.rto)
	}
}
