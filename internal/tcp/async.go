package tcp

// Continuation-passing variants of Send/Recv (the SendAsync/RecvReady
// path): the same transfer state machines as the blocking calls, but
// driven by a sim.Task instead of a parked goroutine, so every
// steady-state wake is one event dispatch on the event-loop goroutine
// with zero channel handoffs.
//
// Byte-identity with the blocking path is by construction: each Sender/
// Receiver step performs exactly the event pushes SendOpts/Recv perform
// at exactly the same code points — a CPU charge that would make a Proc
// sleep schedules the task's wake at the same completion time; a window
// or receive-queue stall registers the task where the Proc would park
// and is woken by the very same applyCredit/onReceive push (WakeAny).
// Sequence numbers depend only on push order, so converted loops
// schedule identically, which the golden corpus pins end-to-end.
//
// A Sender/Receiver is created once per connection endpoint (cold path)
// and reused for every transfer; all continuations are bound at
// construction, so the steady state allocates nothing.

import (
	"time"

	"ioatsim/internal/mem"
	"ioatsim/internal/sim"
	"ioatsim/internal/trace"
)

// Sender drives non-blocking sends on one connection endpoint. At most
// one send may be in flight per Sender; the done callback fires (possibly
// synchronously) when the last byte has been handed to the NIC — the
// moment the blocking Send would have returned.
type Sender struct {
	c    *Conn
	task *sim.Task

	src   mem.Buffer
	n     int
	opts  SendOptions
	sent  int
	chunk int // bytes being charged by the in-flight SiteTxSend step
	done  func()

	// Continuations, bound once so steady-state wakes allocate nothing.
	stepLoop func()
	stepWake func()
	stepPost func()
}

// NewSender returns a reusable continuation-passing sender for c, driven
// by t. The task must not be shared with another concurrently-active
// state machine.
func NewSender(c *Conn, t *sim.Task) *Sender {
	s := &Sender{c: c, task: t}
	s.stepLoop = s.loop
	s.stepWake = s.afterWake
	s.stepPost = s.post
	return s
}

// Task returns the driving task.
func (s *Sender) Task() *sim.Task { return s.task }

// Send is the continuation-passing form of Conn.Send: it transmits n
// bytes from src and calls done when the last byte has been handed to
// the NIC. It runs synchronously up to the first suspension point.
func (s *Sender) Send(src mem.Buffer, n int, done func()) {
	s.SendOpts(src, n, SendOptions{}, done)
}

// SendOpts is Send with options.
func (s *Sender) SendOpts(src mem.Buffer, n int, opts SendOptions, done func()) {
	s.src, s.n, s.opts, s.sent, s.done = src, n, opts, 0, done
	s.loop()
}

// loop is the sender's main state: it transmits chunks until the
// transfer completes, the window closes (suspend on the tx-waiter list,
// woken by applyCredit), or a CPU charge suspends the task.
func (s *Sender) loop() {
	c := s.c
	st := c.stack
	pm := st.P
	for {
		if s.sent >= s.n {
			done := s.done
			s.done = nil
			done()
			return
		}
		if c.inflight >= c.window {
			// Window stall: same park point as the blocking send.
			c.txWaiters = append(c.txWaiters, s.task)
			s.task.OnWake(s.stepWake)
			return
		}
		chunk := s.n - s.sent
		if chunk > pm.ChunkMax {
			chunk = pm.ChunkMax
		}
		if free := c.window - c.inflight; chunk > free {
			chunk = free
		}

		var work time.Duration = pm.Syscall
		if !s.opts.ZeroCopy {
			kb := st.txPool.Get()
			srcOff := 0
			if s.src.Size > chunk {
				srcOff = s.sent % (s.src.Size - chunk + 1)
			}
			work += st.Mem.CopyCost(s.src.Addr+mem.Addr(srcOff), kb.Addr, chunk)
			st.txPool.Put(kb)
		}
		work += st.NIC.TxCost(chunk)
		s.chunk = chunk
		if st.CPU.ExecTaskSite(s.task, s.stepPost, trace.SiteTxSend, work) {
			return
		}
		s.postChunk()
	}
}

// afterWake resumes a window-stalled sender: charge the wake-up cost the
// blocking path charges after Park, then re-check the window.
//
//ioat:hotpath
func (s *Sender) afterWake() {
	st := s.c.stack
	if st.CPU.ExecTaskSite(s.task, s.stepLoop, trace.SiteCtxSwitch, st.CPU.WakeCost()) {
		return
	}
	s.loop()
}

// post re-enters the loop after the per-chunk CPU charge completes.
//
//ioat:hotpath
func (s *Sender) post() {
	s.postChunk()
	s.loop()
}

// postChunk hands the charged chunk to the NIC — the exact post-charge
// block of the blocking SendOpts.
//
//ioat:hotpath
func (s *Sender) postChunk() {
	c := s.c
	st := c.stack
	pm := st.P
	chunk := s.chunk
	c.inflight += chunk
	if st.chk != nil {
		st.chk.Assert(chunk > 0 && c.inflight <= c.window,
			"tcp", "%s sent %d-byte chunk, inflight %d over window %d",
			st.Name, chunk, c.inflight, c.window)
		st.chk.Ledger("tcp:stream").In(int64(chunk))
	}
	st.BytesSent += int64(chunk)
	lc := st.chunkPool.Get()
	lc.Bytes = chunk
	lc.Frames = pm.Frames(chunk)
	lc.WireBytes = pm.WireBytes(chunk)
	lc.Meta = c.peer
	if st.fp != nil {
		lc.Seq = c.sndNxt
		st.trackSeg(c, c.sndNxt, chunk)
		c.sndNxt += int64(chunk)
	}
	st.NIC.Port(c.localPort).Send(c.peer.stack.NIC.Port(c.peerPort), lc)
	if st.obs != nil {
		st.obs.Instant(trace.TidTCP, trace.SiteTCPSegment, int64(chunk))
	}
	if st.segHist != nil {
		st.segHist.Observe(float64(chunk))
	}
	st.NIC.TxComplete(c.localPort, c, chunk)
	s.sent += chunk
}

// Receiver drives non-blocking receives on one connection endpoint. At
// most one receive may be in flight per Receiver; done fires when the
// requested bytes have arrived and been copied — the moment the blocking
// Recv would have returned.
type Receiver struct {
	c    *Conn
	task *sim.Task

	dst     mem.Buffer
	need    int
	off     int
	pd      *pending
	m       int // bytes being consumed from pd by the in-flight step
	retired []*pending
	done    func()

	stepBegin   func()
	stepLoop    func()
	stepWake    func()
	stepDMASub  func()
	stepDMAWait func()
	stepPost    func()
}

// NewReceiver returns a reusable continuation-passing receiver for c,
// driven by t.
func NewReceiver(c *Conn, t *sim.Task) *Receiver {
	r := &Receiver{c: c, task: t}
	r.stepBegin = r.begin
	r.stepLoop = r.loop
	r.stepWake = r.afterWake
	r.stepDMASub = r.afterDMASubmitCharge
	r.stepDMAWait = r.afterRecvCharge
	r.stepPost = r.post
	return r
}

// Task returns the driving task.
func (r *Receiver) Task() *sim.Task { return r.task }

// Recv is the continuation-passing form of Conn.Recv: it consumes
// exactly n bytes of the stream into dst and calls done when they have
// all been copied. It runs synchronously up to the first suspension
// point.
func (r *Receiver) Recv(dst mem.Buffer, n int, done func()) {
	c := r.c
	st := c.stack
	pm := st.P
	if n <= 0 {
		done()
		return
	}
	r.dst, r.need, r.off, r.done = dst, n, 0, done
	if st.Feat.DMACopy {
		// Pin the posted buffer once per recv call. posted is only set
		// once the pin charge completes, exactly like the blocking path:
		// a chunk arriving mid-pin must not trigger the eager DMA submit.
		pin := time.Duration(pm.Pages(n)) * pm.PinPerPage
		if st.CPU.ExecTaskSite(r.task, r.stepBegin, trace.SitePin, pin) {
			return
		}
	}
	r.begin()
}

// begin marks the receive as posted and enters the consume loop; it runs
// when the pin charge (if any) has completed.
func (r *Receiver) begin() {
	r.c.posted = true
	r.retired = r.c.doneScratch[:0]
	r.loop()
}

// loop consumes queued chunks until the transfer completes, the queue
// drains (suspend as the rx waiter, woken by onReceive), or a CPU charge
// or DMA wait suspends the task.
func (r *Receiver) loop() {
	c := r.c
	st := c.stack
	pm := st.P
	for {
		if r.need <= 0 {
			r.finish()
			return
		}
		if c.rxAvail == 0 {
			if c.rxWaiter != nil {
				panic("tcp: concurrent Recv on one connection")
			}
			c.rxWaiter = r.task
			r.task.OnWake(r.stepWake)
			return
		}
		pd := c.rxq[c.rxqHead]
		m := pd.remaining()
		if m > r.need {
			m = r.need
		}
		r.pd, r.m = pd, m

		if st.Feat.DMACopy {
			if pd.dma == nil {
				// submitDMA from recv context: the per-frame submit cost
				// charges the reader before the engine sees the chunk.
				frames := pd.rx.Chunk.Frames
				submit := time.Duration(frames) * pm.DMAFrameSubmit
				if st.CPU.ExecTaskSite(r.task, r.stepDMASub, trace.SiteDMASubmit, submit) {
					return
				}
				r.submitDMA()
			}
			if st.CPU.ExecTaskSite(r.task, r.stepDMAWait, trace.SiteRecvCopy, pm.Syscall) {
				return
			}
			if r.pd.dma.WaitTask(r.task, r.stepPost) {
				return
			}
		} else {
			work := pm.Syscall + c.copyCost(pd, m, r.dst, r.off)
			if st.CPU.ExecTaskSite(r.task, r.stepPost, trace.SiteRecvCopy, work) {
				return
			}
		}
		r.consume()
	}
}

// afterWake resumes a queue-drained receiver: charge the wake-up cost,
// then re-check the queue.
//
//ioat:hotpath
func (r *Receiver) afterWake() {
	st := r.c.stack
	if st.CPU.ExecTaskSite(r.task, r.stepLoop, trace.SiteCtxSwitch, st.CPU.WakeCost()) {
		return
	}
	r.loop()
}

// afterDMASubmitCharge runs once the submit cost has been charged: hand
// the chunk to the engine, then charge the recv syscall and wait for the
// copy.
//
//ioat:hotpath
func (r *Receiver) afterDMASubmitCharge() {
	st := r.c.stack
	r.submitDMA()
	if st.CPU.ExecTaskSite(r.task, r.stepDMAWait, trace.SiteRecvCopy, st.P.Syscall) {
		return
	}
	r.afterRecvCharge()
}

// afterRecvCharge waits for the engine copy after the recv syscall
// charge completes.
//
//ioat:hotpath
func (r *Receiver) afterRecvCharge() {
	if r.pd.dma.WaitTask(r.task, r.stepPost) {
		return
	}
	r.post()
}

// submitDMA mirrors Stack.submitDMA's engine hand-off (the CPU charge
// has already been applied by the caller).
//
//ioat:hotpath
func (r *Receiver) submitDMA() {
	st := r.c.stack
	pd := r.pd
	pd.dma = st.DMA.Submit(pd.rx.Bufs[0].Addr, 0, pd.rx.Chunk.Bytes)
}

// post re-enters the loop after a copy (CPU or engine) completes.
//
//ioat:hotpath
func (r *Receiver) post() {
	r.consume()
	r.loop()
}

// consume applies the consumed bytes to the connection — the exact
// post-copy block of the blocking Recv.
//
//ioat:hotpath
func (r *Receiver) consume() {
	c := r.c
	st := c.stack
	pd, m := r.pd, r.m
	pd.off += m
	c.rxAvail -= m
	r.need -= m
	if st.bkGauge != nil {
		st.noteBacklog(int64(-m))
	}
	if st.chk != nil {
		st.chk.Assert(pd.off <= pd.rx.Chunk.Bytes,
			"tcp", "%s consumed %d bytes of a %d-byte chunk", st.Name, pd.off, pd.rx.Chunk.Bytes)
		st.chk.Assert(c.rxAvail >= 0,
			"tcp", "%s receive backlog went negative (%d)", st.Name, c.rxAvail)
	}
	r.off = (r.off + m) % max(r.dst.Size, 1)
	if pd.remaining() == 0 {
		c.rxq[c.rxqHead] = nil
		c.rxqHead++
		if c.rxqHead == len(c.rxq) {
			c.rxq = c.rxq[:0]
			c.rxqHead = 0
		}
		r.retired = append(r.retired, pd)
	}
	c.credit(m)
}

// finish releases kernel buffers and fires the done callback — the
// blocking Recv's return path.
//
//ioat:hotpath
func (r *Receiver) finish() {
	c := r.c
	st := c.stack
	c.posted = false
	for _, pd := range r.retired {
		pd.rx.Free()
		if pd.dma != nil {
			// The completion has fired and its waiter resumed (this very
			// transfer waited on it), so it is safe to rearm for reuse.
			st.DMA.Recycle(pd.dma)
		}
		*pd = pending{}
		st.pendFree = append(st.pendFree, pd)
	}
	c.doneScratch = r.retired[:0]
	r.retired = nil
	r.pd = nil
	done := r.done
	r.done = nil
	done()
}
