package tcp

import (
	"math"
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
)

// FuzzTCPLossRecovery drives one checked transfer through the recovery
// machine under fuzzed loss: either a deterministic drop mask (with the
// window clamped to one chunk, so any mask with a clear bit guarantees
// progress) or calibrated random loss (per-chunk drop probability capped
// at 0.75 regardless of how many frames the fuzzed MTU packs into a
// chunk — naive per-frame rates go to certain-loss at tiny MTUs).
// Whatever the geometry and loss pattern, the run must terminate with
// exactly-once in-order delivery, a balanced stream ledger, drained
// kernel buffers, and a clean invariant audit.
func FuzzTCPLossRecovery(f *testing.F) {
	f.Add(uint32(64*cost.KB), uint16(1500), false, uint8(0), uint64(1), uint8(10), false)
	f.Add(uint32(256*cost.KB), uint16(1500), true, uint8(3), uint64(7), uint8(75), false)
	f.Add(uint32(200*cost.KB+17), uint16(9000), false, uint8(2), uint64(3), uint8(40), true)
	f.Add(uint32(3*cost.KB), uint16(53), false, uint8(1), uint64(9), uint8(60), false)
	f.Add(uint32(128*cost.KB), uint16(576), true, uint8(2), uint64(0xdead), uint8(255), true)

	f.Fuzz(func(t *testing.T, n32 uint32, mtu16 uint16, tso bool, featSel uint8,
		seed uint64, loss8 uint8, useMask bool) {
		n := int(n32)%(256*cost.KB) + 1
		mtu := int(mtu16)
		if mtu < 53 {
			mtu = 53
		}
		if mtu > 9000 {
			mtu = 9000
		}
		feats := []ioat.Features{ioat.None(), ioat.Linux(), ioat.DMAOnly(), ioat.Full()}
		feat := feats[int(featSel)%len(feats)]

		p := cost.Default()
		p.MTU = mtu
		p.TSO = tso

		plan := fault.Plan{Seed: seed, MaxRetries: -1}
		if useMask {
			// Deterministic schedule. Go-back-N can resonate with a
			// periodic mask when it retransmits batches (the batch
			// stride can pin one segment onto set bits forever), so
			// clamp the window to a single chunk: every retry then
			// advances the mask index by one and must reach the forced
			// clear bit.
			p.SockBuf = p.ChunkMax
			bits := int(seed%63) + 2
			mask := seed | (seed >> 7)
			mask &^= 1 << (seed % uint64(bits)) // at least one clear bit
			plan.DropMask = mask
			plan.MaskBits = bits
		} else {
			// Calibrated random loss: per-chunk drop probability q,
			// translated to the per-frame rate of the largest chunk this
			// geometry produces.
			q := float64(loss8%76) / 100
			chunk := n
			if chunk > p.ChunkMax {
				chunk = p.ChunkMax
			}
			plan.LossRate = 1 - math.Pow(1-q, 1/float64(p.Frames(chunk)))
		}

		fn := newFaultNet(feat, p, plan)
		ca, cb := Pair(fn.sa, fn.sb, 0, 0)
		src := fn.sa.Mem.Space.Alloc(min(n, 64*cost.KB), 0)
		dst := fn.sb.Mem.Space.Alloc(min(n, 64*cost.KB), 0)
		fn.s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, n) })
		received := false
		fn.s.Spawn("rx", func(pr *sim.Proc) {
			cb.Recv(pr, dst, n)
			received = true
		})
		fn.s.Run()

		id := func() string {
			return "n=" + itod(n) + " mtu=" + itod(mtu) + " feat=" + feat.Label()
		}
		if !received {
			t.Fatalf("%s: receiver never completed", id())
		}
		if fn.sa.BytesSent != int64(n) || fn.sb.BytesReceived != int64(n) {
			t.Fatalf("%s: sent=%d received=%d — bytes lost or duplicated",
				id(), fn.sa.BytesSent, fn.sb.BytesReceived)
		}
		if fn.sb.AcceptedBytes != int64(n) {
			t.Fatalf("%s: accepted %d of %d stream bytes", id(), fn.sb.AcceptedBytes, n)
		}
		if got := fn.sb.DeliveredUpBytes; got != fn.sb.AcceptedBytes+fn.sb.RxDiscardBytes {
			t.Fatalf("%s: receive ledger unbalanced: up=%d accepted=%d discarded=%d",
				id(), got, fn.sb.AcceptedBytes, fn.sb.RxDiscardBytes)
		}
		dropped := fn.in.Totals().LinkDroppedBytes
		if dropped > 0 && fn.sa.RetransmitBytes == 0 {
			t.Fatalf("%s: %d bytes dropped but nothing retransmitted", id(), dropped)
		}
		if fl := fn.chk.Ledger("tcp:stream").InFlight(); fl != 0 {
			t.Fatalf("%s: %d stream bytes unaccounted at end of run", id(), fl)
		}
		if live := fn.sb.NIC.PoolLiveBytes(); live != 0 {
			t.Fatalf("%s: %d bytes of kernel buffers leaked", id(), live)
		}
		fn.chk.Finish()
		if err := fn.chk.Err(); err != nil {
			t.Fatalf("%s: %v", id(), err)
		}
	})
}

// itod renders a small positive int (test labels only).
func itod(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
