package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/cpu"
	"ioatsim/internal/dma"
	"ioatsim/internal/ioat"
	"ioatsim/internal/mem"
	"ioatsim/internal/nic"
	"ioatsim/internal/sim"
)

type node struct {
	st *Stack
}

func newNode(s *sim.Simulator, p *cost.Params, feat ioat.Features, name string, ports int) *node {
	m := mem.NewModel(p)
	c := cpu.New(s, p)
	e := dma.New(s, p, m)
	n := nic.New(s, p, c, m, e, feat, name, ports)
	return &node{st: NewStack(s, p, c, m, e, n, feat, name)}
}

func (n *node) buf(size int) mem.Buffer { return n.st.Mem.Space.Alloc(size, 0) }

func twoNodes(feat ioat.Features, p *cost.Params) (*sim.Simulator, *node, *node) {
	s := sim.New()
	a := newNode(s, p, feat, "a", 6)
	b := newNode(s, p, feat, "b", 6)
	return s, a, b
}

func TestStreamDelivery(t *testing.T) {
	p := cost.Default()
	s, a, b := twoNodes(ioat.None(), p)
	ca, cb := Pair(a.st, b.st, 0, 0)
	const n = 256 * cost.KB
	var got int
	src := a.buf(64 * cost.KB)
	dst := b.buf(64 * cost.KB)
	s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, n) })
	s.Spawn("rx", func(pr *sim.Proc) {
		cb.Recv(pr, dst, n)
		got = n
	})
	end := s.Run()
	if got != n {
		t.Fatal("receiver did not get all bytes")
	}
	if a.st.BytesSent != n || b.st.BytesReceived != n {
		t.Fatalf("accounting: sent=%d recv=%d", a.st.BytesSent, b.st.BytesReceived)
	}
	// 256 KB at ~941 Mb/s goodput is ~2.2 ms; allow up to 4 ms.
	if end > sim.Time(4*time.Millisecond) {
		t.Fatalf("transfer took %v, far above wire time", end)
	}
}

func TestThroughputNearLineRate(t *testing.T) {
	p := cost.Default()
	s, a, b := twoNodes(ioat.None(), p)
	ca, cb := Pair(a.st, b.st, 0, 0)
	const n = 8 * cost.MB
	src := a.buf(64 * cost.KB)
	dst := b.buf(64 * cost.KB)
	s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, n) })
	var done sim.Time
	s.Spawn("rx", func(pr *sim.Proc) {
		cb.Recv(pr, dst, n)
		done = pr.Now()
	})
	s.Run()
	mbps := float64(n*8) / time.Duration(done).Seconds() / 1e6
	if mbps < 850 || mbps > 945 {
		t.Fatalf("single-port goodput = %.1f Mb/s, want ~900-941", mbps)
	}
}

func TestWindowBlocksSender(t *testing.T) {
	p := cost.Default()
	p.SockBuf = 128 * cost.KB
	s, a, b := twoNodes(ioat.None(), p)
	ca, cb := Pair(a.st, b.st, 0, 0)
	src := a.buf(64 * cost.KB)
	dst := b.buf(64 * cost.KB)
	var sendDone, recvStart sim.Time = -1, -1
	s.Spawn("tx", func(pr *sim.Proc) {
		ca.Send(pr, src, 1*cost.MB)
		sendDone = pr.Now()
	})
	s.Spawn("rx", func(pr *sim.Proc) {
		pr.Sleep(20 * time.Millisecond) // receiver absent: window must cap flight
		recvStart = pr.Now()
		cb.Recv(pr, dst, 1*cost.MB)
	})
	s.Run()
	if sendDone < 0 {
		t.Fatal("sender never finished")
	}
	if sendDone < recvStart {
		t.Fatalf("sender finished at %v before receiver started at %v — window did not block", sendDone, recvStart)
	}
	if got := cb.Available(); got != 0 {
		t.Fatalf("unconsumed bytes: %d", got)
	}
}

func TestInflightNeverExceedsWindow(t *testing.T) {
	p := cost.Default()
	p.SockBuf = 128 * cost.KB
	s, a, b := twoNodes(ioat.None(), p)
	ca, cb := Pair(a.st, b.st, 0, 0)
	src := a.buf(64 * cost.KB)
	dst := b.buf(64 * cost.KB)
	s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, 2*cost.MB) })
	s.Spawn("rx", func(pr *sim.Proc) { cb.Recv(pr, dst, 2*cost.MB) })
	bad := false
	var watch func()
	watch = func() {
		if ca.inflight > ca.window {
			bad = true
		}
		if s.Pending() > 0 {
			s.Schedule(100*time.Microsecond, watch)
		}
	}
	s.Schedule(0, watch)
	s.Run()
	if bad {
		t.Fatal("inflight exceeded window")
	}
}

func TestIOATUsesLessCPU(t *testing.T) {
	// The core claim (Fig. 3a): same transfer, same bandwidth, lower
	// receiver CPU with I/OAT.
	busy := func(feat ioat.Features) (time.Duration, sim.Time) {
		p := cost.Default()
		s, a, b := twoNodes(feat, p)
		ca, cb := Pair(a.st, b.st, 0, 0)
		src := a.buf(64 * cost.KB)
		dst := b.buf(64 * cost.KB)
		var done sim.Time
		s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, 4*cost.MB) })
		s.Spawn("rx", func(pr *sim.Proc) {
			cb.Recv(pr, dst, 4*cost.MB)
			done = pr.Now()
		})
		s.Run()
		return b.st.CPU.BusyTime(), done
	}
	plainBusy, plainDone := busy(ioat.None())
	ioatBusy, ioatDone := busy(ioat.Linux())
	if ioatBusy >= plainBusy {
		t.Fatalf("I/OAT receiver CPU %v not below non-I/OAT %v", ioatBusy, plainBusy)
	}
	// Both should be wire-limited: completion times within 5%.
	ratio := float64(ioatDone) / float64(plainDone)
	if ratio < 0.90 || ratio > 1.10 {
		t.Fatalf("completion ratio %v — link-bound transfers should tie", ratio)
	}
	// Relative CPU benefit should be substantial (paper: ~20-38%).
	rel := float64(plainBusy-ioatBusy) / float64(plainBusy)
	if rel < 0.10 {
		t.Fatalf("relative CPU benefit only %.1f%%", rel*100)
	}
}

func TestDialAccept(t *testing.T) {
	p := cost.Default()
	s, a, b := twoNodes(ioat.None(), p)
	l := b.st.Listen("svc")
	var msg int
	src := a.buf(4 * cost.KB)
	dst := b.buf(4 * cost.KB)
	s.Spawn("client", func(pr *sim.Proc) {
		c := a.st.Dial(pr, b.st, "svc", 0, 0)
		c.Send(pr, src, 4*cost.KB)
	})
	s.Spawn("server", func(pr *sim.Proc) {
		c := l.Accept(pr)
		c.Recv(pr, dst, 4*cost.KB)
		msg = 4 * cost.KB
	})
	s.Run()
	if msg != 4*cost.KB {
		t.Fatal("request never arrived through Dial/Accept")
	}
}

func TestDuplicateListenPanics(t *testing.T) {
	p := cost.Default()
	_, _, b := twoNodes(ioat.None(), p)
	b.st.Listen("svc")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for duplicate listener")
		}
	}()
	b.st.Listen("svc")
}

func TestZeroCopySendCheaper(t *testing.T) {
	busy := func(zc bool) time.Duration {
		p := cost.Default()
		s, a, b := twoNodes(ioat.None(), p)
		ca, cb := Pair(a.st, b.st, 0, 0)
		src := a.buf(64 * cost.KB)
		dst := b.buf(64 * cost.KB)
		s.Spawn("tx", func(pr *sim.Proc) {
			ca.SendOpts(pr, src, 4*cost.MB, SendOptions{ZeroCopy: zc})
		})
		s.Spawn("rx", func(pr *sim.Proc) { cb.Recv(pr, dst, 4*cost.MB) })
		s.Run()
		return a.st.CPU.BusyTime()
	}
	if busy(true) >= busy(false) {
		t.Fatal("sendfile-style zero copy did not reduce sender CPU")
	}
}

func TestTSOReducesSenderCPU(t *testing.T) {
	busy := func(tso bool) time.Duration {
		p := cost.Default()
		p.TSO = tso
		s, a, b := twoNodes(ioat.None(), p)
		ca, cb := Pair(a.st, b.st, 0, 0)
		src := a.buf(64 * cost.KB)
		dst := b.buf(64 * cost.KB)
		s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, 4*cost.MB) })
		s.Spawn("rx", func(pr *sim.Proc) { cb.Recv(pr, dst, 4*cost.MB) })
		s.Run()
		return a.st.CPU.BusyTime()
	}
	if busy(true) >= busy(false) {
		t.Fatal("TSO did not reduce sender CPU")
	}
}

func TestMultiPortScalesBandwidth(t *testing.T) {
	run := func(ports int) float64 {
		p := cost.Default()
		s, a, b := twoNodes(ioat.Linux(), p)
		var done sim.Time
		wg := sim.NewWaitGroup(s)
		wg.Add(ports)
		const per = 4 * cost.MB
		for i := 0; i < ports; i++ {
			i := i
			ca, cb := Pair(a.st, b.st, i, i)
			src := a.buf(64 * cost.KB)
			dst := b.buf(64 * cost.KB)
			s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, per) })
			s.Spawn("rx", func(pr *sim.Proc) {
				cb.Recv(pr, dst, per)
				wg.Done()
			})
		}
		s.Spawn("main", func(pr *sim.Proc) {
			wg.Wait(pr)
			done = pr.Now()
		})
		s.Run()
		return float64(ports*per*8) / time.Duration(done).Seconds() / 1e6
	}
	one := run(1)
	four := run(4)
	if four < 3*one {
		t.Fatalf("4 ports = %.0f Mb/s, 1 port = %.0f — poor scaling", four, one)
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() sim.Time {
		p := cost.Default()
		s, a, b := twoNodes(ioat.Linux(), p)
		ca, cb := Pair(a.st, b.st, 0, 0)
		src := a.buf(64 * cost.KB)
		dst := b.buf(64 * cost.KB)
		var done sim.Time
		s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, 1*cost.MB) })
		s.Spawn("rx", func(pr *sim.Proc) {
			cb.Recv(pr, dst, 1*cost.MB)
			done = pr.Now()
		})
		s.Run()
		return done
	}
	if run() != run() {
		t.Fatal("identical runs diverged")
	}
}

func TestMessageBoundariesAcrossChunks(t *testing.T) {
	// Header-then-body reads that straddle chunk boundaries must work.
	p := cost.Default()
	s, a, b := twoNodes(ioat.None(), p)
	ca, cb := Pair(a.st, b.st, 0, 0)
	src := a.buf(64 * cost.KB)
	dst := b.buf(64 * cost.KB)
	total := 0
	s.Spawn("tx", func(pr *sim.Proc) {
		ca.Send(pr, src, 200*cost.KB) // > 3 chunks
	})
	s.Spawn("rx", func(pr *sim.Proc) {
		for _, n := range []int{64, 100*cost.KB - 64, 100 * cost.KB} {
			cb.Recv(pr, dst, n)
			total += n
		}
	})
	s.Run()
	if total != 200*cost.KB {
		t.Fatalf("consumed %d, want %d", total, 200*cost.KB)
	}
}

func TestKernelBuffersReleased(t *testing.T) {
	p := cost.Default()
	s, a, b := twoNodes(ioat.Linux(), p)
	ca, cb := Pair(a.st, b.st, 0, 0)
	src := a.buf(64 * cost.KB)
	dst := b.buf(64 * cost.KB)
	s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, 2*cost.MB) })
	s.Spawn("rx", func(pr *sim.Proc) { cb.Recv(pr, dst, 2*cost.MB) })
	s.Run()
	if live := b.st.NIC.PoolLiveBytes(); live != 0 {
		t.Fatalf("kernel buffer leak: %d bytes live", live)
	}
}

// Property: any sequence of message sizes is delivered completely and in
// order, regardless of feature set, and kernel buffers drain.
func TestTransferConservationProperty(t *testing.T) {
	run := func(sizes []uint16, accel bool) bool {
		p := cost.Default()
		feat := ioat.None()
		if accel {
			feat = ioat.Linux()
		}
		s, a, b := twoNodes(feat, p)
		ca, cb := Pair(a.st, b.st, 0, 0)
		src, dst := a.buf(64*cost.KB), b.buf(64*cost.KB)
		var total int64
		msgs := make([]int, 0, len(sizes))
		for _, sz := range sizes {
			n := int(sz)%(200*cost.KB) + 1
			msgs = append(msgs, n)
			total += int64(n)
		}
		if len(msgs) == 0 {
			return true
		}
		s.Spawn("tx", func(pr *sim.Proc) {
			for _, n := range msgs {
				ca.Send(pr, src, n)
			}
		})
		received := false
		s.Spawn("rx", func(pr *sim.Proc) {
			for _, n := range msgs {
				cb.Recv(pr, dst, n)
			}
			received = true
		})
		s.Run()
		return received &&
			a.st.BytesSent == total &&
			b.st.BytesReceived == total &&
			b.st.NIC.PoolLiveBytes() == 0
	}
	f := func(sizes []uint16, accel bool) bool { return run(sizes, accel) }
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestCopyCostEveryConsumeOffset drives the CPU copy path of Recv across
// a multi-frame chunk at every consume offset: the message arrives as one
// chunk spanning several frames (the last one partial), and the receiver
// drains it in recv sizes that together visit every frame index and every
// frame-boundary crossing. The checked invariant in copyCost (frame index
// strictly inside the chunk's buffer list — formerly a silent clamp) must
// hold at each step, and the run's conservation ledgers must balance.
func TestCopyCostEveryConsumeOffset(t *testing.T) {
	p := cost.Default()
	mss := p.MSS()
	msg := 3*mss + 500 // 4 frames, last one partial
	for _, step := range []int{1, 7, mss - 1, mss, mss + 1, msg} {
		chk := check.New()
		s := sim.New(sim.WithProbe(chk))
		a := newNode(s, p, ioat.None(), "a", 1)
		b := newNode(s, p, ioat.None(), "b", 1)
		ca, cb := Pair(a.st, b.st, 0, 0)
		src := a.buf(8 * cost.KB)
		dst := b.buf(8 * cost.KB)
		var got int
		s.Spawn("tx", func(pr *sim.Proc) { ca.Send(pr, src, msg) })
		s.Spawn("rx", func(pr *sim.Proc) {
			for got < msg {
				n := step
				if n > msg-got {
					n = msg - got
				}
				cb.Recv(pr, dst, n)
				got += n
			}
		})
		s.Run()
		if got != msg {
			t.Fatalf("step %d: received %d of %d bytes", step, got, msg)
		}
		chk.Finish()
		if err := chk.Err(); err != nil {
			t.Fatalf("step %d: invariant violated: %v", step, err)
		}
	}
}
