package pvfs

import (
	"testing"
	"testing/quick"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
)

func testbed(feat ioat.Features, iods int) (*host.Cluster, *host.Node, *System) {
	cl, compute, server := func() (*host.Cluster, *host.Node, *host.Node) {
		c := host.NewCluster(cost.Default(), 1)
		return c, c.Add("compute", feat, 6), c.Add("server", feat, 6)
	}()
	return cl, compute, New(server, iods, 0)
}

func TestCreateOpenRoundTrip(t *testing.T) {
	cl, compute, sys := testbed(ioat.Linux(), 4)
	var created, opened FileMeta
	var ok bool
	cl.S.Spawn("client", func(p *sim.Proc) {
		c := NewClient(p, compute, sys)
		created = c.Create(p, "f", 8*cost.MB)
		opened, ok = c.Open(p, "f")
	})
	cl.S.Run()
	if !ok {
		t.Fatal("open failed")
	}
	if created != opened {
		t.Fatalf("metadata mismatch: %+v vs %+v", created, opened)
	}
	if created.Servers != 4 || created.Stripe != DefaultStripe {
		t.Fatalf("bad meta %+v", created)
	}
}

func TestOpenMissingFile(t *testing.T) {
	cl, compute, sys := testbed(ioat.Linux(), 2)
	var ok bool
	cl.S.Spawn("client", func(p *sim.Proc) {
		c := NewClient(p, compute, sys)
		_, ok = c.Open(p, "missing")
	})
	cl.S.Run()
	if ok {
		t.Fatal("opened a missing file")
	}
}

func TestStripingDistributesData(t *testing.T) {
	cl, compute, sys := testbed(ioat.Linux(), 6)
	cl.S.Spawn("client", func(p *sim.Proc) {
		c := NewClient(p, compute, sys)
		c.Create(p, "big", 12*cost.MB)
	})
	cl.S.Run()
	for i, iod := range sys.IODs {
		f := iod.FS.MustOpen("big")
		if f.Size() != 2*cost.MB {
			t.Fatalf("iod %d holds %d bytes, want 2MB", i, f.Size())
		}
	}
}

// Property: spans exactly tile the requested range, stay inside each
// server's local file, and round-robin across servers.
func TestSpansProperty(t *testing.T) {
	cl, compute, sys := testbed(ioat.None(), 5)
	var client *Client
	cl.S.Spawn("client", func(p *sim.Proc) {
		client = NewClient(p, compute, sys)
	})
	cl.S.Run()

	f := func(off32, n32 uint32) bool {
		m := FileMeta{Name: "x", Size: 64 * cost.MB, Stripe: DefaultStripe, Servers: 5}
		off := int(off32) % (m.Size - 1)
		n := int(n32)%(4*cost.MB) + 1
		if off+n > m.Size {
			n = m.Size - off
		}
		total := 0
		for _, sp := range client.spans(m, off, n) {
			if sp.server < 0 || sp.server >= m.Servers {
				return false
			}
			if sp.len <= 0 || sp.len > m.Stripe {
				return false
			}
			if sp.localOff < 0 || sp.localOff+sp.len > localBytes(m, sp.server)+m.Stripe {
				return false
			}
			total += sp.len
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalBytesSumsToFileSize(t *testing.T) {
	f := func(size32 uint32, servers8 uint8) bool {
		servers := int(servers8)%8 + 1
		size := int(size32) % (64 * cost.MB)
		if size < DefaultStripe { // avoid the pre-allocation floor
			size = DefaultStripe * servers
		}
		m := FileMeta{Size: size, Stripe: DefaultStripe, Servers: servers}
		sum := 0
		for i := 0; i < servers; i++ {
			sum += localBytes(m, i)
		}
		// Pre-allocation can pad empty servers by one stripe each.
		return sum >= size && sum <= size+servers*DefaultStripe
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCompletes(t *testing.T) {
	cl, compute, sys := testbed(ioat.Linux(), 6)
	var done sim.Time
	cl.S.Spawn("client", func(p *sim.Proc) {
		c := NewClient(p, compute, sys)
		m := c.Create(p, "f", 12*cost.MB)
		buf := compute.Buf(12 * cost.MB)
		c.Read(p, m, 0, 12*cost.MB, buf)
		done = p.Now()
	})
	cl.S.Run()
	if done <= 0 {
		t.Fatal("read never finished")
	}
	// 12 MB over 6 parallel GbE streams: at least 2MB/port at ~117MB/s
	// is ~17ms; allow generous slack but catch serialization bugs.
	if done > sim.Time(80*time.Millisecond) {
		t.Fatalf("read took %v — streams not parallel?", done)
	}
	if done < sim.Time(15*time.Millisecond) {
		t.Fatalf("read took %v — faster than the wire allows", done)
	}
}

func TestWriteCompletes(t *testing.T) {
	cl, compute, sys := testbed(ioat.Linux(), 6)
	var done sim.Time
	cl.S.Spawn("client", func(p *sim.Proc) {
		c := NewClient(p, compute, sys)
		m := c.Create(p, "f", 6*cost.MB)
		buf := compute.Buf(6 * cost.MB)
		c.Write(p, m, 0, 6*cost.MB, buf)
		done = p.Now()
	})
	cl.S.Run()
	if done <= 0 {
		t.Fatal("write never finished")
	}
}

func TestRunReadBenchmark(t *testing.T) {
	o := Options{
		Feat: ioat.Linux(), Seed: 1, IODs: 4, Clients: 2,
		Warm: 10 * time.Millisecond, Meas: 30 * time.Millisecond,
	}
	m := Run(o)
	if m.MBps <= 0 {
		t.Fatalf("MBps = %v", m.MBps)
	}
	// 4 iods on 4 ports: ceiling ~470 MB/s.
	if m.MBps > 480 {
		t.Fatalf("MBps = %v exceeds the 4-port wire", m.MBps)
	}
	if m.ClientCPU <= 0 || m.ServerCPU <= 0 {
		t.Fatal("idle CPUs during benchmark")
	}
}

func TestRunWriteBenchmark(t *testing.T) {
	o := Options{
		Feat: ioat.None(), Seed: 1, IODs: 4, Clients: 2, Write: true,
		Warm: 10 * time.Millisecond, Meas: 30 * time.Millisecond,
	}
	m := Run(o)
	if m.MBps <= 0 {
		t.Fatalf("MBps = %v", m.MBps)
	}
}

func TestIOATReducesReadClientCPU(t *testing.T) {
	run := func(feat ioat.Features) Metrics {
		return Run(Options{
			Feat: feat, Seed: 1, IODs: 6, Clients: 4,
			Warm: 10 * time.Millisecond, Meas: 40 * time.Millisecond,
		})
	}
	plain := run(ioat.None())
	accel := run(ioat.Linux())
	if accel.ClientCPU >= plain.ClientCPU {
		t.Fatalf("I/OAT client CPU %v not below non-I/OAT %v",
			accel.ClientCPU, plain.ClientCPU)
	}
	if accel.MBps < plain.MBps*0.98 {
		t.Fatalf("I/OAT throughput regressed: %v vs %v", accel.MBps, plain.MBps)
	}
}
