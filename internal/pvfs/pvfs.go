// Package pvfs implements a Parallel Virtual File System in the style of
// PVFS1 (Carns et al., ALS 2000), the paper's §6 workload: a metadata
// manager providing a cluster-wide name space, I/O daemons (iods) each
// storing file stripes on a local ramfs, and a client library that
// stripes reads and writes across all servers in parallel.
package pvfs

import (
	"fmt"
	"time"

	"ioatsim/internal/host"
	"ioatsim/internal/mem"
	"ioatsim/internal/msg"
	"ioatsim/internal/ramfs"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

// DefaultStripe is the stripe unit (PVFS's default of 64 KB).
const DefaultStripe = 64 * 1024

// Application-level cost constants.
const (
	// ReqProc is the iod's fixed cost to parse and dispatch one request.
	ReqProc = 8 * time.Microsecond
	// MetaOp is the manager's cost for one metadata operation.
	MetaOp = 25 * time.Microsecond
)

// FileMeta describes a striped file.
type FileMeta struct {
	Name    string
	Size    int
	Stripe  int
	Servers int
}

// stripeServer returns which iod stores the stripe containing offset.
func (f FileMeta) stripeServer(off int) int {
	return (off / f.Stripe) % f.Servers
}

// opKind is an iod request type.
type opKind int

const (
	opRead opKind = iota
	opWrite
)

// iodReq is one request to an I/O daemon.
type iodReq struct {
	Op   opKind
	Name string
	Off  int // offset within the iod's local stripe file
	Len  int
}

// metaReq is a manager operation.
type metaReq struct {
	Op   string // "create" | "open"
	Meta FileMeta
}

// metaResp answers a manager operation.
type metaResp struct {
	Meta FileMeta
	OK   bool
}

// System is one PVFS deployment: a manager and a set of iods, which the
// paper co-locates on Testbed 1's server node (one iod per GbE port).
type System struct {
	ManagerNode *host.Node
	IODs        []*IOD
	meta        map[string]FileMeta
	stripe      int
}

// IOD is one I/O daemon.
type IOD struct {
	Node  *host.Node
	Port  int
	FS    *ramfs.FS
	index int
	// staging is the daemon's I/O buffer between socket and file system.
	staging mem.Buffer
}

// New builds a PVFS system whose iods all run on serverNode, one per
// port, storing data in per-iod ramfs instances. The metadata manager
// runs on the same node (it does not participate in data transfer,
// paper §3.2).
func New(serverNode *host.Node, iods int, stripe int) *System {
	if stripe <= 0 {
		stripe = DefaultStripe
	}
	sys := &System{ManagerNode: serverNode, meta: make(map[string]FileMeta), stripe: stripe}
	for i := 0; i < iods; i++ {
		iod := &IOD{
			Node:    serverNode,
			Port:    i % len(serverNode.NIC.Ports),
			FS:      ramfs.New(serverNode.Mem),
			index:   i,
			staging: serverNode.Buf(stripe),
		}
		sys.IODs = append(sys.IODs, iod)
		iod.serve()
	}
	sys.serveManager()
	return sys
}

// serveManager runs the metadata service.
func (sys *System) serveManager() {
	l := sys.ManagerNode.Stack.Listen("pvfs-mgr")
	sys.ManagerNode.S.Spawn("pvfs-mgr-accept", func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := l.Accept(p)
			sys.ManagerNode.S.Spawn(fmt.Sprintf("pvfs-mgr-%d", i), func(wp *sim.Proc) {
				sys.managerWorker(wp, msg.Wrap(conn))
			})
		}
	})
}

func (sys *System) managerWorker(p *sim.Proc, mc *msg.Conn) {
	for {
		env := mc.Recv(p, mem.Buffer{})
		req := env.Meta.(metaReq)
		sys.ManagerNode.CPU.Exec(p, MetaOp)
		var resp metaResp
		switch req.Op {
		case "create":
			m := req.Meta
			m.Stripe = sys.stripe
			m.Servers = len(sys.IODs)
			sys.meta[m.Name] = m
			// Allocate the stripe files on each iod.
			for i, iod := range sys.IODs {
				iod.FS.Create(m.Name, localBytes(m, i))
			}
			resp = metaResp{Meta: m, OK: true}
		case "open":
			m, ok := sys.meta[req.Meta.Name]
			resp = metaResp{Meta: m, OK: ok}
		default:
			panic("pvfs: unknown manager op " + req.Op)
		}
		mc.Send(p, resp, 128, mem.Buffer{}, tcp.SendOptions{})
	}
}

// localBytes returns how many bytes of an n-byte file land on iod i.
func localBytes(m FileMeta, i int) int {
	full := m.Size / m.Stripe
	rem := m.Size % m.Stripe
	n := (full / m.Servers) * m.Stripe
	extra := full % m.Servers
	if i < extra {
		n += m.Stripe
	} else if i == extra {
		n += rem
	}
	if n == 0 {
		n = m.Stripe // pre-allocate one stripe so offsets stay valid
	}
	return n
}

// serve runs the iod's request loop.
func (iod *IOD) serve() {
	service := fmt.Sprintf("pvfs-iod%d", iod.index)
	l := iod.Node.Stack.Listen(service)
	iod.Node.S.Spawn(service+"-accept", func(p *sim.Proc) {
		for i := 0; ; i++ {
			conn := l.Accept(p)
			iod.Node.CPU.RegisterThread()
			startIODWorker(iod, conn, fmt.Sprintf("%s-w%d", service, i))
		}
	})
}

// Client is one compute node's PVFS client library instance.
type Client struct {
	sys     *System
	node    *host.Node
	mgr     *msg.Conn
	conns   []*msg.Conn   // one per iod
	workers []*spanWorker // one per iod, reused across Read/Write calls
}

// NewClient connects a compute node to the system, one connection per
// iod (data flows directly between client and iods, paper §3.2). The
// iod connection for server i uses the client port i%ports, matching the
// paper's VLAN-per-port wiring.
func NewClient(p *sim.Proc, node *host.Node, sys *System) *Client {
	c := &Client{sys: sys, node: node}
	mgrConn := node.Stack.Dial(p, sys.ManagerNode.Stack, "pvfs-mgr", 0, 0)
	c.mgr = msg.Wrap(mgrConn)
	for i, iod := range sys.IODs {
		ports := len(node.NIC.Ports)
		conn := node.Stack.Dial(p, iod.Node.Stack,
			fmt.Sprintf("pvfs-iod%d", i), i%ports, iod.Port)
		c.conns = append(c.conns, msg.Wrap(conn))
	}
	for i := range c.conns {
		c.workers = append(c.workers, newSpanWorker(c, i))
	}
	return c
}

// Create creates a striped file of the given size.
func (c *Client) Create(p *sim.Proc, name string, size int) FileMeta {
	c.node.CPU.Exec(p, c.node.P.Syscall)
	c.mgr.Send(p, metaReq{Op: "create", Meta: FileMeta{Name: name, Size: size}},
		128, mem.Buffer{}, tcp.SendOptions{})
	resp := c.mgr.Recv(p, mem.Buffer{}).Meta.(metaResp)
	if !resp.OK {
		panic("pvfs: create failed")
	}
	return resp.Meta
}

// Open fetches the metadata for an existing file.
func (c *Client) Open(p *sim.Proc, name string) (FileMeta, bool) {
	c.node.CPU.Exec(p, c.node.P.Syscall)
	c.mgr.Send(p, metaReq{Op: "open", Meta: FileMeta{Name: name}},
		128, mem.Buffer{}, tcp.SendOptions{})
	resp := c.mgr.Recv(p, mem.Buffer{}).Meta.(metaResp)
	return resp.Meta, resp.OK
}

// span is one stripe-aligned piece of a request on one server.
type span struct {
	server   int
	localOff int
	len      int
}

// spans splits [off, off+n) into per-server stripe pieces.
func (c *Client) spans(m FileMeta, off, n int) []span {
	var out []span
	for n > 0 {
		stripeOff := off % m.Stripe
		l := m.Stripe - stripeOff
		if l > n {
			l = n
		}
		srv := m.stripeServer(off)
		// Local offset: how many full stripes of this file this server
		// holds before this one, times stripe, plus in-stripe offset.
		stripeIdx := off / m.Stripe
		localStripe := stripeIdx / m.Servers
		out = append(out, span{server: srv, localOff: localStripe*m.Stripe + stripeOff, len: l})
		off += l
		n -= l
	}
	return out
}

// Read reads [off, off+n) of the file into dst, issuing the per-server
// stripe requests in parallel and gathering the results.
func (c *Client) Read(p *sim.Proc, m FileMeta, off, n int, dst mem.Buffer) {
	c.parallelIO(p, m, off, n, dst, opRead)
}

// Write writes [off, off+n) of the file from src, striping in parallel.
func (c *Client) Write(p *sim.Proc, m FileMeta, off, n int, src mem.Buffer) {
	c.parallelIO(p, m, off, n, src, opWrite)
}

// parallelIO fans the spans out to the per-server span workers
// (continuation state machines, async.go) and waits for all of them —
// the PVFS client library's parallel data path. Each worker's Start
// pushes the one event the old per-call Spawn pushed.
func (c *Client) parallelIO(p *sim.Proc, m FileMeta, off, n int, buf mem.Buffer, op opKind) {
	if n <= 0 {
		return
	}
	c.node.CPU.Exec(p, c.node.P.Syscall)
	perServer := make([][]span, len(c.conns))
	for _, sp := range c.spans(m, off, n) {
		perServer[sp.server] = append(perServer[sp.server], sp)
	}
	wg := sim.NewWaitGroup(c.node.S)
	for srv, list := range perServer {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		c.workers[srv].start(m, op, buf, list, wg, fmt.Sprintf("pvfs-io-%s-%d", m.Name, srv))
	}
	wg.Wait(p)
}
