package pvfs

import (
	"fmt"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/host"
	"ioatsim/internal/ioat"
	"ioatsim/internal/sim"
)

// Options configure a pvfs-test style run on Testbed 1: node 2 hosts the
// iods (one per GbE port), node 1 hosts the compute processes.
type Options struct {
	P    *cost.Params
	Feat ioat.Features
	Seed uint64

	IODs    int
	Clients int
	// Region overrides the per-client region size; 0 means the paper's
	// 2N megabytes for N iods.
	Region int
	Write  bool

	// Check runs the simulation under the runtime invariant checker and
	// panics on any violation at the end of the run.
	Check bool

	// Strict upgrades Check to fail-fast (panic at the violating event).
	Strict bool

	// Fault, when non-nil, runs the file system under the given fault
	// plan (see internal/fault).
	Fault *fault.Plan

	// Obs attaches observability sinks to the cluster (see host.Observability).
	Obs host.Observability

	Warm, Meas time.Duration
}

func (o *Options) defaults() {
	if o.P == nil {
		o.P = cost.Default()
	}
	if o.IODs == 0 {
		o.IODs = 6
	}
	if o.Clients == 0 {
		o.Clients = o.IODs
	}
	if o.Region == 0 {
		o.Region = 2 * o.IODs * cost.MB
	}
	if o.Warm == 0 {
		o.Warm = 60 * time.Millisecond
	}
	if o.Meas == 0 {
		o.Meas = 240 * time.Millisecond
	}
}

// Metrics is one measured pvfs-test configuration.
type Metrics struct {
	// MBps is aggregate client goodput in 10^6 bytes per second, the
	// unit the paper plots.
	MBps      float64
	ServerCPU float64
	ClientCPU float64
}

// Run executes the concurrent read or write benchmark of §6.2.
func Run(o Options) Metrics {
	o.defaults()
	var opts []host.Option
	switch {
	case o.Strict:
		opts = append(opts, host.WithStrictCheck())
	case o.Check:
		opts = append(opts, host.WithCheck())
	}
	if o.Fault != nil {
		opts = append(opts, host.WithFault(*o.Fault))
	}
	if o.Obs.Enabled() {
		opts = append(opts, host.WithObservability(o.Obs))
	}
	cl := host.NewCluster(o.P, o.Seed, opts...)
	compute := cl.Add("compute", o.Feat, 6)
	server := cl.Add("server", o.Feat, 6)
	sys := New(server, o.IODs, 0)

	for i := 0; i < o.Clients; i++ {
		i := i
		compute.CPU.RegisterThread()
		cl.S.Spawn(fmt.Sprintf("compute%d", i), func(p *sim.Proc) {
			c := NewClient(p, compute, sys)
			meta := c.Create(p, fmt.Sprintf("data%d", i), o.Region)
			buf := compute.Buf(o.Region)
			for {
				if o.Write {
					c.Write(p, meta, 0, o.Region, buf)
				} else {
					c.Read(p, meta, 0, o.Region, buf)
				}
			}
		})
	}

	// Goodput is measured at the data-receiving node's transport (the
	// compute node for reads, the server node for writes); the region
	// granularity of the client loop is too coarse for the window.
	recvSide := compute
	if o.Write {
		recvSide = server
	}
	cl.S.RunUntil(sim.Time(o.Warm))
	cl.ResetMeters()
	mark := recvSide.Stack.BytesReceived
	cl.S.RunUntil(sim.Time(o.Warm + o.Meas))

	m := Metrics{
		MBps:      float64(recvSide.Stack.BytesReceived-mark) / o.Meas.Seconds() / 1e6,
		ServerCPU: server.CPU.Utilization(),
		ClientCPU: compute.CPU.Utilization(),
	}
	cl.MustVerify()
	return m
}
