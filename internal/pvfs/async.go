package pvfs

// Continuation state machines for the PVFS data path: the iod request
// loop and the client library's per-server span workers run as
// event-driven tasks, so the steady-state stripe transfers execute on
// the event-loop goroutine with zero channel handoffs. Cold paths — the
// metadata manager, Create/Open, connection setup — keep the blocking
// Proc API.
//
// Each machine performs exactly the charges and transfers of the
// blocking loop it replaces, at the same code points, so the event
// schedule (and the figure tables) is byte-identical.

import (
	"time"

	"ioatsim/internal/mem"
	"ioatsim/internal/msg"
	"ioatsim/internal/sim"
	"ioatsim/internal/tcp"
)

// iodWorker services one client connection: reads stream file data from
// the local ramfs to the socket (read + write, the PVFS1 data path),
// writes land in the local ramfs after the socket receive.
type iodWorker struct {
	iod  *IOD
	mc   *msg.Async
	task *sim.Task
	req  iodReq

	stepGotReq   func(msg.Envelope)
	stepDispatch func()
	stepReply    func()
	stepLoop     func()
}

// startIODWorker schedules the worker's first step as the one event the
// old per-connection Spawn scheduled.
func startIODWorker(iod *IOD, conn *tcp.Conn, name string) {
	w := &iodWorker{iod: iod, task: iod.Node.S.NewTask(name)}
	w.stepGotReq = w.gotReq
	w.stepDispatch = w.dispatch
	w.stepReply = w.reply
	w.stepLoop = w.loop
	w.task.Start(func() {
		w.mc = msg.NewAsync(msg.Wrap(conn), w.task)
		w.loop()
	})
}

func (w *iodWorker) loop() { w.mc.Recv(w.iod.staging, w.stepGotReq) }

func (w *iodWorker) gotReq(env msg.Envelope) {
	w.req = env.Meta.(iodReq)
	if w.iod.Node.CPU.ExecTask(w.task, w.stepDispatch, ReqProc) {
		return
	}
	w.dispatch()
}

func (w *iodWorker) dispatch() {
	iod := w.iod
	f := iod.FS.MustOpen(w.req.Name)
	var cost time.Duration
	switch w.req.Op {
	case opRead:
		// read(): page cache -> staging buffer, then send.
		cost = iod.FS.ReadCost(f, w.req.Off, w.req.Len, iod.staging.Addr)
	case opWrite:
		// Data arrived with the request envelope into staging;
		// write(): staging -> page cache, then ack.
		cost = iod.FS.WriteCost(f, w.req.Off, w.req.Len, iod.staging.Addr)
	}
	if iod.Node.CPU.ExecTask(w.task, w.stepReply, cost) {
		return
	}
	w.reply()
}

func (w *iodWorker) reply() {
	switch w.req.Op {
	case opRead:
		w.mc.Send("data", w.req.Len, w.iod.staging, tcp.SendOptions{}, w.stepLoop)
	case opWrite:
		w.mc.Send("ack", 0, mem.Buffer{}, tcp.SendOptions{}, w.stepLoop)
	}
}

// spanWorker drives one server's share of a striped request — the
// client library's per-server data path. One worker per iod connection,
// created at client setup and restarted for each Read/Write; Start
// pushes the same single event the old per-call Spawn pushed.
type spanWorker struct {
	c    *Client
	srv  int
	task *sim.Task
	mc   *msg.Async

	m    FileMeta
	op   opKind
	buf  mem.Buffer
	list []span
	i    int
	wg   *sim.WaitGroup

	stepLoop func()
	stepSent func()
	stepGot  func(msg.Envelope)
}

func newSpanWorker(c *Client, srv int) *spanWorker {
	w := &spanWorker{c: c, srv: srv, task: c.node.S.NewTask("")}
	w.mc = msg.NewAsync(c.conns[srv], w.task)
	w.stepLoop = w.loop
	w.stepSent = w.sent
	w.stepGot = w.got
	return w
}

// start launches the worker over its span list; wg.Done fires when the
// last span completes.
func (w *spanWorker) start(m FileMeta, op opKind, buf mem.Buffer, list []span,
	wg *sim.WaitGroup, name string) {
	w.m, w.op, w.buf, w.list, w.i, w.wg = m, op, buf, list, 0, wg
	w.task.SetName(name)
	w.task.Start(w.stepLoop)
}

func (w *spanWorker) loop() {
	if w.i >= len(w.list) {
		wg := w.wg
		w.wg, w.list = nil, nil
		wg.Done()
		return
	}
	sp := w.list[w.i]
	switch w.op {
	case opRead:
		w.mc.Send(iodReq{Op: opRead, Name: w.m.Name, Off: sp.localOff, Len: sp.len},
			128, mem.Buffer{}, tcp.SendOptions{}, w.stepSent)
	case opWrite:
		w.mc.Send(iodReq{Op: opWrite, Name: w.m.Name, Off: sp.localOff, Len: sp.len},
			sp.len, w.buf, tcp.SendOptions{}, w.stepSent)
	}
}

func (w *spanWorker) sent() {
	if w.op == opRead {
		w.mc.Recv(w.buf, w.stepGot)
		return
	}
	w.mc.Recv(mem.Buffer{}, w.stepGot)
}

func (w *spanWorker) got(msg.Envelope) {
	w.i++
	w.loop()
}
