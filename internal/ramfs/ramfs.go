// Package ramfs models a memory-resident file system (the paper's §6.1
// PVFS-over-ramfs configuration, and the web tier's page cache): files
// live in the node's simulated address space, and reads/writes are priced
// as memory copies through the cache model.
package ramfs

import (
	"fmt"
	"sort"
	"time"

	"ioatsim/internal/mem"
)

// File is one stored file.
type File struct {
	Name string
	Buf  mem.Buffer
}

// Size returns the file size in bytes.
func (f File) Size() int { return f.Buf.Size }

// FS is one node's memory-resident file system.
type FS struct {
	Mem   *mem.Model
	files map[string]File
}

// New returns an empty file system on the node's memory.
func New(m *mem.Model) *FS {
	return &FS{Mem: m, files: make(map[string]File)}
}

// Create allocates a file of the given size, replacing any previous file
// of the same name.
func (fs *FS) Create(name string, size int) File {
	if size < 0 {
		panic("ramfs: negative file size")
	}
	f := File{Name: name, Buf: fs.Mem.Space.Alloc(size, 0)}
	fs.files[name] = f
	return f
}

// Open returns the named file.
func (fs *FS) Open(name string) (File, bool) {
	f, ok := fs.files[name]
	return f, ok
}

// MustOpen returns the named file or panics — for workloads that generate
// their own traces and must never miss.
func (fs *FS) MustOpen(name string) File {
	f, ok := fs.files[name]
	if !ok {
		panic(fmt.Sprintf("ramfs: no such file %q", name))
	}
	return f
}

// Remove deletes the named file (the space is not reclaimed: addresses
// are never reused, which keeps cache bookkeeping honest).
func (fs *FS) Remove(name string) bool {
	_, ok := fs.files[name]
	delete(fs.files, name)
	return ok
}

// Len returns the number of stored files.
func (fs *FS) Len() int { return len(fs.files) }

// Names returns all file names, sorted (deterministic iteration).
func (fs *FS) Names() []string {
	out := make([]string, 0, len(fs.files))
	//ioatlint:allow simdeterminism — keys are collected then sorted below; the range order never escapes
	for n := range fs.files {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the bytes stored across all files.
func (fs *FS) TotalBytes() int64 {
	var total int64
	//ioatlint:allow simdeterminism — an integer sum is commutative; the range order cannot affect it
	for _, f := range fs.files {
		total += int64(f.Buf.Size)
	}
	return total
}

// ReadCost prices copying [off, off+n) of the file into dst — the page
// cache to user buffer copy of a read() call.
func (fs *FS) ReadCost(f File, off, n int, dst mem.Addr) time.Duration {
	checkRange(f, off, n)
	return fs.Mem.CopyCost(f.Buf.Addr+mem.Addr(off), dst, n)
}

// WriteCost prices copying n bytes from src into [off, off+n) of the
// file — the user buffer to page cache copy of a write() call.
func (fs *FS) WriteCost(f File, off, n int, src mem.Addr) time.Duration {
	checkRange(f, off, n)
	return fs.Mem.CopyCost(src, f.Buf.Addr+mem.Addr(off), n)
}

func checkRange(f File, off, n int) {
	if off < 0 || n < 0 || off+n > f.Buf.Size {
		panic(fmt.Sprintf("ramfs: range [%d,%d) outside file %q of %d bytes",
			off, off+n, f.Name, f.Buf.Size))
	}
}
