package ramfs

import (
	"testing"

	"ioatsim/internal/cost"
	"ioatsim/internal/mem"
)

func newFS() *FS {
	return New(mem.NewModel(cost.Default()))
}

func TestCreateOpen(t *testing.T) {
	fs := newFS()
	f := fs.Create("a.html", 4096)
	if f.Size() != 4096 {
		t.Fatalf("size = %d", f.Size())
	}
	got, ok := fs.Open("a.html")
	if !ok || got.Buf.Addr != f.Buf.Addr {
		t.Fatal("open returned wrong file")
	}
	if _, ok := fs.Open("missing"); ok {
		t.Fatal("opened a missing file")
	}
}

func TestCreateReplaces(t *testing.T) {
	fs := newFS()
	fs.Create("f", 100)
	f2 := fs.Create("f", 200)
	got := fs.MustOpen("f")
	if got.Size() != 200 || got.Buf.Addr != f2.Buf.Addr {
		t.Fatal("create did not replace")
	}
	if fs.Len() != 1 {
		t.Fatalf("len = %d", fs.Len())
	}
}

func TestRemove(t *testing.T) {
	fs := newFS()
	fs.Create("f", 100)
	if !fs.Remove("f") {
		t.Fatal("remove failed")
	}
	if fs.Remove("f") {
		t.Fatal("double remove succeeded")
	}
}

func TestNamesSorted(t *testing.T) {
	fs := newFS()
	for _, n := range []string{"c", "a", "b"} {
		fs.Create(n, 10)
	}
	names := fs.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestTotalBytes(t *testing.T) {
	fs := newFS()
	fs.Create("a", 100)
	fs.Create("b", 200)
	if fs.TotalBytes() != 300 {
		t.Fatalf("total = %d", fs.TotalBytes())
	}
}

func TestReadWriteCosts(t *testing.T) {
	fs := newFS()
	f := fs.Create("data", 64*cost.KB)
	user := fs.Mem.Space.Alloc(64*cost.KB, 0)
	cold := fs.ReadCost(f, 0, 64*cost.KB, user.Addr)
	warm := fs.ReadCost(f, 0, 64*cost.KB, user.Addr)
	if warm >= cold {
		t.Fatal("second read not cheaper (page cache warm)")
	}
	w := fs.WriteCost(f, 0, 32*cost.KB, user.Addr)
	if w <= 0 {
		t.Fatal("write cost zero")
	}
}

func TestRangeChecks(t *testing.T) {
	fs := newFS()
	f := fs.Create("data", 100)
	user := fs.Mem.Space.Alloc(100, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range read did not panic")
		}
	}()
	fs.ReadCost(f, 50, 100, user.Addr)
}

func TestMustOpenPanics(t *testing.T) {
	fs := newFS()
	defer func() {
		if recover() == nil {
			t.Fatal("MustOpen on missing file did not panic")
		}
	}()
	fs.MustOpen("nope")
}
