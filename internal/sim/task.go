package sim

import "sync/atomic"

// Task is an event-driven continuation: the goroutine-free counterpart of
// Proc for steady-state hot loops. Where a Proc parks its goroutine at
// every blocking point (two host context switches per simulated wake), a
// Task is a plain state machine whose current continuation runs to
// completion on the event-loop goroutine — a wake is one ordinary event
// dispatch, with no channel handoff.
//
// A Task shares the event shape of every Proc wake-up: waking it pushes
// one pre-bound (func(any), arg) event through ScheduleArg, exactly as
// resumeProc does. Sequence numbers depend only on push order, so code
// converted from a Proc to a Task schedules byte-identically as long as
// it performs the same pushes at the same points (the golden corpus pins
// this end-to-end).
//
// Protocol: before any operation that can suspend, the current state
// machine installs its step function with OnWake (suspending helpers such
// as cpu.ExecTask and Completion.WaitTask take the continuation
// explicitly). The step function then returns; the scheduled wake event
// re-enters it. Continuations must be pre-bound (method values stored
// once at construction) so the steady state allocates nothing.
type Task struct {
	sim  *Simulator
	name string
	cont func()
}

// NewTask returns an idle task. It does not schedule anything: call
// Start, or install a continuation with OnWake and wake it explicitly.
func (s *Simulator) NewTask(name string) *Task {
	return &Task{sim: s, name: name}
}

// Name returns the label the task was created with.
func (t *Task) Name() string { return t.name }

// Sim returns the owning simulator.
func (t *Task) Sim() *Simulator { return t.sim }

// Now returns the current virtual time.
func (t *Task) Now() Time { return t.sim.now }

// SetName relabels the task (observability only; outcomes never depend
// on the name).
func (t *Task) SetName(name string) { t.name = name }

// OnWake installs fn as the continuation the next wake runs. The
// continuation stays installed across wakes until replaced, so a state
// machine that suspends repeatedly installs its step once per phase, not
// once per wake.
func (t *Task) OnWake(fn func()) { t.cont = fn }

// Start installs fn and schedules the task's first wake at the current
// time — one event push, mirroring what Spawn pushes for a Proc.
func (t *Task) Start(fn func()) {
	t.cont = fn
	t.Wake()
}

// Wake schedules the task's continuation to run at the current time,
// behind already-pending same-time events.
//
//ioat:hotpath
func (t *Task) Wake() { t.sim.ScheduleArg(0, resumeTask, t) }

// WakeAfter schedules the continuation after virtual duration d.
//
//ioat:hotpath
func (t *Task) WakeAfter(d Duration) { t.sim.ScheduleArg(d, resumeTask, t) }

// WakeAt schedules the continuation at absolute time at.
//
//ioat:hotpath
func (t *Task) WakeAt(at Time) { t.sim.AtArg(at, resumeTask, t) }

// resumeTask is the pre-bound callback behind every task wake-up — the
// same zero-allocation event shape as resumeProc, dispatched in the same
// (time, sequence) order, but running the continuation directly on the
// event-loop goroutine instead of handing off to a parked goroutine.
//
//ioat:hotpath
func resumeTask(a any) {
	t := a.(*Task)
	if t.sim.procProbe != nil {
		t.sim.procProbe.ProcRun(t.name, t.sim.now)
	}
	t.cont()
}

// Wake schedules a parked waiter — a *Proc blocked in Park or an idle
// *Task — to resume at the current time. Components that keep waiter
// lists usable by both kinds of context (the transport's window and
// receive waiters) store them as `any` and wake them through here; both
// arms push the same single pre-bound event.
//
//ioat:hotpath
func (s *Simulator) WakeAny(w any) {
	switch v := w.(type) {
	case *Proc:
		s.ScheduleArg(0, resumeProc, v)
	case *Task:
		s.ScheduleArg(0, resumeTask, v)
	default:
		panic("sim: WakeAny of something that is neither *Proc nor *Task")
	}
}

// globalProcSwitches accumulates goroutine handoffs (runProc calls, each
// costing two host context switches: event loop -> process goroutine and
// back) across every simulator in the process, flushed once per
// Run/RunUntil/Step like globalExecuted. Task wakes never count — that
// is the point of Tasks — so the counter measures exactly the scheduler
// overhead the continuation conversion removes. Outcomes never depend on
// it.
var globalProcSwitches atomic.Uint64

// GlobalProcSwitches reports the total event-loop-to-goroutine handoffs
// performed by all simulators in this process so far.
func GlobalProcSwitches() uint64 { return globalProcSwitches.Load() }
