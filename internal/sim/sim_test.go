package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestScheduleOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(30*time.Nanosecond, func() { got = append(got, 3) })
	s.Schedule(10*time.Nanosecond, func() { got = append(got, 1) })
	s.Schedule(20*time.Nanosecond, func() { got = append(got, 2) })
	end := s.Run()
	if end != Time(30) {
		t.Fatalf("end time = %v, want 30ns", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(5*time.Nanosecond, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 100; i++ {
		if got[i] != i {
			t.Fatalf("same-time events not FIFO at %d: %v", i, got[i])
		}
	}
}

func TestNestedSchedule(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(10, func() {
		fired = append(fired, s.Now())
		s.Schedule(15, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 25 {
		t.Fatalf("fired = %v, want [10 25]", fired)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	s.Schedule(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i)*time.Microsecond, func() { count++ })
	}
	s.RunUntil(Time(5 * time.Microsecond.Nanoseconds()))
	if count != 5 {
		t.Fatalf("events before deadline = %d, want 5", count)
	}
	if s.Now() != Time(5*time.Microsecond.Nanoseconds()) {
		t.Fatalf("now = %v, want 5us", s.Now())
	}
	s.Run()
	if count != 10 {
		t.Fatalf("total events = %d, want 10", count)
	}
}

func TestStop(t *testing.T) {
	s := New()
	var count int
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("events after stop = %d, want 3", count)
	}
	s.Run()
	if count != 10 {
		t.Fatalf("events after resume = %d, want 10", count)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock matches each event's scheduled time.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New()
		var fired []Time
		for _, d := range delays {
			d := Duration(d)
			s.Schedule(d, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		sorted := make([]Time, len(fired))
		copy(sorted, fired)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	s := New()
	var marks []Time
	s.Spawn("p", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(100 * time.Nanosecond)
		marks = append(marks, p.Now())
		p.Sleep(50 * time.Nanosecond)
		marks = append(marks, p.Now())
	})
	s.Run()
	want := []Time{0, 100, 150}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("marks = %v, want %v", marks, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New()
	var order []string
	for _, name := range []string{"a", "b"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, name)
				p.Sleep(10)
			}
		})
	}
	s.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestChanSendRecv(t *testing.T) {
	s := New()
	ch := NewChan[int](s)
	var got []int
	s.Spawn("recv", func(p *Proc) {
		for {
			v, ok := ch.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.Spawn("send", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			ch.Send(i)
			p.Sleep(10)
		}
		ch.Close()
	})
	s.Run()
	if len(got) != 5 {
		t.Fatalf("received %v, want 5 values", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got = %v, want ordered 1..5", got)
		}
	}
}

func TestChanBlocksUntilSend(t *testing.T) {
	s := New()
	ch := NewChan[string](s)
	var recvAt Time = -1
	s.Spawn("recv", func(p *Proc) {
		ch.Recv(p)
		recvAt = p.Now()
	})
	s.Spawn("send", func(p *Proc) {
		p.Sleep(500)
		ch.Send("x")
	})
	s.Run()
	if recvAt != 500 {
		t.Fatalf("recvAt = %v, want 500", recvAt)
	}
}

func TestResourceSerializes(t *testing.T) {
	s := New()
	r := NewResource(s, 1)
	var spans [][2]Time
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			r.Acquire(p)
			start := p.Now()
			p.Sleep(100)
			spans = append(spans, [2]Time{start, p.Now()})
			r.Release()
		})
	}
	s.Run()
	if len(spans) != 3 {
		t.Fatalf("spans = %v", spans)
	}
	for i := 1; i < len(spans); i++ {
		if spans[i][0] < spans[i-1][1] {
			t.Fatalf("overlapping critical sections: %v", spans)
		}
	}
}

func TestResourceCapacity(t *testing.T) {
	s := New()
	r := NewResource(s, 2)
	var maxConc, conc int
	for i := 0; i < 6; i++ {
		s.Spawn("w", func(p *Proc) {
			r.Acquire(p)
			conc++
			if conc > maxConc {
				maxConc = conc
			}
			p.Sleep(100)
			conc--
			r.Release()
		})
	}
	s.Run()
	if maxConc != 2 {
		t.Fatalf("max concurrency = %d, want 2", maxConc)
	}
}

func TestResourceAcquireN(t *testing.T) {
	s := New()
	r := NewResource(s, 4)
	var order []int
	s.Spawn("big", func(p *Proc) {
		r.AcquireN(p, 3)
		order = append(order, 3)
		p.Sleep(100)
		r.ReleaseN(3)
	})
	s.Spawn("big2", func(p *Proc) {
		p.Sleep(1)
		r.AcquireN(p, 4) // must wait for everything
		order = append(order, 4)
		r.ReleaseN(4)
	})
	s.Spawn("small", func(p *Proc) {
		p.Sleep(2)
		r.Acquire(p) // fits now, but FIFO puts it behind big2
		order = append(order, 1)
		r.Release()
	})
	s.Run()
	if len(order) != 3 || order[0] != 3 || order[1] != 4 || order[2] != 1 {
		t.Fatalf("order = %v, want [3 4 1] (FIFO)", order)
	}
}

func TestWaitGroup(t *testing.T) {
	s := New()
	wg := NewWaitGroup(s)
	var doneAt Time = -1
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		d := Duration(i * 100)
		s.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	s.Spawn("main", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	s.Run()
	if doneAt != 300 {
		t.Fatalf("doneAt = %v, want 300", doneAt)
	}
}

func TestCompletion(t *testing.T) {
	s := New()
	c := s.NewCompletion()
	var gotAt Time = -1
	s.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		gotAt = p.Now()
	})
	s.Schedule(250, func() { c.Complete() })
	s.Run()
	if gotAt != 250 {
		t.Fatalf("gotAt = %v, want 250", gotAt)
	}
	if !c.Done() {
		t.Fatal("completion not done")
	}
}

func TestCompletionBeforeWait(t *testing.T) {
	s := New()
	c := s.NewCompletion()
	c.Complete()
	var passed bool
	s.Spawn("waiter", func(p *Proc) {
		c.Wait(p) // must not block
		passed = true
	})
	s.Run()
	if !passed {
		t.Fatal("waiter blocked on completed completion")
	}
}

func TestGateBroadcast(t *testing.T) {
	s := New()
	g := NewGate(s)
	var woke int
	for i := 0; i < 5; i++ {
		s.Spawn("w", func(p *Proc) {
			g.Wait(p)
			woke++
		})
	}
	s.Schedule(100, func() { g.Open() })
	s.Run()
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

// Property: a single-capacity resource under random hold times never
// admits two holders at once and serves all requesters.
func TestResourceMutualExclusionProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		nn := int(n%20) + 1
		rnd := rand.New(rand.NewSource(seed))
		s := New()
		r := NewResource(s, 1)
		inside := 0
		violated := false
		served := 0
		for i := 0; i < nn; i++ {
			hold := Duration(rnd.Intn(50) + 1)
			start := Duration(rnd.Intn(50))
			s.SpawnAfter(start, "w", func(p *Proc) {
				r.Acquire(p)
				inside++
				if inside > 1 {
					violated = true
				}
				p.Sleep(hold)
				inside--
				r.Release()
				served++
			})
		}
		s.Run()
		return !violated && served == nn
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		s := New()
		ch := NewChan[int](s)
		var marks []Time
		for i := 0; i < 4; i++ {
			s.Spawn("p", func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Duration(10 + j))
					ch.Send(j)
				}
			})
		}
		s.Spawn("c", func(p *Proc) {
			for i := 0; i < 12; i++ {
				ch.Recv(p)
				marks = append(marks, p.Now())
			}
		})
		s.Run()
		return marks
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500).String(); got != "1.5µs" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := Time(2e9).Seconds(); got != 2.0 {
		t.Fatalf("Seconds = %v", got)
	}
}
