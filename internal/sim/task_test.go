package sim

import (
	"testing"
	"time"
)

// parkingProc spawns a process that appends tag to *log on every wake and
// parks again, then runs the simulator until the process reaches its
// first park.
func parkingProc(s *Simulator, tag string, log *[]string) *Proc {
	p := s.Spawn(tag, func(p *Proc) {
		for {
			p.Park()
			*log = append(*log, tag)
		}
	})
	s.Run()
	return p
}

// TestTaskProcWakeOrder proves the tentpole invariant: a Task wake and a
// Proc wake are the same event shape, so same-time wakes dispatch in
// strict push (sequence) order regardless of which kind of context they
// resume.
func TestTaskProcWakeOrder(t *testing.T) {
	s := New()
	var log []string
	p := parkingProc(s, "proc", &log)

	task := s.NewTask("task")
	task.OnWake(func() { log = append(log, "task") })

	// Interleave same-time wakes; dispatch order must equal push order.
	task.Wake()
	s.Wake(p)
	task.Wake()
	s.Wake(p)
	task.Wake()
	s.Run()

	want := []string{"task", "proc", "task", "proc", "task"}
	if len(log) != len(want) {
		t.Fatalf("got %d wakes %v, want %v", len(log), log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("wake order %v, want %v", log, want)
		}
	}
}

// TestTaskProcTimeOrder checks that time still dominates sequence: a task
// wake pushed first but timestamped later dispatches after a proc wake
// pushed second at an earlier time, and vice versa.
func TestTaskProcTimeOrder(t *testing.T) {
	s := New()
	var log []string
	p := parkingProc(s, "proc", &log)

	task := s.NewTask("task")
	task.OnWake(func() { log = append(log, "task") })

	task.WakeAfter(2 * time.Microsecond) // pushed first, fires second
	s.ScheduleArg(time.Microsecond, resumeProc, p)
	s.Run()

	base := s.Now()
	task.WakeAt(base.Add(time.Microsecond)) // pushed first, fires first
	s.ScheduleArg(2*time.Microsecond, resumeProc, p)
	s.Run()

	want := []string{"proc", "task", "task", "proc"}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("wake order %v, want %v", log, want)
		}
	}
}

// TestTaskStartMirrorsSpawn checks that Start pushes exactly one event,
// ordered against a Spawn by push order alone — converted code that swaps
// a Spawn for a Start keeps its schedule.
func TestTaskStartMirrorsSpawn(t *testing.T) {
	s := New()
	var log []string

	task := s.NewTask("task")
	task.Start(func() { log = append(log, "task") })
	s.Spawn("proc", func(p *Proc) { log = append(log, "proc") })
	before := s.Pending()
	if before != 2 {
		t.Fatalf("Start+Spawn left %d events pending, want 2", before)
	}
	s.Run()

	want := []string{"task", "proc"}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("start order %v, want %v", log, want)
		}
	}
}

// TestTaskOnWakeSticky checks that a continuation stays installed across
// wakes until replaced: state machines install one step per phase, not
// one per wake.
func TestTaskOnWakeSticky(t *testing.T) {
	s := New()
	task := s.NewTask("task")
	n := 0
	task.OnWake(func() { n++ })
	task.Wake()
	task.Wake()
	s.Run()
	task.Wake()
	s.Run()
	if n != 3 {
		t.Fatalf("continuation ran %d times, want 3", n)
	}
}

// TestCompletionWaitTask covers both WaitTask paths: already-fired
// (returns false, caller continues inline, no event pushed) and suspend
// (returns true, Complete wakes the task's continuation).
func TestCompletionWaitTask(t *testing.T) {
	s := New()
	task := s.NewTask("task")

	fired := s.NewCompletion()
	fired.Complete()
	if fired.WaitTask(task, func() { t.Fatal("continuation must not be installed on the fired path") }) {
		t.Fatal("WaitTask on a fired completion must return false")
	}
	if s.Pending() != 0 {
		t.Fatalf("fired-path WaitTask pushed %d events, want 0", s.Pending())
	}

	c := s.NewCompletion()
	ran := false
	if !c.WaitTask(task, func() { ran = true }) {
		t.Fatal("WaitTask on an unfired completion must return true")
	}
	if ran {
		t.Fatal("continuation ran before Complete")
	}
	c.Complete()
	s.Run()
	if !ran {
		t.Fatal("Complete did not wake the waiting task")
	}
}

// TestCompletionSecondWaiterTaskPanics checks the one-waiter contract
// holds across kinds: a task waiting behind an existing waiter panics.
func TestCompletionSecondWaiterTaskPanics(t *testing.T) {
	s := New()
	c := s.NewCompletion()
	c.WaitTask(s.NewTask("first"), func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("second WaitTask did not panic")
		}
	}()
	c.WaitTask(s.NewTask("second"), func() {})
}

// TestWakeAny checks the shared waiter-list entry point: it wakes both
// kinds of context and rejects anything else.
func TestWakeAny(t *testing.T) {
	s := New()
	var log []string
	p := parkingProc(s, "proc", &log)
	task := s.NewTask("task")
	task.OnWake(func() { log = append(log, "task") })

	s.WakeAny(task)
	s.WakeAny(p)
	s.Run()
	want := []string{"task", "proc"}
	for i := range want {
		if i >= len(log) || log[i] != want[i] {
			t.Fatalf("WakeAny order %v, want %v", log, want)
		}
	}

	defer func() {
		if recover() == nil {
			t.Fatal("WakeAny of a non-waiter did not panic")
		}
	}()
	s.WakeAny(42)
}

// TestProcSwitchCounting checks the observability contract: every proc
// wake is one goroutine handoff, task wakes are free, and the per-sim
// counter flushes into the process-wide one on the Run/Step cadence.
func TestProcSwitchCounting(t *testing.T) {
	s := New()
	var log []string
	p := parkingProc(s, "proc", &log)
	base := s.ProcSwitches() // spawn handoff

	task := s.NewTask("task")
	task.OnWake(func() {})

	globalBase := GlobalProcSwitches()
	s.Wake(p)
	task.Wake()
	s.Wake(p)
	task.Wake()
	s.Run()

	if got := s.ProcSwitches() - base; got != 2 {
		t.Fatalf("ProcSwitches grew by %d, want 2 (task wakes must not count)", got)
	}
	if got := GlobalProcSwitches() - globalBase; got != 2 {
		t.Fatalf("GlobalProcSwitches grew by %d, want 2", got)
	}
}
