package sim

import "fmt"

// Proc is a simulation process: sequential code running in its own
// goroutine, scheduled exclusively by the event loop. Blocking operations
// (Sleep, channel receive, resource acquire) park the goroutine and hand
// control back to the event loop; a later event resumes it.
//
// All Proc methods must be called from the process's own goroutine.
type Proc struct {
	sim    *Simulator
	name   string
	resume chan struct{}
	done   bool
	dead   bool // set when the process function returned
}

// Name returns the label the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn starts fn as a simulation process at the current virtual time.
// fn begins executing when the event loop reaches the spawn event.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAfter(0, name, fn)
}

// SpawnAfter starts fn as a simulation process after delay d.
func (s *Simulator) SpawnAfter(d Duration, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.nprocs++
	//ioatlint:allow simdeterminism — the engine's own process machinery: exactly one goroutine runs at a time, hand-off is via resume/parked, so scheduling stays deterministic
	go func() {
		<-p.resume // wait to be scheduled for the first time
		fn(p)
		p.dead = true
		s.nprocs--
		s.parked <- struct{}{} // return control to the event loop
	}()
	s.ScheduleArg(d, resumeProc, p)
	return p
}

// resumeProc is the pre-bound callback behind every process wake-up
// (Sleep, Wake, Completion, Spawn): scheduling it with the process as
// the event argument costs no allocation, where a per-event closure
// over p would.
//
//ioat:hotpath
func resumeProc(a any) {
	p := a.(*Proc)
	p.sim.runProc(p)
}

// runProc transfers control to p until it parks or finishes. Called only
// from event callbacks (the event-loop goroutine).
func (s *Simulator) runProc(p *Proc) {
	if p.dead {
		panic(fmt.Sprintf("sim: resuming dead process %q", p.name))
	}
	if s.procProbe != nil {
		s.procProbe.ProcRun(p.name, s.now)
	}
	s.procSwitches++
	prev := s.current
	s.current = p
	p.resume <- struct{}{}
	<-s.parked
	s.current = prev
}

// park suspends the calling process until the event loop resumes it.
func (p *Proc) park() {
	p.sim.parked <- struct{}{}
	<-p.resume
}

// Park suspends the calling process until another component wakes it with
// Simulator.Wake. The caller must have registered itself somewhere a
// future event can find it, or it sleeps forever.
func (p *Proc) Park() { p.park() }

// Wake schedules a parked process to resume at the current time.
//
//ioat:hotpath
func (s *Simulator) Wake(p *Proc) {
	s.ScheduleArg(0, resumeProc, p)
}

// Sleep suspends the process for virtual duration d. The wake-up event
// is pre-bound to the process, so sleeping allocates nothing.
//
//ioat:hotpath
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v", d))
	}
	p.sim.ScheduleArg(d, resumeProc, p)
	p.park()
}

// Yield reschedules the process at the current time behind already-pending
// same-time events.
func (p *Proc) Yield() { p.Sleep(0) }

// completion is a one-shot event a process can wait on. It is safe to
// Complete before or after Wait begins; Wait returns immediately if the
// completion already fired.
type completion struct {
	sim    *Simulator
	done   bool
	waiter any // *Proc or *Task
}

// NewCompletion returns a one-shot completion bound to the simulator.
func (s *Simulator) NewCompletion() *Completion {
	return &Completion{c: completion{sim: s}}
}

// Completion is a one-shot synchronization point: one waiter, one signal.
type Completion struct{ c completion }

// Done reports whether Complete has been called.
func (c *Completion) Done() bool { return c.c.done }

// Complete fires the completion, waking the waiter if one is parked.
// Completing twice panics: that always indicates a protocol bug.
//
//ioat:hotpath
func (c *Completion) Complete() {
	if c.c.done {
		panic("sim: completion fired twice")
	}
	c.c.done = true
	if w := c.c.waiter; w != nil {
		c.c.waiter = nil
		c.c.sim.WakeAny(w)
	}
}

// Reset rearms a fired completion for reuse, so pools can recycle
// completions instead of allocating one per transfer. It panics if the
// completion has not fired or still has a parked waiter — recycling an
// in-flight completion would strand its waiter forever.
//
//ioat:hotpath
func (c *Completion) Reset() {
	if !c.c.done {
		panic("sim: reset of an unfired completion")
	}
	if c.c.waiter != nil {
		panic("sim: reset of a completion with a parked waiter")
	}
	c.c.done = false
}

// Wait parks p until Complete is called. Only one waiter may wait.
func (c *Completion) Wait(p *Proc) {
	if c.c.done {
		return
	}
	if c.c.waiter != nil {
		panic("sim: second waiter on completion")
	}
	c.c.waiter = p
	p.park()
}

// WaitTask is Wait for an event-driven continuation: if the completion
// has already fired it returns false and the caller continues inline
// (mirroring Wait's immediate return); otherwise it installs cont as t's
// continuation, registers t as the waiter, and returns true — the caller
// must suspend, and Complete will wake t.
//
//ioat:hotpath
func (c *Completion) WaitTask(t *Task, cont func()) bool {
	if c.c.done {
		return false
	}
	if c.c.waiter != nil {
		panic("sim: second waiter on completion")
	}
	t.OnWake(cont)
	c.c.waiter = t
	return true
}
