package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestWheelCrossLevelOrder schedules one batch of events whose delays
// span every wheel level plus the overflow list, and checks they fire
// in strict time order with cascades actually exercised.
func TestWheelCrossLevelOrder(t *testing.T) {
	delays := []int64{
		0, 1, 2, 63, 64, 65, 4095, 4096, 4097,
		1e6, 1e6 + 1, 1e9, 1e12, 1e14,
		horizon - 1, horizon, horizon + 12345, 3 * horizon,
	}
	s := New()
	var fired []Time
	for _, d := range delays {
		s.Schedule(Duration(d), func() { fired = append(fired, s.Now()) })
	}
	s.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(fired), len(delays))
	}
	sorted := append([]int64(nil), delays...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, at := range fired {
		if at != Time(sorted[i]) {
			t.Fatalf("event %d fired at %d, want %d (order %v)", i, at, sorted[i], fired)
		}
	}
	if st := s.SchedStats(); st.Cascades == 0 {
		t.Fatal("cross-level delays produced no cascades")
	}
}

// TestWheelSameTickAcrossCascade checks FIFO within one tick when the
// tick's bucket is assembled from different wheel paths: one event filed
// at schedule time, one appended later from a nested callback.
func TestWheelSameTickAcrossCascade(t *testing.T) {
	s := New()
	var order []string
	s.At(10000, func() { order = append(order, "a") })
	s.At(2000, func() {
		s.At(10000, func() { order = append(order, "c") })
	})
	s.At(10000, func() { order = append(order, "b") })
	s.Run()
	want := []string{"a", "b", "c"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("same-tick order = %v, want %v", order, want)
		}
	}
}

// TestWheelDeadlineDemoteRebase drives the between-runs paths: a
// RunUntil deadline freezes a materialized bucket (and leaves the wheel
// base ahead of the clock), then earlier events arrive — one below the
// open bucket (demote), one below the wheel base (rebase).
func TestWheelDeadlineDemoteRebase(t *testing.T) {
	s := New()
	var fired []Time
	mark := func() { fired = append(fired, s.Now()) }
	for i := 0; i < 3; i++ {
		s.At(100, mark)
	}
	if end := s.RunUntil(50); end != 50 {
		t.Fatalf("RunUntil(50) = %v, want 50", end)
	}
	// Base has advanced to the materialized bucket (100); these land in
	// the gap the clock was cut back into.
	s.At(60, mark)
	s.At(55, mark)
	s.Run()
	want := []Time{55, 60, 100, 100, 100}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestWheelLevel0AheadOfBucket pins the shape where the level-0 window
// straddles a level-1 bucket's range start: with the base mid-epoch, a
// level-0 event (here 130) can be later than the bucket's range start
// (128) yet earlier than the bucket's member (170). The bucket must not
// be dispatched ahead of it.
func TestWheelLevel0AheadOfBucket(t *testing.T) {
	s := New()
	var fired []Time
	mark := func() { fired = append(fired, s.Now()) }
	// Two distinct ticks advance the wheel base to 101, mid-epoch.
	s.At(100, mark)
	s.At(101, mark)
	s.Run()
	// 170 lands on level 1 (range [128, 192)); 130 demotes it out of the
	// open bucket and files itself on level 0 ([101, 165)).
	s.At(170, mark)
	s.At(130, mark)
	s.Run()
	want := []Time{100, 101, 130, 170}
	for i := range want {
		if i >= len(fired) || fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestWheelOverflowOrdering checks events beyond the wheel horizon fire
// in order, both when mixed with near events (migration) and when the
// overflow list is all that remains (direct materialization).
func TestWheelOverflowOrdering(t *testing.T) {
	s := New()
	var fired []Time
	mark := func() { fired = append(fired, s.Now()) }
	s.At(Time(2*horizon+1), mark)
	s.At(Time(horizon+10), mark)
	s.At(5, mark)
	s.At(Time(2*horizon), mark)
	s.Run()
	want := []Time{5, Time(horizon + 10), Time(2 * horizon), Time(2*horizon + 1)}
	for i := range want {
		if i >= len(fired) || fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

// TestWheelRandomAgainstTime hammers the wheel with random delay sets,
// including nested reschedules, and checks count and time ordering.
func TestWheelRandomAgainstTime(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		s := New()
		n := rnd.Intn(200) + 1
		fired := 0
		last := Time(-1)
		var check func()
		check = func() {
			if s.Now() < last {
				t.Fatalf("seed %d: time went backwards: %v after %v", seed, s.Now(), last)
			}
			last = s.Now()
			fired++
			// Occasionally reschedule from inside a callback.
			if rnd.Intn(4) == 0 && fired < 4*n {
				s.Schedule(Duration(rnd.Intn(1<<20)), check)
			}
		}
		for i := 0; i < n; i++ {
			s.Schedule(Duration(rnd.Intn(1<<20)), check)
		}
		s.Run()
		if got := s.Pending(); got != 0 {
			t.Fatalf("seed %d: %d events still pending after Run", seed, got)
		}
	}
}

// TestSchedStats checks the scheduler high-water marks and their
// process-wide aggregation.
func TestSchedStats(t *testing.T) {
	s := New()
	for i := 0; i < 40; i++ {
		s.At(7, func() {})
	}
	for i := 0; i < 10; i++ {
		s.Schedule(Duration(1000+i*4096), func() {})
	}
	s.Run()
	st := s.SchedStats()
	if st.PeakPending != 50 {
		t.Fatalf("PeakPending = %d, want 50", st.PeakPending)
	}
	if st.PeakBucket < 40 {
		t.Fatalf("PeakBucket = %d, want >= 40 (the 40-event tick)", st.PeakBucket)
	}
	if GlobalPeakPending() < 50 {
		t.Fatalf("GlobalPeakPending = %d, want >= 50 after Run", GlobalPeakPending())
	}
}

// FuzzSchedulerOrdering feeds a random interleaved stream of
// Schedule/ScheduleArg/At/pop operations to the timing wheel and to a
// reference model that sorts by (at, seq); the dispatch order must be
// byte-identical.
func FuzzSchedulerOrdering(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 1, 1, 0, 1, 2, 0, 0, 3})
	f.Add([]byte{255, 255, 0, 255, 255, 1, 0, 0, 3, 0, 0, 3})
	f.Add([]byte{16, 0, 2, 0, 64, 3, 3, 232, 0, 0, 0, 3, 0, 0, 3})
	f.Fuzz(func(t *testing.T, ops []byte) {
		type ref struct {
			at  Time
			seq int
			id  int
		}
		s := New()
		var pending []ref
		var got, want []int
		id, seq := 0, 0
		argFn := func(a any) { got = append(got, a.(int)) }
		popRef := func() {
			best := 0
			for i := 1; i < len(pending); i++ {
				if pending[i].at < pending[best].at ||
					(pending[i].at == pending[best].at && pending[i].seq < pending[best].seq) {
					best = i
				}
			}
			want = append(want, pending[best].id)
			pending = append(pending[:best], pending[best+1:]...)
		}
		for i := 0; i+2 < len(ops); i += 3 {
			d := Duration(int(ops[i])<<8 | int(ops[i+1]))
			at := s.Now().Add(d)
			switch ops[i+2] % 4 {
			case 0:
				myid := id
				s.Schedule(d, func() { got = append(got, myid) })
			case 1:
				s.ScheduleArg(d, argFn, id)
			case 2:
				myid := id
				s.At(at, func() { got = append(got, myid) })
			case 3:
				if s.Step() {
					popRef()
				}
				continue
			}
			pending = append(pending, ref{at: at, seq: seq, id: id})
			id++
			seq++
		}
		for s.Step() {
			popRef()
		}
		if len(pending) != 0 || s.Pending() != 0 {
			t.Fatalf("reference has %d pending, wheel %d after drain", len(pending), s.Pending())
		}
		if len(got) != len(want) {
			t.Fatalf("dispatched %d events, reference %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("dispatch order diverges at %d: got %v, want %v", i, got, want)
			}
		}
	})
}
