// The pending-event set: a hierarchical timing wheel (calendar queue).
//
// Events live in a value arena (sim.go); the wheel orders arena indices
// by dispatch time. It has numLevels levels of numSlots buckets each:
// level 0 buckets are one nanosecond-tick wide, and each higher level's
// buckets are numSlots times wider than the level below, so eight levels
// cover 2^48 ns (~3.3 simulated days) ahead of the clock; anything
// beyond that waits in an unsorted overflow list. An event scheduled
// delta ns ahead is appended to the level whose bucket width brackets
// delta, at the slot its absolute time hashes to — O(1), no comparisons.
//
// All placement and lookup is anchored at the wheel's reference time
// `base`, not the simulation clock: base only moves forward when the
// wheel proves no pending event precedes the new value (and, rarely,
// rewinds via a full rebuild — see rebase). Anchoring at base keeps
// every level-l event inside [base, base + numSlots*width_l), which is
// what makes the absolute slot index decodable back to a unique time
// range. The clock itself may trail base after a RunUntil deadline cut.
//
// Dispatch drains one level-0 bucket at a time through `ready`. Because
// level-0 buckets are one tick wide, every event in a bucket shares the
// same timestamp, so lazily sorting the bucket by sequence number on
// materialization restores the engine's strict (at, seq) FIFO order
// exactly — the wheel is byte-for-byte equivalent to a total-order heap.
// When level 0 runs dry, the earliest higher-level bucket is cascaded:
// its events are redistributed to lower levels anchored at the bucket's
// range start, each event moving at most numLevels-1 times over its
// lifetime, which keeps schedule+dispatch amortized O(1) regardless of
// how deep the pending set grows. (The previous 4-ary index min-heap
// paid O(log n) sifts with cache-missing comparisons per operation on
// the deep queues the data-center and PVFS figures build.)
package sim

import "math/bits"

const (
	levelBits = 6
	numSlots  = 1 << levelBits // 64 buckets per level
	slotMask  = numSlots - 1
	numLevels = 8
	// horizon is how far ahead of base the wheel can hold an event;
	// anything further goes to the overflow list.
	horizon = int64(1) << (levelBits * numLevels)
)

// SchedStats are scheduler high-water marks, for capacity planning and
// benchmark reporting. They never influence simulation outcomes.
type SchedStats struct {
	// PeakPending is the most events ever pending at once.
	PeakPending int
	// PeakBucket is the largest single-bucket occupancy ever reached.
	PeakBucket int
	// Cascades counts event moves between wheel levels: the amortized
	// redistribution work the wheel does instead of per-event sifts.
	Cascades uint64
}

// SchedStats returns the scheduler's high-water statistics.
func (s *Simulator) SchedStats() SchedStats { return s.stats }

// rotr rotates x right by k bits.
func rotr(x uint64, k uint) uint64 { return bits.RotateLeft64(x, -int(k)) }

// initWheel seeds every slot with a small bucket carved from one shared
// backing array. Without this, each slot's first append allocates — and
// since slots hash absolute time, long simulations keep first-touching
// fresh high-level slots as the clock rolls forward, which would leak
// allocations into the steady state the packet-path benchmark pins at
// zero. Buckets that outgrow the seed capacity reallocate once and keep
// the larger array thereafter (take0 and the cascades recycle backing
// arrays rather than discard them).
func (s *Simulator) initWheel() {
	const seedCap = 4
	backing := make([]int32, numLevels*numSlots*seedCap)
	for l := 0; l < numLevels; l++ {
		for sl := 0; sl < numSlots; sl++ {
			off := (l*numSlots + sl) * seedCap
			s.wheel[l][sl] = backing[off : off : off+seedCap]
		}
	}
}

// enqueue files an arena index into the pending set. The event's time
// must not precede the current clock (push checks).
//
//ioat:hotpath
func (s *Simulator) enqueue(idx int32, t Time) {
	s.pending++
	if s.pending > s.stats.PeakPending {
		s.stats.PeakPending = s.pending
	}
	if s.readyHead < len(s.ready) {
		// A live dispatch bucket is open. Same-tick events append to it
		// directly (their sequence numbers are larger than everything
		// already there, so order is preserved); an earlier event —
		// possible only between runs, after a RunUntil deadline froze a
		// materialized bucket — demotes the bucket back into the wheel.
		if t == s.readyAt {
			s.ready = append(s.ready, idx)
			if len(s.ready) > s.stats.PeakBucket {
				s.stats.PeakBucket = len(s.ready)
			}
			return
		}
	} else if s.pending == 1 {
		// The only event anywhere: materialize it as the dispatch bucket
		// directly. Single-event chains (every NIC, link and CPU model
		// reschedules itself this way) never touch the wheel at all.
		s.ready = append(s.ready[:0], idx)
		s.readyHead = 0
		s.readyAt = t
		return
	}
	if int64(t) < s.base {
		// The wheel reference ran ahead of this event (possible only
		// after a deadline cut rewound the clock below base): rewind.
		s.rebase()
	}
	if s.readyHead < len(s.ready) && t < s.readyAt {
		s.demoteReady()
	}
	s.place(idx, t, s.base)
}

// place files idx at the wheel level whose bucket width brackets
// delta = t - ref, at the slot t's absolute time hashes to. ref is the
// wheel base for fresh events and the start of the source bucket's
// range for cascaded ones; either way ref never exceeds base, which
// keeps every event inside its level's base-anchored window and the
// absolute slot index unambiguous.
//
//ioat:hotpath
func (s *Simulator) place(idx int32, t Time, ref int64) {
	delta := int64(t) - ref
	if delta >= horizon {
		if len(s.overflow) == 0 || t < s.ovfMin {
			s.ovfMin = t
		}
		s.overflow = append(s.overflow, idx)
		return
	}
	level := 0
	if delta > 0 {
		level = (bits.Len64(uint64(delta)) - 1) / levelBits
	}
	slot := (int64(t) >> (levelBits * level)) & slotMask
	b := append(s.wheel[level][slot], idx)
	s.wheel[level][slot] = b
	s.occ[level] |= 1 << uint(slot)
	if len(b) > s.stats.PeakBucket {
		s.stats.PeakBucket = len(b)
	}
}

// rebase rewinds the wheel reference to the current clock and re-files
// every wheel-resident event against the new anchor. Only reachable
// when a RunUntil deadline left the clock behind base and a new event
// was then scheduled into the gap — rare, so a linear rebuild is fine.
func (s *Simulator) rebase() {
	s.base = int64(s.now)
	var all []int32
	for l := 0; l < numLevels; l++ {
		m := s.occ[l]
		for m != 0 {
			sl := bits.TrailingZeros64(m)
			m &^= 1 << uint(sl)
			all = append(all, s.wheel[l][sl]...)
			s.wheel[l][sl] = s.wheel[l][sl][:0]
		}
		s.occ[l] = 0
	}
	for _, idx := range all {
		s.place(idx, s.events[idx].at, s.base)
	}
}

// demoteReady returns a materialized-but-undispatched bucket to the
// wheel. Only needed when an event earlier than the open bucket arrives,
// which can happen only between Run calls.
func (s *Simulator) demoteReady() {
	for _, idx := range s.ready[s.readyHead:] {
		s.place(idx, s.readyAt, s.base)
	}
	s.ready = s.ready[:0]
	s.readyHead = 0
}

// migrateOverflow moves every overflow event now within the wheel's
// horizon into the wheel and recomputes the overflow minimum.
func (s *Simulator) migrateOverflow() {
	rest := s.overflow[:0]
	rm := maxTime
	for _, idx := range s.overflow {
		t := s.events[idx].at
		if int64(t)-s.base < horizon {
			s.place(idx, t, s.base)
			continue
		}
		if t < rm {
			rm = t
		}
		rest = append(rest, idx)
	}
	s.overflow = rest
	s.ovfMin = rm
}

// readyFromOverflow materializes the earliest overflow events directly
// (only reachable when the wheels are empty and every pending event is
// beyond the horizon — pathological for real workloads, linear is fine).
func (s *Simulator) readyFromOverflow() {
	tmin := maxTime
	for _, idx := range s.overflow {
		if t := s.events[idx].at; t < tmin {
			tmin = t
		}
	}
	rest := s.overflow[:0]
	s.ready = s.ready[:0]
	s.readyHead = 0
	rm := maxTime
	for _, idx := range s.overflow {
		t := s.events[idx].at
		if t == tmin {
			s.ready = append(s.ready, idx)
			continue
		}
		if t < rm {
			rm = t
		}
		rest = append(rest, idx)
	}
	s.overflow = rest
	s.ovfMin = rm
	s.readyAt = tmin
	s.base = int64(tmin)
	s.sortReady()
}

// refill materializes the next dispatch bucket into ready: the earliest
// level-0 bucket, after cascading down any higher-level bucket whose
// time range starts earlier. Reports false when nothing is pending. It
// advances the wheel base but never the clock.
func (s *Simulator) refill() bool {
	if s.pending == 0 {
		return false
	}
	for {
		// Exact earliest level-0 tick. Every occupied level-0 slot maps
		// to a tick in [base, base+numSlots), so rotating the occupancy
		// bitmap by the base's slot yields distances from the base.
		c0 := int64(-1)
		if r := rotr(s.occ[0], uint(s.base)&slotMask); r != 0 {
			c0 = s.base + int64(bits.TrailingZeros64(r))
		}
		// Earliest higher-level bucket, by range start. Every occupied
		// level-l slot maps to a bucket range starting within
		// [base-width, base+horizon_l) — the same rotation decodes it.
		bestL, bestSlot, tie := -1, 0, false
		var bestB int64
		for l := 1; l < numLevels; l++ {
			m := s.occ[l]
			if m == 0 {
				continue
			}
			cur := s.base >> (levelBits * l)
			d := int64(bits.TrailingZeros64(rotr(m, uint(cur)&slotMask)))
			if B := (cur + d) << (levelBits * l); bestL < 0 || B < bestB {
				bestL, bestSlot, bestB, tie = l, int((cur+d)&slotMask), B, false
			} else if B == bestB {
				// A wider bucket starts at the same instant; its events
				// overlap the chosen bucket's whole range.
				tie = true
			}
		}
		cand := c0
		if bestL >= 0 && (cand < 0 || bestB < cand) {
			cand = bestB
		}
		if cand < 0 {
			// Wheels empty but events pending: all in overflow, beyond
			// the horizon.
			s.readyFromOverflow()
			return true
		}
		if len(s.overflow) > 0 && int64(s.ovfMin) <= cand {
			// An overflow event may precede the wheel candidate (the
			// base advanced since it was filed): pull it in first.
			s.migrateOverflow()
			continue
		}
		if c0 >= 0 && (bestL < 0 || c0 < bestB) {
			// The level-0 bucket is strictly earliest.
			s.take0(c0)
			return true
		}
		if bestL == 1 && !tie && c0 < 0 {
			// Level 0 is empty and every other bucket's range starts at
			// or past bestB+numSlots, so this one-bucket-width range is
			// ahead of everything. (With level 0 occupied its window
			// [base, base+numSlots) can straddle bestB, putting c0
			// inside the bucket's range — cascade normally then.) If
			// the members share a single tick inside the range (they
			// almost always do: sparse queues put one event per
			// level-1 bucket), dispatch the bucket directly instead of
			// redistributing it through level 0 and rescanning.
			bucket := s.wheel[1][bestSlot]
			t0 := s.events[bucket[0]].at
			same := int64(t0)-bestB < numSlots
			for i := 1; same && i < len(bucket); i++ {
				same = s.events[bucket[i]].at == t0
			}
			if same && (len(s.overflow) == 0 || s.ovfMin > t0) {
				spare := s.ready[:0]
				s.ready = bucket
				s.wheel[1][bestSlot] = spare
				s.occ[1] &^= 1 << uint(bestSlot)
				s.readyHead = 0
				s.readyAt = t0
				s.base = int64(t0)
				s.sortReady()
				return true
			}
		}
		// Cascade the earliest higher-level bucket one or more levels
		// down. No pending event precedes bestB (every other bucket's
		// range starts at or after it, and overflow was checked), so
		// the base may advance there; re-anchoring members at the range
		// start lands each strictly below bestL.
		if bestB > s.base {
			s.base = bestB
		}
		bucket := s.wheel[bestL][bestSlot]
		s.wheel[bestL][bestSlot] = bucket[:0]
		s.occ[bestL] &^= 1 << uint(bestSlot)
		for _, idx := range bucket {
			s.place(idx, s.events[idx].at, bestB)
		}
		s.stats.Cascades += uint64(len(bucket))
		if bestL == 1 && !tie {
			// A level-1 cascade lands entirely in level 0 (bar rare
			// far-future aliases), within one bucket width of bestB —
			// and with no wider bucket starting at bestB itself, every
			// remaining bucket's range starts past bestB+63. Skip the
			// full rescan and dispatch the earliest level-0 tick
			// directly.
			if r := rotr(s.occ[0], uint(s.base)&slotMask); r != 0 {
				c0 = s.base + int64(bits.TrailingZeros64(r))
				if len(s.overflow) == 0 || int64(s.ovfMin) > c0 {
					s.take0(c0)
					return true
				}
			}
		}
	}
}

// take0 swaps the level-0 bucket holding tick c0 into ready (recycling
// the drained ready slice as the bucket's next backing array), restores
// FIFO by sequence number, and advances the base to it.
func (s *Simulator) take0(c0 int64) {
	slot := uint(c0) & slotMask
	spare := s.ready[:0]
	s.ready = s.wheel[0][slot]
	s.wheel[0][slot] = spare
	s.occ[0] &^= 1 << slot
	s.readyHead = 0
	s.readyAt = Time(c0)
	s.base = c0
	s.sortReady()
}

// sortReady restores sequence order in the materialized bucket. All
// members share one timestamp, so sequence order is (at, seq) order.
// Direct appends arrive already sorted; only cascade mixing can create
// inversions, so check first and sort only when needed.
func (s *Simulator) sortReady() {
	r := s.ready
	sorted := true
	for i := 1; i < len(r); i++ {
		if s.events[r[i]].seq < s.events[r[i-1]].seq {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	if len(r) <= 48 {
		// Insertion sort: O(n + inversions), allocation-free.
		for i := 1; i < len(r); i++ {
			v := r[i]
			seq := s.events[v].seq
			j := i - 1
			for j >= 0 && s.events[r[j]].seq > seq {
				r[j+1] = r[j]
				j--
			}
			r[j+1] = v
		}
		return
	}
	s.heapsortReady()
}

// heapsortReady sorts large mixed buckets in O(n log n) without
// allocating (sequence numbers are unique, so the order is total and
// stability is irrelevant).
func (s *Simulator) heapsortReady() {
	r := s.ready
	n := len(r)
	for i := n/2 - 1; i >= 0; i-- {
		s.siftSeq(r, i, n)
	}
	for i := n - 1; i > 0; i-- {
		r[0], r[i] = r[i], r[0]
		s.siftSeq(r, 0, i)
	}
}

// siftSeq sifts r[i] down within r[:n] under max-heap order by seq.
func (s *Simulator) siftSeq(r []int32, i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && s.events[r[c+1]].seq > s.events[r[c]].seq {
			c++
		}
		if s.events[r[c]].seq <= s.events[r[i]].seq {
			return
		}
		r[i], r[c] = r[c], r[i]
		i = c
	}
}

// peekAt returns the timestamp of the earliest pending event without
// dispatching it (materializing the next bucket if necessary).
//
//ioat:hotpath
func (s *Simulator) peekAt() (Time, bool) {
	if s.readyHead >= len(s.ready) && !s.refill() {
		return 0, false
	}
	return s.readyAt, true
}

// pop removes the earliest event, releases its arena slot, and returns
// its timestamp and callback fields (exactly one of fn and argFn is
// non-nil). The pending set must be non-empty.
//
//ioat:hotpath
func (s *Simulator) pop() (at Time, fn func(), argFn func(any), arg any) {
	if s.readyHead >= len(s.ready) {
		s.refill()
	}
	idx := s.ready[s.readyHead]
	s.readyHead++
	s.pending--
	e := &s.events[idx]
	at, fn, argFn, arg = e.at, e.fn, e.argFn, e.arg
	// Release the callback and argument; the slot is dead until reused.
	e.fn, e.argFn, e.arg = nil, nil, nil
	s.free = append(s.free, idx)
	return at, fn, argFn, arg
}
