// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock (nanosecond resolution) and an event
// heap ordered by (time, sequence). Work can be expressed either as plain
// callback events (Schedule/At) or as blocking processes (Spawn) that run
// in their own goroutines but are scheduled strictly one at a time by the
// event loop, so every run is deterministic.
//
// The pending set is the engine's hottest structure: every simulated
// frame, interrupt, copy and wake-up passes through it once. It is a
// hierarchical timing wheel (see wheel.go) over a value arena with a
// free-list, so the steady state allocates nothing per event — arena
// slots and bucket capacity are recycled — and schedule/dispatch stay
// amortized O(1) however deep the pending set grows. Dispatch order is
// strictly (time, sequence): the wheel lazily sorts each one-tick bucket
// by sequence number before draining it, so outcomes are byte-identical
// to a totally ordered heap. (Earlier engines paid O(log n) heap sifts
// per event, and before that one *event allocation per Schedule.)
package sim

import (
	"fmt"
	"sync/atomic"
	"time"
)

// globalExecuted accumulates dispatched-event counts across every
// simulator in the process, flushed once per Run/RunUntil/Step rather
// than per event. It feeds throughput reporting (events/sec) in the
// benchmark drivers; simulation outcomes never depend on it.
var globalExecuted atomic.Uint64

// GlobalExecuted reports the total events dispatched by all simulators
// in this process so far.
func GlobalExecuted() uint64 { return globalExecuted.Load() }

// globalPeakPending is the deepest pending-event set any simulator in
// the process has reached, flushed on the same cadence as
// globalExecuted. It feeds benchmark reports (scheduler depth is what
// distinguishes the wheel from a heap); outcomes never depend on it.
var globalPeakPending atomic.Uint64

// GlobalPeakPending reports the deepest pending-event set reached by
// any simulator in this process so far.
func GlobalPeakPending() uint64 { return globalPeakPending.Load() }

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// maxTime is the largest representable timestamp, used as "no deadline".
const maxTime = Time(1<<63 - 1)

// Duration re-exports time.Duration for convenience in simulation code.
type Duration = time.Duration

// String formats the timestamp as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the timestamp advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between u and t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the timestamp as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is a single scheduled callback, stored by value in the arena.
// It carries either a plain closure (fn) or a pre-bound function plus
// argument (argFn, arg): the steady-state packet paths schedule with the
// latter so that no per-event closure is allocated — the functions are
// package-level and the argument is a recycled pointer.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	argFn func(any)
	arg   any
}

// Probe observes engine activity for debug-mode checking and tracing
// (see internal/check, internal/trace, internal/metrics). Install one or
// more with WithProbe; without any the engine pays a single predictable
// nil-branch per event.
type Probe interface {
	// EventScheduled fires inside At after validation: now is the
	// current clock, at the requested dispatch time.
	EventScheduled(now, at Time)
	// EventDispatched fires as each event is popped, just before its
	// callback runs.
	EventDispatched(at Time)
}

// ProcProbe is an optional extension a Probe can implement to observe
// scheduler hand-offs to simulation processes. Only the first installed
// probe implementing it receives the callbacks.
type ProcProbe interface {
	// ProcRun fires each time the event loop transfers control to a
	// process (spawn, wake, sleep expiry, completion).
	ProcRun(name string, at Time)
}

// multiProbe fans engine hooks out to several probes in install order.
// The common cases (zero or one probe) never allocate it: the engine's
// hot path still tests one pointer and makes at most one direct call.
type multiProbe struct{ probes []Probe }

func (m *multiProbe) EventScheduled(now, at Time) {
	for _, p := range m.probes {
		p.EventScheduled(now, at)
	}
}

func (m *multiProbe) EventDispatched(at Time) {
	for _, p := range m.probes {
		p.EventDispatched(at)
	}
}

// Option configures a Simulator at construction.
type Option func(*Simulator)

// WithProbe installs a probe that observes every schedule and dispatch.
// The option may be given multiple times; all probes see every hook, in
// install order.
func WithProbe(p Probe) Option {
	return func(s *Simulator) { s.addProbe(p) }
}

// addProbe appends p to the installed probe set, wrapping in a fan-out
// only once a second probe arrives.
func (s *Simulator) addProbe(p Probe) {
	if p == nil {
		return
	}
	switch cur := s.probe.(type) {
	case nil:
		s.probe = p
	case *multiProbe:
		cur.probes = append(cur.probes, p)
	default:
		s.probe = &multiProbe{probes: []Probe{cur, p}}
	}
	if pp, ok := p.(ProcProbe); ok && s.procProbe == nil {
		s.procProbe = pp
	}
}

// Probes returns the individually installed probes in install order
// (never the internal fan-out wrapper), so subsystems can discover their
// own probe by type even when several are installed.
func (s *Simulator) Probes() []Probe {
	switch cur := s.probe.(type) {
	case nil:
		return nil
	case *multiProbe:
		return cur.probes
	default:
		return []Probe{cur}
	}
}

// Simulator owns the virtual clock and the pending event set.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	seq     uint64
	stopped bool
	probe   Probe
	// procProbe caches the first installed probe that also implements
	// ProcProbe, so runProc pays one nil-test instead of a type switch.
	procProbe ProcProbe

	// Pending-event storage. events is the arena; free lists arena slots
	// ready for reuse; the remaining fields are the hierarchical timing
	// wheel that orders arena indices by the events' (at, seq) — see
	// wheel.go.
	events []event
	free   []int32

	// wheel holds pending arena indices bucketed by dispatch time; occ
	// is each level's bucket-occupancy bitmap. overflow collects events
	// beyond the wheel horizon (ovfMin tracks their minimum time), and
	// pending counts every undispatched event wherever it is filed.
	wheel    [numLevels][numSlots][]int32
	occ      [numLevels]uint64
	overflow []int32
	ovfMin   Time
	pending  int
	// base is the wheel's reference time: every level's slot windows
	// are anchored at it, and it never exceeds the earliest pending
	// event. It can run ahead of the clock (see wheel.go).
	base int64

	// ready is the materialized dispatch bucket: the earliest one-tick
	// bucket, sorted by sequence number, drained from readyHead. All its
	// events share timestamp readyAt.
	ready     []int32
	readyHead int
	readyAt   Time

	// stats tracks scheduler high-water marks (never outcome-affecting).
	stats SchedStats

	// Process scheduling handshake. While a process goroutine runs, the
	// event loop blocks on parked, so exactly one goroutine ever touches
	// simulator state at a time.
	parked  chan struct{}
	current *Proc
	nprocs  int

	// executed counts events dispatched, for diagnostics and tests;
	// flushed marks how much of it has been added to globalExecuted.
	executed uint64
	flushed  uint64

	// procSwitches counts event-loop-to-goroutine handoffs (runProc
	// calls); flushedSwitches marks how much of it has been published to
	// globalProcSwitches. Task wakes never count.
	procSwitches    uint64
	flushedSwitches uint64
}

// flushExecuted publishes this simulator's not-yet-reported event count
// to the process-wide counter.
func (s *Simulator) flushExecuted() {
	if d := s.executed - s.flushed; d > 0 {
		globalExecuted.Add(d)
		s.flushed = s.executed
	}
	if d := s.procSwitches - s.flushedSwitches; d > 0 {
		globalProcSwitches.Add(d)
		s.flushedSwitches = s.procSwitches
	}
	for p := uint64(s.stats.PeakPending); ; {
		cur := globalPeakPending.Load()
		if p <= cur || globalPeakPending.CompareAndSwap(cur, p) {
			break
		}
	}
}

// New returns an empty simulator with the clock at zero.
func New(opts ...Option) *Simulator {
	s := &Simulator{parked: make(chan struct{})}
	s.initWheel()
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// InstalledProbe returns the single installed probe, or nil. With more
// than one probe installed it returns the internal fan-out wrapper;
// callers looking for a specific probe type should use Probes.
func (s *Simulator) InstalledProbe() Probe { return s.probe }

// Executed reports how many events have been dispatched so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// ProcSwitches reports how many goroutine handoffs (process wakes) this
// simulator has performed so far. Task wakes are ordinary events and do
// not count.
func (s *Simulator) ProcSwitches() uint64 { return s.procSwitches }

// Pending reports how many events are scheduled but not yet dispatched.
func (s *Simulator) Pending() int { return s.pending }

// Schedule arranges for fn to run after delay d. A negative delay panics:
// simulated time cannot move backwards.
//
//ioat:hotpath
func (s *Simulator) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now.Add(d), fn)
}

// At arranges for fn to run at absolute time t, which must not precede the
// current time.
//
//ioat:hotpath
func (s *Simulator) At(t Time, fn func()) {
	s.push(t, fn, nil, nil)
}

// ScheduleArg is Schedule for a pre-bound callback: fn must be a
// package-level (or otherwise long-lived) function, and arg — typically
// a pooled pointer — is passed to it at dispatch. Unlike a capturing
// closure, the pair allocates nothing, which keeps the steady-state
// packet path (wake-ups, deliveries, credits, completions) alloc-free.
//
//ioat:hotpath
func (s *Simulator) ScheduleArg(d Duration, fn func(any), arg any) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.AtArg(s.now.Add(d), fn, arg)
}

// AtArg is At for a pre-bound callback; see ScheduleArg.
//
//ioat:hotpath
func (s *Simulator) AtArg(t Time, fn func(any), arg any) {
	s.push(t, nil, fn, arg)
}

// push enqueues one event holding either a closure or a pre-bound
// (argFn, arg) pair. Both forms share the arena, sequence numbering and
// probe hooks, so scheduling order — and therefore every simulated
// outcome — is independent of which form a caller uses.
//
//ioat:hotpath
func (s *Simulator) push(t Time, fn func(), argFn func(any), arg any) {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	if s.probe != nil {
		s.probe.EventScheduled(s.now, t)
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.events = append(s.events, event{})
		idx = int32(len(s.events) - 1)
	}
	s.seq++
	s.events[idx] = event{at: t, seq: s.seq, fn: fn, argFn: argFn, arg: arg}
	s.enqueue(idx, t)
}

// Stop makes Run return after the current event completes. Pending events
// stay queued; a subsequent Run resumes them.
func (s *Simulator) Stop() { s.stopped = true }

// Run dispatches events in (time, sequence) order until the heap is empty
// or Stop is called. It returns the time of the last dispatched event.
func (s *Simulator) Run() Time {
	return s.RunUntil(maxTime)
}

// RunUntil dispatches events with timestamps <= deadline, then advances
// the clock to min(deadline, last event time) and returns it. Events
// beyond the deadline remain pending.
func (s *Simulator) RunUntil(deadline Time) Time {
	s.stopped = false
	defer s.flushExecuted()
	for s.pending > 0 && !s.stopped {
		if at, _ := s.peekAt(); at > deadline {
			s.now = deadline
			return s.now
		}
		at, fn, argFn, arg := s.pop()
		s.now = at
		s.executed++
		if s.probe != nil {
			s.probe.EventDispatched(at)
		}
		if fn != nil {
			fn()
		} else {
			argFn(arg)
		}
	}
	if s.now < deadline && deadline != maxTime {
		s.now = deadline
	}
	return s.now
}

// Step dispatches exactly one event if any is pending and reports whether
// it did so.
func (s *Simulator) Step() bool {
	if s.pending == 0 {
		return false
	}
	at, fn, argFn, arg := s.pop()
	s.now = at
	s.executed++
	if s.probe != nil {
		s.probe.EventDispatched(at)
	}
	if fn != nil {
		fn()
	} else {
		argFn(arg)
	}
	s.flushExecuted()
	return true
}
