// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine keeps a virtual clock (nanosecond resolution) and an event
// heap ordered by (time, sequence). Work can be expressed either as plain
// callback events (Schedule/At) or as blocking processes (Spawn) that run
// in their own goroutines but are scheduled strictly one at a time by the
// event loop, so every run is deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Duration re-exports time.Duration for convenience in simulation code.
type Duration = time.Duration

// String formats the timestamp as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// Add returns the timestamp advanced by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed between u and t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the timestamp as fractional seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// event is a single scheduled callback.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulator owns the virtual clock and the pending event set.
// The zero value is not usable; call New.
type Simulator struct {
	now     Time
	heap    eventHeap
	seq     uint64
	stopped bool

	// Process scheduling handshake. While a process goroutine runs, the
	// event loop blocks on parked, so exactly one goroutine ever touches
	// simulator state at a time.
	parked  chan struct{}
	current *Proc
	nprocs  int

	// executed counts events dispatched, for diagnostics and tests.
	executed uint64
}

// New returns an empty simulator with the clock at zero.
func New() *Simulator {
	return &Simulator{parked: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Executed reports how many events have been dispatched so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many events are scheduled but not yet dispatched.
func (s *Simulator) Pending() int { return len(s.heap) }

// Schedule arranges for fn to run after delay d. A negative delay panics:
// simulated time cannot move backwards.
func (s *Simulator) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	s.At(s.now.Add(d), fn)
}

// At arranges for fn to run at absolute time t, which must not precede the
// current time.
func (s *Simulator) At(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.heap, &event{at: t, seq: s.seq, fn: fn})
}

// Stop makes Run return after the current event completes. Pending events
// stay in the heap; a subsequent Run resumes them.
func (s *Simulator) Stop() { s.stopped = true }

// Run dispatches events in (time, sequence) order until the heap is empty
// or Stop is called. It returns the time of the last dispatched event.
func (s *Simulator) Run() Time {
	return s.RunUntil(Time(1<<63 - 1))
}

// RunUntil dispatches events with timestamps <= deadline, then advances
// the clock to min(deadline, last event time) and returns it. Events
// beyond the deadline remain pending.
func (s *Simulator) RunUntil(deadline Time) Time {
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		if s.heap[0].at > deadline {
			s.now = deadline
			return s.now
		}
		e := heap.Pop(&s.heap).(*event)
		s.now = e.at
		s.executed++
		e.fn()
	}
	if s.now < deadline && deadline != Time(1<<63-1) {
		s.now = deadline
	}
	return s.now
}

// Step dispatches exactly one event if any is pending and reports whether
// it did so.
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := heap.Pop(&s.heap).(*event)
	s.now = e.at
	s.executed++
	e.fn()
	return true
}
