package sim

// This file provides synchronization primitives for simulation processes:
// FIFO channels, counted resources (semaphores) and wait groups. They are
// deliberately simple: because the event loop runs processes one at a
// time, none of them need real locking.

// Chan is an unbounded FIFO message queue between simulation processes.
// Send never blocks; Recv blocks the calling process until a value is
// available. Values are delivered in send order, and blocked receivers
// are woken in arrival order.
type Chan[T any] struct {
	sim     *Simulator
	queue   []T
	waiters []*Proc
	closed  bool
}

// NewChan returns an empty channel bound to the simulator.
func NewChan[T any](s *Simulator) *Chan[T] {
	return &Chan[T]{sim: s}
}

// Len reports the number of queued, undelivered values.
func (c *Chan[T]) Len() int { return len(c.queue) }

// Send enqueues v. If a receiver is parked, it is scheduled to wake at
// the current time. Sending on a closed channel panics.
func (c *Chan[T]) Send(v T) {
	if c.closed {
		panic("sim: send on closed Chan")
	}
	c.queue = append(c.queue, v)
	c.wakeOne()
}

// Close marks the channel closed. Parked and future receivers return the
// zero value with ok == false once the queue drains.
func (c *Chan[T]) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, w := range c.waiters {
		w := w
		c.sim.Schedule(0, func() { c.sim.runProc(w) })
	}
	c.waiters = nil
}

// Recv blocks p until a value is available, returning it with ok == true,
// or returns a zero value with ok == false if the channel is closed and
// drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	for len(c.queue) == 0 {
		if c.closed {
			return v, false
		}
		c.waiters = append(c.waiters, p)
		p.park()
	}
	v = c.queue[0]
	c.queue = c.queue[1:]
	return v, true
}

// TryRecv returns a queued value without blocking, if one exists.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.queue) == 0 {
		return v, false
	}
	v = c.queue[0]
	c.queue = c.queue[1:]
	return v, true
}

func (c *Chan[T]) wakeOne() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.sim.Schedule(0, func() { c.sim.runProc(w) })
}

// Resource is a counted semaphore with FIFO waiters: up to Capacity units
// may be held concurrently.
type Resource struct {
	sim      *Simulator
	capacity int
	inUse    int
	waiters  []resWaiter
}

type resWaiter struct {
	p *Proc
	n int
}

// NewResource returns a resource with the given capacity (> 0).
func NewResource(s *Simulator, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Acquire blocks p until one unit is available, then holds it.
func (r *Resource) Acquire(p *Proc) { r.AcquireN(p, 1) }

// AcquireN blocks p until n units are available, then holds them.
// Requests are honored strictly in FIFO order to prevent starvation of
// large requests.
func (r *Resource) AcquireN(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic("sim: bad acquire count")
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	r.waiters = append(r.waiters, resWaiter{p: p, n: n})
	p.park()
	// The releaser already accounted the units to us before waking us.
}

// TryAcquire holds one unit if immediately available.
func (r *Resource) TryAcquire() bool {
	if len(r.waiters) == 0 && r.inUse < r.capacity {
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit.
func (r *Resource) Release() { r.ReleaseN(1) }

// ReleaseN returns n units, waking FIFO waiters whose requests now fit.
func (r *Resource) ReleaseN(n int) {
	if n <= 0 || r.inUse < n {
		panic("sim: release without matching acquire")
	}
	r.inUse -= n
	for len(r.waiters) > 0 && r.inUse+r.waiters[0].n <= r.capacity {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.inUse += w.n
		wp := w.p
		r.sim.Schedule(0, func() { r.sim.runProc(wp) })
	}
}

// WaitGroup lets one process wait for a set of others to finish.
type WaitGroup struct {
	sim    *Simulator
	count  int
	waiter *Proc
}

// NewWaitGroup returns an empty wait group.
func NewWaitGroup(s *Simulator) *WaitGroup { return &WaitGroup{sim: s} }

// Add increases the outstanding count by n.
func (wg *WaitGroup) Add(n int) {
	wg.count += n
	if wg.count < 0 {
		panic("sim: negative WaitGroup count")
	}
	wg.maybeWake()
}

// Done decrements the outstanding count.
func (wg *WaitGroup) Done() { wg.Add(-1) }

// Wait parks p until the count reaches zero. One waiter at a time.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	if wg.waiter != nil {
		panic("sim: second waiter on WaitGroup")
	}
	wg.waiter = p
	p.park()
}

func (wg *WaitGroup) maybeWake() {
	if wg.count == 0 && wg.waiter != nil {
		w := wg.waiter
		wg.waiter = nil
		wg.sim.Schedule(0, func() { wg.sim.runProc(w) })
	}
}

// Gate is a broadcast condition: processes wait until it opens, after
// which all current and future waiters pass immediately.
type Gate struct {
	sim     *Simulator
	open    bool
	waiters []*Proc
}

// NewGate returns a closed gate.
func NewGate(s *Simulator) *Gate { return &Gate{sim: s} }

// Opened reports whether the gate has been opened.
func (g *Gate) Opened() bool { return g.open }

// Open releases all waiters; later Wait calls return immediately.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	for _, w := range g.waiters {
		w := w
		g.sim.Schedule(0, func() { g.sim.runProc(w) })
	}
	g.waiters = nil
}

// Wait parks p until the gate opens.
func (g *Gate) Wait(p *Proc) {
	if g.open {
		return
	}
	g.waiters = append(g.waiters, p)
	p.park()
}
