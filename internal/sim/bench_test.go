package sim

import (
	"testing"
	"time"
)

// BenchmarkSchedule measures one schedule+dispatch round trip through the
// heap. Steady state must be allocation-free: the arena slot freed by
// Step is reused by the next Schedule, and the closure is hoisted out of
// the loop, as hot simulation code does.
func BenchmarkSchedule(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Nanosecond, fn)
		s.Step()
	}
}

// BenchmarkScheduleDepth64 is BenchmarkSchedule with 64 events always
// pending, exercising real sift-up/sift-down paths instead of the trivial
// single-element heap.
func BenchmarkScheduleDepth64(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.Schedule(time.Duration(i+1)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(time.Millisecond, fn)
		s.Step()
	}
}

// BenchmarkScheduleDepth64k keeps 64k events pending — the deep-queue
// shape the data-center and PVFS sweeps build. A comparison-ordered heap
// pays O(log n) cache-missing sifts per operation here; the wheel stays
// amortized O(1) regardless of depth.
func BenchmarkScheduleDepth64k(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 64*1024; i++ {
		s.Schedule(time.Duration(i+1)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(70*time.Millisecond, fn)
		s.Step()
	}
}

// BenchmarkRunHotLoop measures the event loop proper: a self-rescheduling
// event chain dispatched by RunUntil, the pattern every NIC, link and CPU
// model follows. One closure serves the whole run, so allocs/op must be 0.
func BenchmarkRunHotLoop(b *testing.B) {
	s := New()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			s.Schedule(time.Microsecond, fn)
		}
	}
	s.Schedule(time.Microsecond, fn)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	if n != b.N {
		b.Fatalf("dispatched %d events, want %d", n, b.N)
	}
}

// BenchmarkProcResume measures one Proc wake: the event dispatch plus the
// channel handoff to the parked goroutine and back (two host context
// switches). This is the per-blocking-point cost the continuation API
// removes; compare with BenchmarkTaskResume.
func BenchmarkProcResume(b *testing.B) {
	s := New()
	n := 0
	s.Spawn("p", func(p *Proc) {
		for n = 0; n < b.N; n++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	if n != b.N {
		b.Fatalf("resumed %d times, want %d", n, b.N)
	}
}

// BenchmarkTaskResume measures one Task wake: the same event shape as a
// Proc wake, but the continuation runs directly on the event-loop
// goroutine — no channel handoff, no goroutine switch.
func BenchmarkTaskResume(b *testing.B) {
	s := New()
	t := s.NewTask("t")
	n := 0
	t.OnWake(func() {
		n++
		if n < b.N {
			t.WakeAfter(time.Microsecond)
		}
	})
	t.WakeAfter(time.Microsecond)
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
	if n != b.N {
		b.Fatalf("resumed %d times, want %d", n, b.N)
	}
}

// BenchmarkScheduleArg is BenchmarkSchedule through the pre-bound
// (func(any), arg) form the packet paths use. The argument is a live
// pointer, so boxing it into the event must not allocate either.
func BenchmarkScheduleArg(b *testing.B) {
	s := New()
	type payload struct{ n int }
	p := &payload{}
	fn := func(a any) { a.(*payload).n++ }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ScheduleArg(time.Nanosecond, fn, p)
		s.Step()
	}
	if p.n != b.N {
		b.Fatalf("dispatched %d arg events, want %d", p.n, b.N)
	}
}
