package cpu

import (
	"math"
	"testing"
	"time"

	"ioatsim/internal/cost"
	"ioatsim/internal/sim"
)

func newCPU(cores int) (*sim.Simulator, *CPU) {
	s := sim.New()
	p := cost.Default()
	p.Cores = cores
	return s, New(s, p)
}

func TestSubmitRunsAfterWork(t *testing.T) {
	s, c := newCPU(1)
	var doneAt sim.Time = -1
	c.Submit(100*time.Nanosecond, func() { doneAt = s.Now() })
	s.Run()
	if doneAt != 100 {
		t.Fatalf("doneAt = %v, want 100", doneAt)
	}
}

func TestSubmitSerializesOnOneCore(t *testing.T) {
	s, c := newCPU(1)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		c.Submit(100*time.Nanosecond, func() { ends = append(ends, s.Now()) })
	}
	s.Run()
	want := []sim.Time{100, 200, 300}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
}

func TestSubmitSpreadsAcrossCores(t *testing.T) {
	s, c := newCPU(4)
	var ends []sim.Time
	for i := 0; i < 4; i++ {
		c.Submit(100*time.Nanosecond, func() { ends = append(ends, s.Now()) })
	}
	s.Run()
	for _, e := range ends {
		if e != 100 {
			t.Fatalf("ends = %v, want all 100 (parallel)", ends)
		}
	}
}

func TestSubmitOnPinsCore(t *testing.T) {
	s, c := newCPU(4)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		c.SubmitOn(0, 100*time.Nanosecond, func() { ends = append(ends, s.Now()) })
	}
	s.Run()
	if ends[2] != 300 {
		t.Fatalf("pinned work did not serialize: %v", ends)
	}
}

func TestExecBlocksProcess(t *testing.T) {
	s, c := newCPU(1)
	var after sim.Time = -1
	s.Spawn("w", func(p *sim.Proc) {
		c.Exec(p, 250*time.Nanosecond)
		after = p.Now()
	})
	s.Run()
	if after != 250 {
		t.Fatalf("after = %v, want 250", after)
	}
}

func TestExecContendsWithSubmit(t *testing.T) {
	s, c := newCPU(1)
	c.Submit(100*time.Nanosecond, nil)
	var after sim.Time = -1
	s.Spawn("w", func(p *sim.Proc) {
		c.Exec(p, 50*time.Nanosecond)
		after = p.Now()
	})
	s.Run()
	if after != 150 {
		t.Fatalf("after = %v, want 150 (queued behind submit)", after)
	}
}

func TestUtilizationFullyBusy(t *testing.T) {
	s, c := newCPU(2)
	// Keep both cores busy for 1000ns, then measure at 1000.
	c.SubmitOn(0, 1000*time.Nanosecond, nil)
	c.SubmitOn(1, 1000*time.Nanosecond, nil)
	s.Schedule(1000*time.Nanosecond, func() {
		if u := c.Utilization(); math.Abs(u-1.0) > 1e-9 {
			t.Errorf("utilization = %v, want 1.0", u)
		}
	})
	s.Run()
}

func TestUtilizationHalf(t *testing.T) {
	s, c := newCPU(2)
	c.SubmitOn(0, 1000*time.Nanosecond, nil) // core 1 idle
	s.Schedule(1000*time.Nanosecond, func() {
		if u := c.Utilization(); math.Abs(u-0.5) > 1e-9 {
			t.Errorf("utilization = %v, want 0.5", u)
		}
	})
	s.Run()
}

func TestUtilizationWindow(t *testing.T) {
	s, c := newCPU(1)
	c.SubmitOn(0, 400*time.Nanosecond, nil)
	s.Schedule(400*time.Nanosecond, func() { c.ResetWindow() })
	// Idle 400..800, busy 800..1000.
	s.Schedule(800*time.Nanosecond, func() { c.SubmitOn(0, 200*time.Nanosecond, nil) })
	s.Schedule(1200*time.Nanosecond, func() {
		// Window [400,1200]: busy 200 of 800 -> 0.25.
		if u := c.Utilization(); math.Abs(u-0.25) > 1e-9 {
			t.Errorf("windowed utilization = %v, want 0.25", u)
		}
	})
	s.Run()
}

func TestUtilizationMidWork(t *testing.T) {
	s, c := newCPU(1)
	c.SubmitOn(0, 1000*time.Nanosecond, nil)
	s.Schedule(500*time.Nanosecond, func() {
		// Half the work has elapsed: utilization so far is 1.0.
		if u := c.Utilization(); math.Abs(u-1.0) > 1e-9 {
			t.Errorf("mid-work utilization = %v, want 1.0", u)
		}
	})
	s.Run()
}

func TestBacklog(t *testing.T) {
	s, c := newCPU(1)
	c.SubmitOn(0, 300*time.Nanosecond, nil)
	c.SubmitOn(0, 200*time.Nanosecond, nil)
	if got := c.Backlog(0); got != 500*time.Nanosecond {
		t.Fatalf("backlog = %v, want 500ns", got)
	}
	s.Schedule(500*time.Nanosecond, func() {
		if got := c.Backlog(0); got != 0 {
			t.Errorf("backlog after drain = %v, want 0", got)
		}
	})
	s.Run()
}

func TestBusyTime(t *testing.T) {
	s, c := newCPU(4)
	c.Submit(100*time.Nanosecond, nil)
	c.Submit(200*time.Nanosecond, nil)
	s.Schedule(200*time.Nanosecond, func() {
		if got := c.BusyTime(); got != 300*time.Nanosecond {
			t.Errorf("busy = %v, want 300ns", got)
		}
	})
	s.Run()
}

func TestNegativeWorkPanics(t *testing.T) {
	_, c := newCPU(1)
	defer func() {
		if recover() == nil {
			t.Fatal("negative work did not panic")
		}
	}()
	c.Submit(-1, nil)
}

func TestWakeCostGrowsWithOversubscription(t *testing.T) {
	_, c := newCPU(4)
	base := c.WakeCost()
	for i := 0; i < 4; i++ {
		c.RegisterThread() // up to core count: no penalty
	}
	if c.WakeCost() != base {
		t.Fatal("penalty before oversubscription")
	}
	for i := 0; i < 8; i++ {
		c.RegisterThread()
	}
	at12 := c.WakeCost()
	if at12 <= base {
		t.Fatal("no penalty at 3x oversubscription")
	}
	for i := 0; i < 244; i++ {
		c.RegisterThread()
	}
	at256 := c.WakeCost()
	if at256 <= at12 {
		t.Fatal("penalty not monotone")
	}
	// Logarithmic: 256 threads must not cost 20x the 12-thread wake.
	if at256 > 20*at12 {
		t.Fatalf("penalty explodes: %v vs %v", at256, at12)
	}
	for i := 0; i < 256; i++ {
		c.UnregisterThread()
	}
	if c.Threads() != 0 || c.WakeCost() != base {
		t.Fatal("unregister did not restore base cost")
	}
}

func TestUnregisterUnderflowPanics(t *testing.T) {
	_, c := newCPU(2)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow did not panic")
		}
	}()
	c.UnregisterThread()
}

func TestCoreUtilizationPerCore(t *testing.T) {
	s, c := newCPU(2)
	c.SubmitOn(0, 800*time.Nanosecond, nil)
	c.SubmitOn(1, 200*time.Nanosecond, nil)
	s.Schedule(800*time.Nanosecond, func() {
		if u := c.CoreUtilization(0); math.Abs(u-1.0) > 1e-9 {
			t.Errorf("core0 = %v", u)
		}
		if u := c.CoreUtilization(1); math.Abs(u-0.25) > 1e-9 {
			t.Errorf("core1 = %v", u)
		}
	})
	s.Run()
}
