// Package cpu models a node's processor: a fixed set of cores executing
// non-preemptive work items from per-core FIFO queues, with busy-time
// accounting that yields exactly the CPU-utilization numbers the paper
// reports.
//
// Work can be submitted asynchronously (Submit/SubmitOn — used by the
// interrupt/softirq receive path, which the paper pins to one core) or
// synchronously from a simulation process (Exec — used by application
// threads).
package cpu

import (
	"math"
	"time"

	"ioatsim/internal/check"
	"ioatsim/internal/cost"
	"ioatsim/internal/fault"
	"ioatsim/internal/sim"
	"ioatsim/internal/trace"
)

// CPU is one node's set of cores.
type CPU struct {
	S *sim.Simulator
	P *cost.Params

	cores   []core
	threads int

	markAt       sim.Time
	markBusy     time.Duration
	markCoreBusy []time.Duration

	chk *check.Checker
	obs *trace.Obs

	// fault, when non-nil, scales every work item (a degraded node).
	// Every Submit*/Exec* variant funnels through enqueue, so this one
	// hook covers the whole CPU model; nil costs one pointer compare.
	fault *fault.NodeFault
}

type core struct {
	nextFree sim.Time
	busy     time.Duration // cumulative busy time as of nextFree
}

// New returns a CPU with p.Cores cores.
func New(s *sim.Simulator, p *cost.Params) *CPU {
	if p.Cores <= 0 {
		panic("cpu: need at least one core")
	}
	return &CPU{S: s, P: p, cores: make([]core, p.Cores),
		markCoreBusy: make([]time.Duration, p.Cores),
		chk:          check.Enabled(s)}
}

// NumCores returns the number of cores.
func (c *CPU) NumCores() int { return len(c.cores) }

// SetObs attaches the node's observability sinks. Every core-work span
// and profiler sample flows through enqueue, so this one pointer covers
// the whole CPU model.
func (c *CPU) SetObs(o *trace.Obs) { c.obs = o }

// SetFault installs the node's slowdown state (host construction wires
// it under a fault plan).
func (c *CPU) SetFault(f *fault.NodeFault) { c.fault = f }

// pick returns the index of the core that will become free soonest.
//
//ioat:hotpath
func (c *CPU) pick() int {
	best := 0
	for i := 1; i < len(c.cores); i++ {
		if c.cores[i].nextFree < c.cores[best].nextFree {
			best = i
		}
	}
	return best
}

// enqueue places d of work on core i, attributed to site, and returns
// its completion time.
//
//ioat:hotpath
func (c *CPU) enqueue(i int, d time.Duration, site trace.Site) sim.Time {
	if d < 0 {
		panic("cpu: negative work")
	}
	if c.fault != nil {
		d = c.fault.Scale(d)
	}
	now := c.S.Now()
	co := &c.cores[i]
	start := co.nextFree
	if start < now {
		start = now
	}
	end := start.Add(d)
	if c.chk != nil {
		// A core's schedule only ever extends: completion times are
		// monotone and busy time accumulates.
		c.chk.Assert(end >= co.nextFree && end >= now,
			"cpu", "core %d completion %v behind its queue (nextFree %v, now %v)",
			i, end, co.nextFree, now)
	}
	co.nextFree = end
	co.busy += d
	if c.obs != nil && d > 0 {
		c.obs.Span(trace.TidCore(i), site, start, d, 0)
		c.obs.Cost(site, d)
	}
	return end
}

// Submit executes d of work on the least-loaded core, then runs fn (which
// may be nil).
func (c *CPU) Submit(d time.Duration, fn func()) {
	c.SubmitOn(c.pick(), d, fn)
}

// SubmitSite is Submit with an explicit attribution site.
func (c *CPU) SubmitSite(site trace.Site, d time.Duration, fn func()) {
	c.SubmitOnSite(c.pick(), site, d, fn)
}

// SubmitOn executes d of work on a specific core (interrupt affinity),
// then runs fn (which may be nil).
func (c *CPU) SubmitOn(i int, d time.Duration, fn func()) {
	c.SubmitOnSite(i, trace.SiteOther, d, fn)
}

// SubmitOnSite is SubmitOn with an explicit attribution site.
func (c *CPU) SubmitOnSite(i int, site trace.Site, d time.Duration, fn func()) {
	end := c.enqueue(i, d, site)
	if fn != nil {
		c.S.At(end, fn)
	}
}

// SubmitOnArg is SubmitOn with a pre-bound completion callback: fn must
// be long-lived (package-level) and receives arg when the work drains.
// The softirq path uses it so per-chunk completion costs no closure
// allocation.
//
//ioat:hotpath
func (c *CPU) SubmitOnArg(i int, d time.Duration, fn func(any), arg any) {
	c.SubmitOnArgSite(i, trace.SiteOther, d, fn, arg)
}

// SubmitOnArgSite is SubmitOnArg with an explicit attribution site.
//
//ioat:hotpath
func (c *CPU) SubmitOnArgSite(i int, site trace.Site, d time.Duration, fn func(any), arg any) {
	end := c.enqueue(i, d, site)
	c.S.AtArg(end, fn, arg)
}

// Backlog returns how far in the future core i's queue currently extends.
func (c *CPU) Backlog(i int) time.Duration {
	now := c.S.Now()
	if c.cores[i].nextFree <= now {
		return 0
	}
	return c.cores[i].nextFree.Sub(now)
}

// Exec blocks the calling process while d of work executes on the
// least-loaded core.
func (c *CPU) Exec(p *sim.Proc, d time.Duration) {
	c.ExecOnSite(p, c.pick(), trace.SiteApp, d)
}

// ExecSite is Exec with an explicit attribution site.
func (c *CPU) ExecSite(p *sim.Proc, site trace.Site, d time.Duration) {
	c.ExecOnSite(p, c.pick(), site, d)
}

// ExecOn blocks the calling process while d of work executes on core i.
func (c *CPU) ExecOn(p *sim.Proc, i int, d time.Duration) {
	c.ExecOnSite(p, i, trace.SiteApp, d)
}

// ExecOnSite is ExecOn with an explicit attribution site.
func (c *CPU) ExecOnSite(p *sim.Proc, i int, site trace.Site, d time.Duration) {
	end := c.enqueue(i, d, site)
	wait := end.Sub(p.Now())
	if wait > 0 {
		p.Sleep(wait)
	}
}

// ExecTask is the continuation-passing form of Exec: it enqueues d of
// work on the least-loaded core for task t and returns false if the work
// completes at the current instant (the caller continues inline, exactly
// as Exec returns without sleeping). Otherwise it installs cont as t's
// continuation, schedules t's wake at the completion time — the same
// single event a blocked Proc's Sleep would push — and returns true: the
// caller must suspend.
//
//ioat:hotpath
func (c *CPU) ExecTask(t *sim.Task, cont func(), d time.Duration) bool {
	return c.ExecTaskOnSite(t, cont, c.pick(), trace.SiteApp, d)
}

// ExecTaskSite is ExecTask with an explicit attribution site.
//
//ioat:hotpath
func (c *CPU) ExecTaskSite(t *sim.Task, cont func(), site trace.Site, d time.Duration) bool {
	return c.ExecTaskOnSite(t, cont, c.pick(), site, d)
}

// ExecTaskOnSite is ExecTaskSite on a specific core.
//
//ioat:hotpath
func (c *CPU) ExecTaskOnSite(t *sim.Task, cont func(), i int, site trace.Site, d time.Duration) bool {
	end := c.enqueue(i, d, site)
	if end.Sub(t.Now()) <= 0 {
		return false
	}
	t.OnWake(cont)
	t.WakeAt(end)
	return true
}

// busyUpTo returns total busy time across cores up to time t. Queued work
// occupies each core contiguously from now to nextFree, so the cumulative
// counter only needs correcting for the not-yet-elapsed tail.
func (c *CPU) busyUpTo(t sim.Time) time.Duration {
	var total time.Duration
	for i := range c.cores {
		b := c.cores[i].busy
		if c.cores[i].nextFree > t {
			b -= c.cores[i].nextFree.Sub(t)
		}
		total += b
	}
	return total
}

// ResetWindow starts a new measurement window at the current time.
func (c *CPU) ResetWindow() {
	c.markAt = c.S.Now()
	c.markBusy = c.busyUpTo(c.markAt)
	for i := range c.cores {
		c.markCoreBusy[i] = c.coreBusyUpTo(i, c.markAt)
	}
}

// CoreBusyTotal returns core i's cumulative busy time since construction
// up to the current virtual time (no window reset), for metrics sampling.
func (c *CPU) CoreBusyTotal(i int) time.Duration {
	return c.coreBusyUpTo(i, c.S.Now())
}

// coreBusyUpTo returns core i's busy time up to t.
func (c *CPU) coreBusyUpTo(i int, t sim.Time) time.Duration {
	b := c.cores[i].busy
	if c.cores[i].nextFree > t {
		b -= c.cores[i].nextFree.Sub(t)
	}
	return b
}

// Utilization returns mean busy fraction across all cores since the last
// ResetWindow (or the start of the run), in [0, 1].
func (c *CPU) Utilization() float64 {
	now := c.S.Now()
	if now <= c.markAt {
		return 0
	}
	busy := c.busyUpTo(now) - c.markBusy
	u := busy.Seconds() / (float64(len(c.cores)) * now.Sub(c.markAt).Seconds())
	if c.chk != nil {
		c.chk.InRange("cpu", "utilization", u, 0, 1+1e-9)
	}
	return u
}

// BusyTime returns the total busy time across cores since the last
// ResetWindow.
func (c *CPU) BusyTime() time.Duration {
	return c.busyUpTo(c.S.Now()) - c.markBusy
}

// CoreUtilization returns core i's busy fraction since the last
// ResetWindow — the receive-core saturation metric.
func (c *CPU) CoreUtilization(i int) float64 {
	now := c.S.Now()
	if now <= c.markAt {
		return 0
	}
	b := c.coreBusyUpTo(i, now) - c.markCoreBusy[i]
	u := b.Seconds() / now.Sub(c.markAt).Seconds()
	if c.chk != nil {
		c.chk.InRange("cpu", "core utilization", u, 0, 1+1e-9)
	}
	return u
}

// RegisterThread records one more schedulable thread on this node.
// Components that model threads (stream receivers, server workers) call
// this so wake costs reflect oversubscription.
func (c *CPU) RegisterThread() { c.threads++ }

// UnregisterThread removes a thread registered with RegisterThread.
func (c *CPU) UnregisterThread() {
	c.threads--
	if c.threads < 0 {
		panic("cpu: thread count underflow")
	}
}

// Threads returns the registered thread count.
func (c *CPU) Threads() int { return c.threads }

// WakeCost returns the cost of waking a blocked thread: the base context
// switch plus an indirect penalty that grows with the log of
// oversubscription (cold caches, scheduler queueing) — steep enough to
// bound thread scalability, gentle enough that hundreds of mostly-idle
// threads remain schedulable.
func (c *CPU) WakeCost() time.Duration {
	d := c.P.ContextSwitch
	if over := c.threads - len(c.cores); over > 0 {
		factor := math.Log2(1 + float64(over)/float64(len(c.cores)))
		d += time.Duration(factor * float64(c.P.CSIndirect))
	}
	return d
}
