package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"ioatsim/internal/bench"
)

// Handler builds the daemon's HTTP API on the Go 1.22 pattern mux:
//
//	POST   /v1/jobs             submit a job (?stream=1 attaches: NDJSON
//	                            results, disconnect cancels)
//	GET    /v1/jobs             list known jobs (summaries)
//	GET    /v1/jobs/{id}        one job's status with results
//	DELETE /v1/jobs/{id}        cancel a job
//	GET    /v1/jobs/{id}/stream observe a job's NDJSON result stream
//	GET    /v1/runners          the experiment table (id, title, desc)
//	GET    /healthz             liveness (503 while draining)
//	GET    /metrics             serving + cache + engine counters (JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/runners", s.handleRunners)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleSubmit admits a job. The admission outcomes map to:
// invalid request -> 400, draining -> 503, queue full -> 429 with a
// Retry-After estimate. Detached submissions (the default) answer 202
// with the job's status; ?stream=1 keeps the connection open and
// streams the job's results as NDJSON, and an early disconnect cancels
// the job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	req, err := bench.DecodeRequest(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}
	attached := r.URL.Query().Get("stream") == "1"
	var parent = r.Context()
	if !attached {
		parent = nil
	}
	j, err := s.Submit(req, parent)
	switch {
	case err == nil:
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After",
			strconv.Itoa(int(s.RetryAfter().Seconds())))
		httpError(w, http.StatusTooManyRequests, "%v", err)
		return
	default:
		httpError(w, http.StatusBadRequest, "invalid request: %v", err)
		return
	}

	if !attached {
		w.Header().Set("Location", "/v1/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Status(false))
		return
	}
	streamJob(w, r, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status(false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status(true))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	state := j.Cancel()
	writeJSON(w, http.StatusOK, map[string]any{"id": j.ID, "state": state})
}

// handleStream attaches an observer to a job's NDJSON stream: a replay
// of everything emitted so far, then live records until the terminal
// one.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	streamJob(w, r, j)
}

// RunnerInfo is one row of the experiment table — the same table
// ioatbench -list prints.
type RunnerInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Desc  string `json:"desc"`
}

func (s *Server) handleRunners(w http.ResponseWriter, r *http.Request) {
	exps := bench.Experiments()
	out := make([]RunnerInfo, len(exps))
	for i, e := range exps {
		out[i] = RunnerInfo{ID: e.ID, Title: e.Title, Desc: e.Desc}
	}
	writeJSON(w, http.StatusOK, map[string]any{"runners": out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.snap.WriteJSON(w)
}
