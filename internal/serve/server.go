// Package serve turns the benchmark suite into a long-running service:
// an HTTP daemon (cmd/ioatd) that accepts sweep jobs over the same
// configuration surface as the CLI, runs them on a bounded worker pool
// behind an admission-controlled FIFO queue, streams per-experiment
// results as NDJSON while a job is in flight, and shares one
// LRU-bounded point-result cache across every job so repeated
// configurations are served from memory instead of re-simulated.
//
// The serving pipeline is queue -> pool -> cache:
//
//   - admission: POST /v1/jobs is non-blocking; a full queue answers
//     429 with a Retry-After estimated from recent job latency, so
//     overload sheds load at the door instead of building an unbounded
//     backlog (the paper's server-side story, applied to the service
//     that reproduces it);
//   - execution: a fixed pool of workers runs jobs FIFO, each job's
//     experiments sequential, each experiment's points parallel up to
//     the job's own parallelism knob; every job carries a context, so
//     DELETE /v1/jobs/{id}, an attached client's disconnect, and server
//     shutdown all abort a sweep between points without leaking
//     workers;
//   - memoization: results are keyed by the same content-addressed
//     point keys as the CLI, so any job at a configuration the server
//     has seen — from any client — returns table-identical bytes
//     without simulating.
//
// Every result a job reports is byte-identical to what the CLI prints
// for the same configuration; the golden parity tests pin that.
package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ioatsim/internal/bench"
	"ioatsim/internal/metrics"
	"ioatsim/internal/sim"
	"ioatsim/internal/sweep"
)

// Options configures a Server. The zero value is usable: small bounded
// queue, one worker per two cores, memo-only cache capped at 256 MB.
type Options struct {
	// QueueDepth bounds the admission queue (jobs waiting for a
	// worker); <= 0 means 64. A full queue rejects with 429.
	QueueDepth int
	// Workers is the number of concurrently running jobs; <= 0 means 2.
	Workers int
	// MaxScale rejects jobs whose Scale exceeds it; <= 0 means 1.0
	// (paper-sized). Protects the service from arbitrarily large
	// simulations.
	MaxScale float64
	// Retention bounds how many terminal jobs stay queryable; <= 0
	// means 256. The oldest are forgotten first.
	Retention int
	// CacheDir persists point results there ("" = in-process only).
	CacheDir string
	// CacheEntries / CacheBytes bound the in-process point memo
	// (0 = that dimension unbounded; both 0 = entries 4096, bytes
	// 256 MB).
	CacheEntries int
	CacheBytes   int64
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.MaxScale <= 0 {
		o.MaxScale = 1.0
	}
	if o.Retention <= 0 {
		o.Retention = 256
	}
	if o.CacheEntries == 0 && o.CacheBytes == 0 {
		o.CacheEntries = 4096
		o.CacheBytes = 256 << 20
	}
	return o
}

// Server owns the job registry, the admission queue, the worker pool
// and the shared point cache. Create with New, start with Start, stop
// with Shutdown.
type Server struct {
	opts  Options
	cache *sweep.PointCache
	queue *queue
	snap  *metrics.Snapshot

	baseCtx   context.Context
	cancelAll context.CancelFunc
	wg        sync.WaitGroup
	draining  atomic.Bool

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // creation order, for retention
	nextID   uint64
	started  time.Time
	startEv  uint64
	inflight atomic.Int64

	accepted atomic.Uint64
	rejected atomic.Uint64
	finished [3]atomic.Uint64 // done, failed, canceled

	latency *metrics.LockedHistogram

	// run executes one job; tests replace it to exercise the queue and
	// lifecycle without simulating.
	run func(*Job)
}

// New builds a server (not yet running; call Start).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:  opts,
		cache: sweep.NewPointCache(opts.CacheDir).Bound(opts.CacheEntries, opts.CacheBytes),
		queue: newQueue(opts.QueueDepth),
		snap:  metrics.NewSnapshot(),
		jobs:  make(map[string]*Job),
	}
	s.baseCtx, s.cancelAll = context.WithCancel(context.Background())
	s.run = s.runJob
	s.registerMetrics()
	return s
}

// Cache exposes the shared point cache (tests and the daemon's startup
// log read its stats).
func (s *Server) Cache() *sweep.PointCache { return s.cache }

// registerMetrics wires the /metrics snapshot: serving state, job
// outcome counters, latency, cache effectiveness and engine throughput.
func (s *Server) registerMetrics() {
	s.snap.Func("uptime_s", func() float64 {
		s.mu.Lock()
		t0 := s.started
		s.mu.Unlock()
		if t0.IsZero() {
			return 0
		}
		return time.Since(t0).Seconds()
	})
	s.snap.Func("queue_depth", func() float64 { return float64(s.queue.Depth()) })
	s.snap.Func("inflight_jobs", func() float64 { return float64(s.inflight.Load()) })
	s.snap.Func("jobs_accepted", func() float64 { return float64(s.accepted.Load()) })
	s.snap.Func("jobs_rejected", func() float64 { return float64(s.rejected.Load()) })
	s.snap.Func("jobs_done", func() float64 { return float64(s.finished[0].Load()) })
	s.snap.Func("jobs_failed", func() float64 { return float64(s.finished[1].Load()) })
	s.snap.Func("jobs_canceled", func() float64 { return float64(s.finished[2].Load()) })
	s.latency = s.snap.Histogram("job_latency_s",
		0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60, 300)
	s.snap.Func("cache_hits", func() float64 { h, _ := s.cache.Stats(); return float64(h) })
	s.snap.Func("cache_misses", func() float64 { _, m := s.cache.Stats(); return float64(m) })
	s.snap.Func("cache_hit_ratio", func() float64 {
		h, m := s.cache.Stats()
		if h+m == 0 {
			return 0
		}
		return float64(h) / float64(h+m)
	})
	s.snap.Func("cache_evictions", func() float64 { return float64(s.cache.Evictions()) })
	s.snap.Func("cache_entries", func() float64 { return float64(s.cache.Len()) })
	s.snap.Func("cache_bytes", func() float64 { return float64(s.cache.Bytes()) })
	s.snap.Func("sim_events_total", func() float64 {
		s.mu.Lock()
		ev0 := s.startEv
		s.mu.Unlock()
		return float64(sim.GlobalExecuted() - ev0)
	})
	s.snap.Func("sim_events_per_s", func() float64 {
		s.mu.Lock()
		t0, ev0 := s.started, s.startEv
		s.mu.Unlock()
		if t0.IsZero() {
			return 0
		}
		up := time.Since(t0).Seconds()
		if up <= 0 {
			return 0
		}
		return float64(sim.GlobalExecuted()-ev0) / up
	})
}

// Start launches the worker pool.
func (s *Server) Start() {
	s.mu.Lock()
	s.started = time.Now()
	s.startEv = sim.GlobalExecuted()
	s.mu.Unlock()
	for w := 0; w < s.opts.Workers; w++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for j := range s.queue.Chan() {
				s.dispatch(j)
			}
		}()
	}
}

// dispatch runs one job unless it was cancelled while queued or the
// server is draining (queued jobs are not started during shutdown —
// drain means finishing the jobs already in flight).
func (s *Server) dispatch(j *Job) {
	if s.draining.Load() {
		j.finish(StateCanceled, "server shutting down before the job started")
		return
	}
	if !j.start(time.Now()) {
		return // cancelled while queued
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	t0 := time.Now()
	s.run(j)
	s.latency.Observe(time.Since(t0).Seconds())
	switch j.State() {
	case StateDone:
		s.finished[0].Add(1)
	case StateFailed:
		s.finished[1].Add(1)
	default:
		s.finished[2].Add(1)
	}
}

// runJob executes the job's experiments sequentially (its points run
// concurrently up to the job's Parallel setting), streaming each result
// as it completes. A cancelled context ends the job between points; a
// panicking experiment fails the job without taking the worker down.
func (s *Server) runJob(j *Job) {
	defer func() {
		if rec := recover(); rec != nil {
			j.finish(StateFailed, fmt.Sprintf("experiment panicked: %v", rec))
		}
	}()
	cfg := j.cfg
	cfg.Ctx = j.ctx
	cfg.Cache = s.cache
	for _, r := range j.runners {
		t0 := time.Now()
		res, err := r.RunContext(cfg)
		if err != nil {
			j.finish(StateCanceled, err.Error())
			return
		}
		j.appendResult(resultJSON(res, time.Since(t0)))
	}
	j.finish(StateDone, "")
}

// Submit validates, admits and registers a new job. parent bounds the
// job's lifetime in addition to the server's own context — attached
// submissions pass their HTTP request context so a client disconnect
// aborts the sweep; detached submissions pass nil.
func (s *Server) Submit(req bench.Request, parent context.Context) (*Job, error) {
	if s.draining.Load() {
		return nil, ErrDraining
	}
	cfg, runners, err := req.Config(s.opts.MaxScale)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := newJob(id, req, cfg, runners, ctx, cancel, time.Now())
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.evictTerminalLocked()
	s.mu.Unlock()

	if parent != nil {
		// Tie the job to the submitting request: if the client goes
		// away before the job finishes, abort the sweep.
		go func() {
			select {
			case <-parent.Done():
				j.Cancel()
			case <-j.Done():
			}
		}()
	}

	if err := s.queue.TryEnqueue(j); err != nil {
		s.rejected.Add(1)
		cancel()
		s.mu.Lock()
		delete(s.jobs, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		return nil, err
	}
	s.accepted.Add(1)
	return j, nil
}

// evictTerminalLocked forgets the oldest terminal jobs beyond the
// retention bound. Live (queued or running) jobs are never evicted, so
// the registry is bounded by retention + queue depth + workers.
func (s *Server) evictTerminalLocked() {
	excess := len(s.order) - s.opts.Retention
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		if excess > 0 {
			if j := s.jobs[id]; j != nil && j.State().Terminal() {
				delete(s.jobs, id)
				excess--
				continue
			}
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Job looks up a job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots the registry in creation order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j, ok := s.jobs[id]; ok {
			out = append(out, j)
		}
	}
	return out
}

// RetryAfter estimates the wait an overflowed client should observe
// before retrying.
func (s *Server) RetryAfter() time.Duration {
	var mean float64
	if s.latency != nil && s.latency.N() > 0 {
		_, m, _, _, _, _, _ := s.latency.Snapshot()
		mean = m
	}
	return retryAfter(mean, s.queue.Depth(), s.opts.Workers)
}

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: admission stops immediately, queued jobs
// are cancelled, and in-flight jobs get until ctx's deadline to finish.
// Past the deadline their contexts are cancelled, which aborts each
// sweep at the next point boundary; Shutdown then waits for the workers
// to return and reports ctx's error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	for _, j := range s.queue.Close() {
		j.finish(StateCanceled, "server shutting down before the job started")
		s.finished[2].Add(1)
	}
	// Cancel any job still queued in the registry (a worker may have
	// pulled it from the channel but not started it).
	for _, j := range s.Jobs() {
		if j.State() == StateQueued {
			j.Cancel()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelAll() // aborts in-flight sweeps at the next point
		<-done
		return ctx.Err()
	}
}
