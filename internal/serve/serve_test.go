package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- helpers ---------------------------------------------------------

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*http.Response, Status) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	resp.Body.Close()
	return resp, st
}

func waitTerminal(t *testing.T, s *Server, id string, want State) Status {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not registered", id)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in state %s", id, j.State())
	}
	st := j.Status(true)
	if st.State != want {
		t.Fatalf("job %s state = %s (err %q), want %s", id, st.State, st.Error, want)
	}
	return st
}

func goldenTable(t *testing.T, id string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", id+".txt"))
	if err != nil {
		t.Fatalf("missing golden file: %v", err)
	}
	return string(b)
}

// goldenBody is the corpus configuration (Seed 1, Scale 0.05, Check) as
// a job request for the given runners.
func goldenBody(runners ...string) string {
	q, _ := json.Marshal(runners)
	return fmt.Sprintf(`{"runners":%s,"seed":1,"scale":0.05,"check":true}`, q)
}

// --- queue / lifecycle (stubbed runs, no simulation) -----------------

// TestQueueOverflow429 pins admission control: with one worker busy and
// a depth-1 queue occupied, the third submission is rejected with 429
// and a Retry-After hint, and the accepted jobs still finish.
func TestQueueOverflow429(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	started := make(chan *Job, 8)
	release := make(chan struct{})
	s.run = func(j *Job) {
		started <- j
		<-release
		j.finish(StateDone, "")
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp1, st1 := postJob(t, ts, `{"runners":["fig6"]}`)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp1.StatusCode)
	}
	if loc := resp1.Header.Get("Location"); loc != "/v1/jobs/"+st1.ID {
		t.Errorf("Location = %q, want /v1/jobs/%s", loc, st1.ID)
	}
	<-started // job 1 is running, worker occupied

	resp2, st2 := postJob(t, ts, `{"runners":["fig6"]}`)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp2.StatusCode)
	}

	resp3, _ := postJob(t, ts, `{"runners":["fig6"]}`)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit: %d, want 429", resp3.StatusCode)
	}
	ra, err := strconv.Atoi(resp3.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want an integer in [1,60]", resp3.Header.Get("Retry-After"))
	}

	close(release)
	<-started
	waitTerminal(t, s, st1.ID, StateDone)
	waitTerminal(t, s, st2.ID, StateDone)
	if got := s.rejected.Load(); got != 1 {
		t.Errorf("jobs_rejected = %d, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// TestCancelRunningJob pins DELETE semantics for an in-flight job: the
// job's context is cancelled and the job goes terminal as canceled.
func TestCancelRunningJob(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 1)
	s.run = func(j *Job) {
		started <- j
		<-j.ctx.Done()
		j.finish(StateCanceled, j.ctx.Err().Error())
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, st := postJob(t, ts, `{"runners":["fig6"]}`)
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	waitTerminal(t, s, st.ID, StateCanceled)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// TestCancelQueuedJob pins that a job cancelled before a worker picks
// it up goes terminal immediately and the worker later skips it.
func TestCancelQueuedJob(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 8)
	release := make(chan struct{})
	s.run = func(j *Job) {
		started <- j
		<-release
		j.finish(StateDone, "")
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, stA := postJob(t, ts, `{"runners":["fig6"]}`)
	<-started // A running
	_, stB := postJob(t, ts, `{"runners":["fig6"]}`)

	jB, _ := s.Job(stB.ID)
	if got := jB.Cancel(); got != StateCanceled {
		t.Fatalf("Cancel() while queued = %s, want canceled", got)
	}
	close(release)
	waitTerminal(t, s, stA.ID, StateDone)
	waitTerminal(t, s, stB.ID, StateCanceled)
	select {
	case j := <-started:
		t.Fatalf("worker started cancelled job %s", j.ID)
	default:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// TestGracefulShutdownDrain pins drain semantics: admission stops
// (503), queued jobs are cancelled, the in-flight job finishes.
func TestGracefulShutdownDrain(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 8)
	release := make(chan struct{})
	s.run = func(j *Job) {
		started <- j
		<-release
		j.finish(StateDone, "")
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, stA := postJob(t, ts, `{"runners":["fig6"]}`)
	<-started // A running
	_, stB := postJob(t, ts, `{"runners":["fig6"]}`)
	_, stC := postJob(t, ts, `{"runners":["fig6"]}`)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	resp, _ := postJob(t, ts, `{"runners":["fig6"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", hresp.StatusCode)
	}

	waitTerminal(t, s, stB.ID, StateCanceled)
	waitTerminal(t, s, stC.ID, StateCanceled)
	close(release)
	waitTerminal(t, s, stA.ID, StateDone)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestAttachedSubmitDisconnectCancels pins the ?stream=1 contract: the
// job's lifetime is tied to the submitting connection, so hanging up
// aborts the sweep.
func TestAttachedSubmitDisconnectCancels(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	started := make(chan *Job, 1)
	s.run = func(j *Job) {
		started <- j
		<-j.ctx.Done()
		j.finish(StateCanceled, j.ctx.Err().Error())
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, disconnect := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/jobs?stream=1", strings.NewReader(`{"runners":["fig6"]}`))
	go http.DefaultClient.Do(req)

	j := <-started
	disconnect()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job not cancelled after client disconnect (state %s)", j.State())
	}
	if got := j.State(); got != StateCanceled {
		t.Fatalf("state after disconnect = %s, want canceled", got)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(sctx)
}

// TestSubmitValidation pins the 400 path: unknown runners and unknown
// JSON fields are rejected at the door.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	for _, body := range []string{
		`{"runners":["nope"]}`,
		`{"runers":["fig6"]}`,
		`{"scale":-1}`,
		`{"costs":[{"field":"NoSuchKnob","value":1}]}`,
		`not json`,
	} {
		resp, _ := postJob(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s: %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"scale":%g}`, 1e9)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized scale: %d, want 400", resp.StatusCode)
	}
}

// --- parity and caching (real simulations) ---------------------------

// TestGoldenParity pins the acceptance criterion that a job's rendered
// tables are byte-identical to the CLI's golden corpus for the same
// configuration.
func TestGoldenParity(t *testing.T) {
	runners := []string{"fig3a", "fig6", "extipc"}
	s, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	resp, st := postJob(t, ts, goldenBody(runners...))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	fin := waitTerminal(t, s, st.ID, StateDone)
	if len(fin.Results) != len(runners) {
		t.Fatalf("got %d results, want %d", len(fin.Results), len(runners))
	}
	for i, id := range runners {
		if fin.Results[i].ID != id {
			t.Errorf("result %d is %s, want %s (order must match the request)", i, fin.Results[i].ID, id)
		}
		if got, want := fin.Results[i].Table, goldenTable(t, id); got != want {
			t.Errorf("%s diverges from the golden corpus (daemon output is not CLI-identical)", id)
		}
		if len(fin.Results[i].Rows) == 0 {
			t.Errorf("%s: no structured rows", id)
		}
	}
}

// TestConcurrentJobsByteIdentical runs 8 jobs concurrently on 8 workers
// against a shared cache and requires every table to match the golden
// corpus — the determinism-under-concurrency acceptance criterion.
func TestConcurrentJobsByteIdentical(t *testing.T) {
	ids := []string{"fig3a", "fig3b", "fig5a", "fig6", "fig7a", "ablpin", "ablcoal", "extipc"}
	s, ts := newTestServer(t, Options{Workers: 8, QueueDepth: 16})

	var wg sync.WaitGroup
	jobIDs := make([]string, len(ids))
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			resp, st := postJob(t, ts, goldenBody(id))
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("submit %s: %d", id, resp.StatusCode)
				return
			}
			jobIDs[i] = st.ID
		}(i, id)
	}
	wg.Wait()
	for i, id := range ids {
		if jobIDs[i] == "" {
			continue
		}
		fin := waitTerminal(t, s, jobIDs[i], StateDone)
		if len(fin.Results) != 1 {
			t.Errorf("%s: %d results, want 1", id, len(fin.Results))
			continue
		}
		if got, want := fin.Results[0].Table, goldenTable(t, id); got != want {
			t.Errorf("%s under 8-way job concurrency diverges from the golden corpus", id)
		}
	}
}

// TestWarmCacheRepeat pins the shared point cache: an identical job
// resubmitted to the same server must be served from memory, at least
// 10x faster than its cold run.
func TestWarmCacheRepeat(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	body := `{"runners":["fig6","fig7a"],"seed":1,"scale":1,"check":true}`

	_, st1 := postJob(t, ts, body)
	cold := waitTerminal(t, s, st1.ID, StateDone)
	_, st2 := postJob(t, ts, body)
	warm := waitTerminal(t, s, st2.ID, StateDone)

	if cold.WallMS <= 0 || warm.WallMS <= 0 {
		t.Fatalf("missing wall times: cold %v ms, warm %v ms", cold.WallMS, warm.WallMS)
	}
	t.Logf("cold %.2f ms, warm %.2f ms (%.0fx)", cold.WallMS, warm.WallMS, cold.WallMS/warm.WallMS)
	if warm.WallMS*10 > cold.WallMS {
		t.Errorf("warm repeat %.2f ms is not >=10x faster than cold %.2f ms", warm.WallMS, cold.WallMS)
	}
	if cold.Results[0].Table != warm.Results[0].Table {
		t.Error("warm result differs from cold result")
	}
	if hits, _ := s.Cache().Stats(); hits == 0 {
		t.Error("warm run recorded no cache hits")
	}
}

// TestStreamObserver pins the NDJSON stream shape: one record per
// experiment in order, then the terminal record, parseable line by
// line.
func TestStreamObserver(t *testing.T) {
	runners := []string{"fig3a", "fig6"}
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	_, st := postJob(t, ts, goldenBody(runners...))

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var recs []StreamRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(runners)+1 {
		t.Fatalf("got %d records, want %d results + 1 terminal", len(recs), len(runners))
	}
	for i, id := range runners {
		if recs[i].Result == nil || recs[i].Result.ID != id {
			t.Errorf("record %d: want result %s, got %+v", i, id, recs[i])
		}
		if recs[i].Seq != i {
			t.Errorf("record %d has seq %d", i, recs[i].Seq)
		}
	}
	last := recs[len(recs)-1]
	if !last.Done || last.State != StateDone {
		t.Errorf("terminal record = %+v, want Done with state done", last)
	}
	waitTerminal(t, s, st.ID, StateDone)
	if got, want := recs[1].Result.Table, goldenTable(t, "fig6"); got != want {
		t.Error("streamed fig6 table diverges from the golden corpus")
	}
}

// TestConcurrentClientsRaceClean hammers every read endpoint while a
// real job runs; go test -race is the assertion.
func TestConcurrentClientsRaceClean(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	_, st := postJob(t, ts, goldenBody("fig3a", "fig6"))

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				for _, path := range []string{
					"/v1/jobs", "/v1/jobs/" + st.ID, "/v1/runners", "/metrics", "/healthz",
				} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	waitTerminal(t, s, st.ID, StateDone)
}

// --- endpoints -------------------------------------------------------

func TestRunnersEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/runners")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Runners []RunnerInfo `json:"runners"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Runners) < 20 {
		t.Fatalf("only %d runners listed", len(doc.Runners))
	}
	seen := map[string]bool{}
	for _, r := range doc.Runners {
		if r.ID == "" || r.Title == "" || r.Desc == "" {
			t.Errorf("incomplete runner row: %+v", r)
		}
		if seen[r.ID] {
			t.Errorf("duplicate runner id %s", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	_, st := postJob(t, ts, goldenBody("fig3a"))
	waitTerminal(t, s, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("metrics is not valid JSON: %v\n%s", err, buf.String())
	}
	for _, key := range []string{
		"uptime_s", "queue_depth", "inflight_jobs", "jobs_accepted", "jobs_done",
		"job_latency_s", "cache_hits", "cache_hit_ratio", "cache_entries",
		"sim_events_total",
	} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	if doc["jobs_done"].(float64) < 1 {
		t.Errorf("jobs_done = %v, want >= 1", doc["jobs_done"])
	}
	if doc["sim_events_total"].(float64) <= 0 {
		t.Errorf("sim_events_total = %v, want > 0", doc["sim_events_total"])
	}
	lat, ok := doc["job_latency_s"].(map[string]any)
	if !ok || lat["count"].(float64) < 1 {
		t.Errorf("job_latency_s = %v, want a histogram with samples", doc["job_latency_s"])
	}
}

func TestJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, req := range []struct{ method, path string }{
		{http.MethodGet, "/v1/jobs/job-999"},
		{http.MethodDelete, "/v1/jobs/job-999"},
		{http.MethodGet, "/v1/jobs/job-999/stream"},
	} {
		r, _ := http.NewRequest(req.method, ts.URL+req.path, nil)
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: %d, want 404", req.method, req.path, resp.StatusCode)
		}
	}
}

// TestRetentionEvictsTerminalJobs pins the registry bound: old terminal
// jobs are forgotten, live ones never are.
func TestRetentionEvictsTerminalJobs(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 8, Retention: 2})
	s.run = func(j *Job) { j.finish(StateDone, "") }
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var ids []string
	for i := 0; i < 4; i++ {
		_, st := postJob(t, ts, `{"runners":["fig6"]}`)
		ids = append(ids, st.ID)
		waitTerminal(t, s, st.ID, StateDone)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Errorf("oldest terminal job %s not evicted at retention 2", ids[0])
	}
	if _, ok := s.Job(ids[3]); !ok {
		t.Errorf("newest job %s evicted", ids[3])
	}
	if got := len(s.Jobs()); got > 3 {
		t.Errorf("registry holds %d jobs, want <= 3", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

func TestRetryAfterEstimate(t *testing.T) {
	cases := []struct {
		mean    float64
		queued  int
		workers int
		want    time.Duration
	}{
		{0, 10, 2, time.Second},      // no history: floor
		{2.0, 3, 2, 4 * time.Second}, // 2s * 4 jobs / 2 workers
		{120, 50, 1, time.Minute},    // clamped to the ceiling
		{0.001, 0, 4, time.Second},   // tiny jobs: floor
		{1.0, 7, 0, 8 * time.Second}, // workers floor at 1
	}
	for _, c := range cases {
		if got := retryAfter(c.mean, c.queued, c.workers); got != c.want {
			t.Errorf("retryAfter(%v, %d, %d) = %v, want %v", c.mean, c.queued, c.workers, got, c.want)
		}
	}
}
