package serve

import (
	"context"
	"sync"
	"time"

	"ioatsim/internal/bench"
)

// State is a job's lifecycle phase. The legal transitions are
// queued -> running -> {done, failed, canceled} and queued -> canceled;
// terminal states never change.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// ResultJSON is one completed experiment in wire form. Table is the
// rendered text table plus notes — byte-identical to the CLI's output
// for the same configuration, which the golden parity tests pin.
type ResultJSON struct {
	ID      string    `json:"id"`
	Title   string    `json:"title"`
	XLabel  string    `json:"xlabel"`
	Columns []string  `json:"columns"`
	Rows    []RowJSON `json:"rows"`
	Notes   []string  `json:"notes,omitempty"`
	Table   string    `json:"table"`
	WallMS  float64   `json:"wall_ms"`
}

// RowJSON is one table row: x value, optional label, and the column
// values in column order.
type RowJSON struct {
	X      float64   `json:"x"`
	Label  string    `json:"label,omitempty"`
	Values []float64 `json:"values"`
}

// resultJSON converts a finished experiment.
func resultJSON(res *bench.Result, wall time.Duration) ResultJSON {
	s := res.Series
	out := ResultJSON{
		ID:      res.ID,
		Title:   res.Title,
		XLabel:  s.XLabel,
		Columns: s.Columns,
		Notes:   res.Notes,
		Table:   res.String(),
		WallMS:  float64(wall.Microseconds()) / 1e3,
	}
	for _, p := range s.Points {
		row := RowJSON{X: p.X, Label: p.Label}
		for _, c := range s.Columns {
			row.Values = append(row.Values, p.Values[c])
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// StreamRecord is one NDJSON line of a job's result stream: either one
// completed experiment (Result set) or the terminal record (Done set,
// with the final state and error). Seq numbers the records of one job
// from zero.
type StreamRecord struct {
	Job    string      `json:"job"`
	Seq    int         `json:"seq"`
	Result *ResultJSON `json:"result,omitempty"`
	Done   bool        `json:"done,omitempty"`
	State  State       `json:"state,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// Job is one submitted benchmark run moving through the queue and the
// worker pool. All mutable fields are guarded by mu; the context is
// created at admission and cancelled by DELETE, client disconnect (for
// attached submissions) or server shutdown.
type Job struct {
	ID  string
	Req bench.Request

	cfg     bench.Config
	runners []bench.Runner
	ctx     context.Context
	cancel  context.CancelFunc

	mu       sync.Mutex
	state    State
	errMsg   string
	created  time.Time
	started  time.Time
	finished time.Time
	results  []ResultJSON
	records  []StreamRecord
	subs     map[chan StreamRecord]struct{}
	done     chan struct{}
}

func newJob(id string, req bench.Request, cfg bench.Config, runners []bench.Runner,
	ctx context.Context, cancel context.CancelFunc, now time.Time) *Job {
	return &Job{
		ID:      id,
		Req:     req,
		cfg:     cfg,
		runners: runners,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: now,
		subs:    make(map[chan StreamRecord]struct{}),
		done:    make(chan struct{}),
	}
}

// Cancel requests cancellation: a queued job goes terminal immediately,
// a running job's context is cancelled and the worker finishes it. The
// returned state is the job's state after the request.
func (j *Job) Cancel() State {
	j.cancel()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.finishLocked(StateCanceled, context.Canceled.Error())
	}
	return j.state
}

// State returns the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// start moves a queued job to running; it reports false if the job was
// cancelled while queued (the worker must skip it).
func (j *Job) start(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// appendResult records one completed experiment and broadcasts it to
// the stream subscribers.
func (j *Job) appendResult(res ResultJSON) {
	j.mu.Lock()
	j.results = append(j.results, res)
	rec := StreamRecord{Job: j.ID, Seq: len(j.records), Result: &j.results[len(j.results)-1]}
	j.broadcastLocked(rec)
	j.mu.Unlock()
}

// finish moves the job to a terminal state, emits the terminal stream
// record and wakes every waiter. Subsequent calls are no-ops.
func (j *Job) finish(state State, errMsg string) {
	j.mu.Lock()
	j.finishLocked(state, errMsg)
	j.mu.Unlock()
}

func (j *Job) finishLocked(state State, errMsg string) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.broadcastLocked(StreamRecord{Job: j.ID, Seq: len(j.records), Done: true, State: state, Error: errMsg})
	close(j.done)
}

// broadcastLocked appends rec to the record log and fans it out.
// Subscriber channels are sized for the whole stream (experiments +
// terminal record), so sends never block.
func (j *Job) broadcastLocked(rec StreamRecord) {
	j.records = append(j.records, rec)
	for ch := range j.subs {
		ch <- rec
	}
}

// Subscribe returns the records emitted so far and a channel carrying
// every subsequent one; cancel must be called to detach. The channel's
// buffer holds a full stream, so the broadcaster never blocks on a slow
// reader.
func (j *Job) Subscribe() (replay []StreamRecord, live <-chan StreamRecord, cancel func()) {
	ch := make(chan StreamRecord, len(j.runners)+2)
	j.mu.Lock()
	replay = append([]StreamRecord(nil), j.records...)
	if !j.state.Terminal() {
		j.subs[ch] = struct{}{}
	} else {
		close(ch)
	}
	j.mu.Unlock()
	return replay, ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[ch]; ok {
			delete(j.subs, ch)
		}
		j.mu.Unlock()
	}
}

// Status is a job's wire form: summary fields always, Results only when
// the caller asks for the detail view.
type Status struct {
	ID       string       `json:"id"`
	State    State        `json:"state"`
	Error    string       `json:"error,omitempty"`
	Runners  []string     `json:"runners"`
	Seed     uint64       `json:"seed"`
	Scale    float64      `json:"scale"`
	Created  time.Time    `json:"created"`
	Started  *time.Time   `json:"started,omitempty"`
	Finished *time.Time   `json:"finished,omitempty"`
	WallMS   float64      `json:"wall_ms,omitempty"`
	Results  []ResultJSON `json:"results,omitempty"`
}

// Status snapshots the job. withResults includes the per-experiment
// results (large); the list endpoint leaves them out.
func (j *Job) Status(withResults bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	ids := make([]string, len(j.runners))
	for i, r := range j.runners {
		ids[i] = r.ID
	}
	st := Status{
		ID:      j.ID,
		State:   j.state,
		Error:   j.errMsg,
		Runners: ids,
		Seed:    j.cfg.Seed,
		Scale:   j.cfg.Scale,
		Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
		if !j.started.IsZero() {
			st.WallMS = float64(j.finished.Sub(j.started).Microseconds()) / 1e3
		}
	}
	if withResults {
		st.Results = append([]ResultJSON(nil), j.results...)
	}
	return st
}
