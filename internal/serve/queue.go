package serve

import (
	"errors"
	"sync"
	"time"
)

// ErrQueueFull is returned when admission control rejects a job; the
// HTTP layer maps it to 429 Too Many Requests with a Retry-After hint.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrDraining is returned once shutdown has begun; the HTTP layer maps
// it to 503 Service Unavailable.
var ErrDraining = errors.New("serve: server is draining")

// queue is the admission-controlled FIFO between the HTTP handlers and
// the worker pool: a bounded channel plus the closed/draining state that
// makes enqueue-vs-shutdown race-free. Admission is strictly
// first-come-first-served; there is no priority tier — fairness under
// overload is the 429 itself, which pushes retry scheduling to clients.
type queue struct {
	mu     sync.Mutex
	ch     chan *Job
	closed bool
}

func newQueue(depth int) *queue {
	return &queue{ch: make(chan *Job, depth)}
}

// TryEnqueue admits j or reports why not: ErrDraining after close,
// ErrQueueFull when the bounded buffer is at capacity. It never blocks.
func (q *queue) TryEnqueue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return ErrQueueFull
	}
}

// Depth reports how many jobs are waiting for a worker.
func (q *queue) Depth() int { return len(q.ch) }

// Close stops admission and returns the jobs still queued, in FIFO
// order, so the caller can cancel them. Workers draining the channel
// concurrently may win some of these; Close returns only the ones it
// got. The worker range loop exits once the channel is both closed and
// empty.
func (q *queue) Close() []*Job {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil
	}
	q.closed = true
	close(q.ch)
	q.mu.Unlock()

	var leftover []*Job
	for j := range q.ch {
		leftover = append(leftover, j)
	}
	return leftover
}

// Chan is the worker-side receive end.
func (q *queue) Chan() <-chan *Job { return q.ch }

// retryAfter estimates how long an overflowed client should wait before
// retrying: the queue's expected service time (mean job latency times
// queued-jobs-per-worker), clamped to [1s, 60s]. With no latency
// history yet it returns the floor.
func retryAfter(meanJobSeconds float64, queued, workers int) time.Duration {
	if workers < 1 {
		workers = 1
	}
	est := time.Duration(meanJobSeconds * float64(queued+1) / float64(workers) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}
