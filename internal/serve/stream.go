package serve

import (
	"encoding/json"
	"net/http"
)

// streamJob writes a job's result stream to w as NDJSON — one
// StreamRecord per line, flushed as soon as it is emitted so a curl
// reader sees each experiment the moment it completes. The stream is a
// replay of records already emitted followed by live records, and ends
// with the terminal record (Done=true). If the client disconnects
// first, the handler returns; whether that cancels the job is the
// caller's concern (attached submissions tie the job to the request
// context, observers do not).
func streamJob(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	emit := func(rec StreamRecord) bool {
		if err := enc.Encode(rec); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return !rec.Done
	}

	replay, live, cancel := j.Subscribe()
	defer cancel()
	for _, rec := range replay {
		if !emit(rec) {
			return
		}
	}
	for {
		select {
		case rec, ok := <-live:
			if !ok {
				return // job went terminal before we subscribed
			}
			if !emit(rec) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
