package ioatsim

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"ioatsim/internal/bench"
	"ioatsim/internal/host"
	"ioatsim/internal/metrics"
	"ioatsim/internal/trace"
)

// TestTraceDisabledByteIdentity proves the observability subsystem's
// core contract: with no tracer, profiler or metrics registry installed,
// every experiment's rendered table is byte-identical to the seed golden
// corpus. The instrumented sites must be pure observers behind one nil
// compare — any timing or RNG perturbation shows up here as a diff.
func TestTraceDisabledByteIdentity(t *testing.T) {
	cfg := bench.Config{Seed: 1, Scale: 0.05, Parallel: 1}
	for _, r := range bench.Experiments() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			got := r.Run(cfg).String()
			want, err := os.ReadFile(goldenPath(r.ID))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			if got != string(want) {
				t.Errorf("%s with observability disabled diverges from the golden corpus:\n%s",
					r.ID, diffLines(string(want), got))
			}
		})
	}
}

// obsConfig returns a sequential config with every sink installed.
func obsConfig() (bench.Config, host.Observability) {
	obs := host.Observability{
		Trace:   trace.New(0),
		Profile: trace.NewProfiler(),
		Metrics: metrics.New(),
	}
	return bench.Config{Seed: 1, Scale: 0.05, Parallel: 1, Check: true, Obs: obs}, obs
}

// TestObservabilityComposesWithCheck runs representative experiments
// from each family (micro, data-center, PVFS) with the invariant checker
// AND all three observability probes installed: the tables must still be
// byte-identical to the golden corpus, and every sink must actually have
// recorded something.
func TestObservabilityComposesWithCheck(t *testing.T) {
	for _, id := range []string{"fig6", "fig3a", "fig8a", "fig10a"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := bench.Find(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			cfg, obs := obsConfig()
			got := r.Run(cfg).String()
			want, err := os.ReadFile(goldenPath(id))
			if err != nil {
				t.Fatalf("missing golden file: %v", err)
			}
			if got != string(want) {
				t.Errorf("%s under check+trace+profile+metrics diverges from the golden corpus:\n%s",
					id, diffLines(string(want), got))
			}
			if obs.Trace.Len() == 0 {
				t.Error("tracer recorded no events")
			}
			if obs.Profile.CPUTotal() <= 0 {
				t.Error("profiler attributed no CPU time")
			}
			if len(obs.Metrics.Rows()) == 0 {
				t.Error("metrics registry sampled no rows")
			}
			if rep := obs.Profile.Report(); len(rep) == 0 {
				t.Error("empty profile report")
			}
		})
	}
}

// chromeEvent is the Chrome trace-event schema subset the tracer emits.
type chromeEvent struct {
	Ph   string  `json:"ph"`
	Name string  `json:"name"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	S    string  `json:"s"`
	Args map[string]any
}

// chromeTrace is the exported document shape.
type chromeTrace struct {
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData"`
	TraceEvents     []chromeEvent  `json:"traceEvents"`
}

// TestTraceExportSchema round-trips an exported trace through
// encoding/json into the Chrome trace-event schema and checks the
// structural invariants a viewer relies on: known phases, non-negative
// timestamps and durations, metadata naming every referenced process,
// and per-(pid,tid) span-start monotonicity. It also validates the
// metrics CSV parses and carries numeric values.
func TestTraceExportSchema(t *testing.T) {
	r, _ := bench.Find("fig3a")
	cfg, obs := obsConfig()
	r.Run(cfg)

	var buf bytes.Buffer
	if err := obs.Trace.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}

	namedPids := map[int]bool{}
	lastSpanStart := map[[2]int]float64{}
	spans, instants := 0, 0
	for i, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				namedPids[ev.Pid] = true
			}
		case "X":
			spans++
			if ev.Dur < 0 {
				t.Fatalf("event %d: negative duration %v", i, ev.Dur)
			}
			key := [2]int{ev.Pid, ev.Tid}
			if ev.Ts < lastSpanStart[key] {
				t.Fatalf("event %d: span start %v before previous %v on pid %d tid %d",
					i, ev.Ts, lastSpanStart[key], ev.Pid, ev.Tid)
			}
			lastSpanStart[key] = ev.Ts
		case "i":
			instants++
			if ev.S != "t" {
				t.Fatalf("event %d: instant scope %q, want \"t\"", i, ev.S)
			}
		default:
			t.Fatalf("event %d: unknown phase %q", i, ev.Ph)
		}
		if ev.Ph != "M" && ev.Ts < 0 {
			t.Fatalf("event %d: negative timestamp %v", i, ev.Ts)
		}
		if ev.Ph != "M" && !namedPids[ev.Pid] {
			t.Fatalf("event %d: pid %d has no process_name metadata", i, ev.Pid)
		}
	}
	if spans == 0 || instants == 0 {
		t.Fatalf("want both spans and instants, got %d spans %d instants", spans, instants)
	}

	buf.Reset()
	if err := obs.Metrics.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("metrics CSV does not parse: %v", err)
	}
	if len(recs) < 2 {
		t.Fatalf("metrics CSV has %d rows, want header + data", len(recs))
	}
	if want := []string{"time_s", "metric", "value"}; fmt.Sprint(recs[0]) != fmt.Sprint(want) {
		t.Fatalf("CSV header %v, want %v", recs[0], want)
	}
	// Each sweep point is a fresh cluster with its own virtual clock (and
	// its own c<N>/ scope prefix), so timestamps are monotone per scope,
	// not globally.
	lastT := map[string]float64{}
	for i, rec := range recs[1:] {
		ts, err := strconv.ParseFloat(rec[0], 64)
		if err != nil || ts < 0 {
			t.Fatalf("row %d: bad timestamp %q (%v)", i+1, rec[0], err)
		}
		scope, _, ok := strings.Cut(rec[1], "/")
		if !ok {
			t.Fatalf("row %d: metric %q has no scope prefix", i+1, rec[1])
		}
		if ts < lastT[scope] {
			t.Fatalf("row %d: timestamp %v before previous %v in scope %s",
				i+1, ts, lastT[scope], scope)
		}
		lastT[scope] = ts
		if _, err := strconv.ParseFloat(rec[2], 64); err != nil {
			t.Fatalf("row %d: non-numeric value %q", i+1, rec[2])
		}
	}

	// The JSON form must parse too.
	buf.Reset()
	if err := obs.Metrics.WriteJSON(&buf); err != nil {
		t.Fatalf("metrics WriteJSON: %v", err)
	}
	var mdoc struct {
		Series []struct {
			Name   string       `json:"name"`
			Points [][2]float64 `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &mdoc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(mdoc.Series) == 0 {
		t.Fatal("metrics JSON has no series")
	}
}

// TestTraceSmoke is the make trace-smoke entry point: a tiny traced run
// whose artifacts must be non-empty and well-formed.
func TestTraceSmoke(t *testing.T) {
	r, _ := bench.Find("fig6")
	cfg, obs := obsConfig()
	cfg.Obs.MetricsInterval = 500 * time.Microsecond
	r.Run(cfg)
	var buf bytes.Buffer
	if err := obs.Trace.WriteJSON(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("trace export: %d bytes, err %v", buf.Len(), err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("trace export is not valid JSON")
	}
	buf.Reset()
	if err := obs.Metrics.WriteCSV(&buf); err != nil || buf.Len() == 0 {
		t.Fatalf("metrics export: %d bytes, err %v", buf.Len(), err)
	}
}
