package ioatsim

import (
	"os"
	"testing"

	"ioatsim/internal/bench"
	"ioatsim/internal/fault"
)

// TestBenignFaultPlanDifferential is the inertness proof for the fault
// plane: running every experiment under a non-nil but all-zero
// fault.Plan — recovery machinery armed, fault hooks installed on every
// link, NIC and CPU, retransmission timers live — must render tables
// byte-identical to the committed golden corpus, which was produced
// with no plan at all. Any timing, RNG-consumption or CPU-accounting
// perturbation from merely enabling the subsystem shows up here as a
// golden diff.
func TestBenignFaultPlanDifferential(t *testing.T) {
	if raceEnabled {
		t.Skip("full-corpus differential is too slow under the race detector")
	}
	if *updateGolden {
		t.Skip("regenerating corpus")
	}
	for _, r := range bench.Experiments() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig()
			cfg.Fault = &fault.Plan{}
			got := r.Run(cfg).String()
			want, err := os.ReadFile(goldenPath(r.ID))
			if err != nil {
				t.Fatalf("missing golden file (generate with `make golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s diverges under the benign fault plan — the fault plane is not inert:\n%s",
					r.ID, diffLines(string(want), got))
			}
		})
	}
}
