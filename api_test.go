package ioatsim

import (
	"testing"
	"time"
)

// TestPublicAPISurface drives the library exactly as a downstream user
// would: only exported root-package identifiers.
func TestPublicAPISurface(t *testing.T) {
	cluster, sender, receiver := Testbed1(DefaultParams(), IOAT(), 1)
	conn, peer := Pair(sender.Stack, receiver.Stack, 0, 0)
	src, dst := sender.Buf(64*KB), receiver.Buf(64*KB)

	var done Time
	cluster.S.Spawn("tx", func(p *Proc) { conn.Send(p, src, 4*MB) })
	cluster.S.Spawn("rx", func(p *Proc) {
		peer.Recv(p, dst, 4*MB)
		done = p.Now()
	})
	cluster.S.Run()
	if done <= 0 {
		t.Fatal("transfer did not complete")
	}
	if u := receiver.CPU.Utilization(); u <= 0 || u >= 1 {
		t.Fatalf("utilization = %v", u)
	}
}

func TestPublicAPIFeatureConstructors(t *testing.T) {
	if NonIOAT().DMACopy || !IOAT().DMACopy || !IOAT().SplitHeader {
		t.Fatal("feature constructors wrong")
	}
	if IOATDMAOnly().SplitHeader {
		t.Fatal("DMA-only must not enable split headers")
	}
	if !IOATFull().MultiQueue {
		t.Fatal("full feature set must enable multiple receive queues")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(Experiments()) < 19 {
		t.Fatalf("only %d experiments registered", len(Experiments()))
	}
	res, ok := RunExperiment("fig6", ExperimentConfig{Seed: 1, Scale: 0.1})
	if !ok || res == nil || len(res.Series.Points) == 0 {
		t.Fatal("RunExperiment(fig6) failed")
	}
	if _, ok := RunExperiment("nope", ExperimentConfig{}); ok {
		t.Fatal("unknown experiment accepted")
	}
}

func TestPublicAPIPVFS(t *testing.T) {
	cluster := NewCluster(DefaultParams(), 1)
	compute := cluster.Add("compute", IOAT(), 6)
	server := cluster.Add("server", IOAT(), 6)
	sys := NewPVFS(server, 3, 0)
	var n int
	cluster.S.Spawn("app", func(p *Proc) {
		c := NewPVFSClient(p, compute, sys)
		m := c.Create(p, "f", 2*MB)
		buf := compute.Buf(2 * MB)
		c.Read(p, m, 0, m.Size, buf)
		n = m.Size
	})
	cluster.S.Run()
	if n != 2*MB {
		t.Fatalf("read %d", n)
	}
}

func TestPublicAPIDataCenter(t *testing.T) {
	m := RunDataCenter(DataCenterOptions{
		Feat: IOAT(), Seed: 1, ClientNodes: 2, ThreadsPerClient: 2,
		FileCount: 1, FileSize: 4 * KB,
		Warm: 10 * time.Millisecond, Meas: 20 * time.Millisecond,
	})
	if m.Completed == 0 {
		t.Fatal("no transactions")
	}
}

func TestPublicAPIIPC(t *testing.T) {
	cluster := NewCluster(DefaultParams(), 1)
	n := cluster.Add("n", IOAT(), 1)
	ch := NewIPCChannel(n, 16*KB, 4)
	var got int
	src, dst := n.Buf(16*KB), n.Buf(16*KB)
	cluster.S.Spawn("p", func(p *Proc) { ch.Send(p, src, 16*KB) })
	cluster.S.Spawn("c", func(p *Proc) { got = ch.Recv(p, dst) })
	cluster.S.Run()
	if got != 16*KB {
		t.Fatalf("got %d", got)
	}
}
