#!/bin/sh
# bench.sh — wall-clock benchmark of the ioatbench suite, writing a
# BENCH_PR<N>.json style report at the repo root.
#
# The headline number is the sequential full-suite wall clock at the
# given scale (default 0.25), plus engine throughput in events/sec.
# BASELINE_WALL_S is the same measurement taken at the pre-optimization
# commit (708e1a6) on the same machine; the hot-path overhaul (SoA cache,
# arg-carrying events, packet-path pooling) is required to cut it by at
# least 25% with byte-identical tables.
#
# A parallel run is also timed and its result tables diffed against the
# sequential ones: the tables must not depend on the worker count.
# Usage: scripts/bench.sh [scale] [outfile]
#   scale   defaults to 0.25
#   outfile defaults to BENCH_PR3.json (pass BENCH_PR<N>.json per PR)
set -eu

cd "$(dirname "$0")/.."
SCALE="${1:-0.25}"
OUT="${2:-BENCH_PR3.json}"
PR="$(basename "$OUT" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')"
PR="${PR:-0}"
BASELINE_WALL_S=21.3
BASELINE_COMMIT=708e1a6
BIN="$(mktemp -d)/ioatbench"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/ioatbench

seq_json="$(dirname "$BIN")/seq.json"
par_json="$(dirname "$BIN")/par.json"

echo "sequential run (scale $SCALE)..." >&2
"$BIN" -scale "$SCALE" -parallel 1 -json >"$seq_json"
echo "parallel run (scale $SCALE, one worker per core)..." >&2
"$BIN" -scale "$SCALE" -parallel 0 -json >"$par_json"

# The result tables (and the total event count, which is deterministic)
# must not depend on the worker count.
strip_timing() {
    grep -v '"wall' "$1" |
        grep -v '"speedup"\|"parallel"\|"workers"\|"experiment_s"\|"events_per_s"' >"$2"
}
strip_timing "$seq_json" "$seq_json.tables"
strip_timing "$par_json" "$par_json.tables"
if ! diff "$seq_json.tables" "$par_json.tables" >/dev/null; then
    echo "FATAL: parallel results differ from sequential" >&2
    exit 1
fi

extract() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | cut -d' ' -f2; }
seq_s=$(extract "$seq_json" wall_s)
par_s=$(extract "$par_json" wall_s)
workers=$(extract "$par_json" workers)
events=$(extract "$seq_json" events)
events_per_s=$(extract "$seq_json" events_per_s)
cut=$(awk -v base="$BASELINE_WALL_S" -v now="$seq_s" \
    'BEGIN { printf "%.3f", (base > 0) ? 1 - now/base : 0 }')

cat >"$OUT" <<EOF
{
  "pr": $PR,
  "bench": "ioatbench full suite, sequential",
  "scale": $SCALE,
  "baseline_commit": "$BASELINE_COMMIT",
  "baseline_wall_s": $BASELINE_WALL_S,
  "wall_s": $seq_s,
  "wall_cut_fraction": $cut,
  "events": $events,
  "events_per_s": $events_per_s,
  "parallel_wall_s": $par_s,
  "workers": $workers
}
EOF
echo "wrote $OUT: ${seq_s}s sequential vs ${BASELINE_WALL_S}s baseline (cut ${cut}), ${events} events" >&2
