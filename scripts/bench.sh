#!/bin/sh
# bench.sh — wall-clock benchmark of the ioatbench suite, writing a
# BENCH_PR<N>.json style report at the repo root.
#
# The headline number is the sequential full-suite wall clock at the
# given scale (default 0.25) with a cold point cache, plus engine
# throughput in events/sec, goroutine handoffs (proc_switches) and the
# scheduler's peak pending depth. BASELINE_WALL_S is the same
# measurement taken at the pre-optimization commit on the same machine;
# override both via the environment when re-baselining:
#   BASELINE_WALL_S=12.3 BASELINE_COMMIT=abc1234 scripts/bench.sh
#
# A second sequential run against the now-warm point cache measures the
# cache's effect (warm_wall_s, with its hit/miss counts), and a parallel
# run's result tables are diffed against the sequential ones: the tables
# must depend on neither the worker count nor the cache.
# Usage: scripts/bench.sh [scale] [outfile]
#   scale   defaults to 0.25
#   outfile defaults to BENCH_PR8.json (pass BENCH_PR<N>.json per PR)
set -eu

cd "$(dirname "$0")/.."
SCALE="${1:-0.25}"
OUT="${2:-BENCH_PR8.json}"
PR="$(basename "$OUT" | sed -n 's/^BENCH_PR\([0-9][0-9]*\)\.json$/\1/p')"
PR="${PR:-0}"
BASELINE_WALL_S="${BASELINE_WALL_S:-15.84}"
BASELINE_COMMIT="${BASELINE_COMMIT:-67df8da}"
# Provenance: the commit the numbers were measured at and when, so a
# report found on disk months later is still attributable.
COMMIT="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
TIMESTAMP_UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
TMP="$(mktemp -d)"
BIN="$TMP/ioatbench"
CACHE="$TMP/pointcache"
trap 'rm -rf "$TMP"' EXIT

go build -o "$BIN" ./cmd/ioatbench

seq_json="$TMP/seq.json"
warm_json="$TMP/warm.json"
par_json="$TMP/par.json"

echo "sequential run, cold point cache (scale $SCALE)..." >&2
"$BIN" -scale "$SCALE" -parallel 1 -pointcache "$CACHE" -json >"$seq_json"
echo "sequential run, warm point cache..." >&2
"$BIN" -scale "$SCALE" -parallel 1 -pointcache "$CACHE" -json >"$warm_json"
echo "parallel run, no cache (scale $SCALE, one worker per core)..." >&2
"$BIN" -scale "$SCALE" -parallel 0 -json >"$par_json"

# The result tables (and the total event count, which is deterministic)
# must depend on neither the worker count nor the cache. Timing, cache
# tallies and the scheduler high-water mark (zero in a warm run that
# simulates nothing) are the only fields allowed to differ.
strip_timing() {
    grep -v '"wall' "$1" |
        grep -v '"speedup"\|"parallel"\|"workers"\|"experiment_s"\|"events_per_s"' |
        grep -v '"events"\|"peak_pending"\|"proc_switches"\|"cache_hits"\|"cache_misses"' >"$2"
}
strip_timing "$seq_json" "$seq_json.tables"
strip_timing "$par_json" "$par_json.tables"
strip_timing "$warm_json" "$warm_json.tables"
if ! diff "$seq_json.tables" "$par_json.tables" >/dev/null; then
    echo "FATAL: parallel results differ from sequential" >&2
    exit 1
fi
if ! diff "$seq_json.tables" "$warm_json.tables" >/dev/null; then
    echo "FATAL: warm-cache results differ from cold-cache" >&2
    exit 1
fi

extract() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | cut -d' ' -f2; }
seq_s=$(extract "$seq_json" wall_s)
warm_s=$(extract "$warm_json" wall_s)
par_s=$(extract "$par_json" wall_s)
workers=$(extract "$par_json" workers)
events=$(extract "$seq_json" events)
events_per_s=$(extract "$seq_json" events_per_s)
go_maxprocs=$(extract "$seq_json" go_maxprocs)
num_cpu=$(extract "$seq_json" num_cpu)
peak_pending=$(extract "$seq_json" peak_pending)
proc_switches=$(extract "$seq_json" proc_switches)
cache_hits=$(extract "$warm_json" cache_hits)
cache_misses=$(extract "$warm_json" cache_misses)
cut=$(awk -v base="$BASELINE_WALL_S" -v now="$seq_s" \
    'BEGIN { printf "%.3f", (base > 0) ? 1 - now/base : 0 }')
warm_cut=$(awk -v base="$BASELINE_WALL_S" -v now="$warm_s" \
    'BEGIN { printf "%.3f", (base > 0) ? 1 - now/base : 0 }')

cat >"$OUT" <<EOF
{
  "pr": $PR,
  "bench": "ioatbench full suite, sequential",
  "commit": "$COMMIT",
  "timestamp_utc": "$TIMESTAMP_UTC",
  "scale": $SCALE,
  "baseline_commit": "$BASELINE_COMMIT",
  "baseline_wall_s": $BASELINE_WALL_S,
  "wall_s": $seq_s,
  "wall_cut_fraction": $cut,
  "warm_wall_s": $warm_s,
  "warm_cut_fraction": $warm_cut,
  "cache_hits": $cache_hits,
  "cache_misses": $cache_misses,
  "events": $events,
  "events_per_s": $events_per_s,
  "peak_pending": $peak_pending,
  "proc_switches": $proc_switches,
  "parallel_wall_s": $par_s,
  "workers": $workers,
  "go_maxprocs": $go_maxprocs,
  "num_cpu": $num_cpu
}
EOF
echo "wrote $OUT: ${seq_s}s cold / ${warm_s}s warm vs ${BASELINE_WALL_S}s baseline (cuts ${cut} / ${warm_cut}); ${events} events, ${proc_switches} goroutine handoffs, peak pending ${peak_pending}; warm cache ${cache_hits} hits, ${cache_misses} misses" >&2
