#!/bin/sh
# bench.sh — wall-clock benchmark of the ioatbench suite, sequential vs
# parallel, writing BENCH_PR1.json at the repo root. The tables are
# byte-identical between the two modes (asserted here); only wall-clock
# differs. Usage: scripts/bench.sh [scale] (default 0.25).
set -eu

cd "$(dirname "$0")/.."
SCALE="${1:-0.25}"
OUT=BENCH_PR1.json
BIN="$(mktemp -d)/ioatbench"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/ioatbench

seq_json="$(dirname "$BIN")/seq.json"
par_json="$(dirname "$BIN")/par.json"

echo "sequential run (scale $SCALE)..." >&2
"$BIN" -scale "$SCALE" -parallel 1 -json >"$seq_json"
echo "parallel run (scale $SCALE, one worker per core)..." >&2
"$BIN" -scale "$SCALE" -parallel 0 -json >"$par_json"

# The result tables must not depend on the worker count.
strip_timing() {
    grep -v '"wall' "$1" | grep -v '"speedup"\|"parallel"\|"workers"\|"experiment_s"' >"$2"
}
strip_timing "$seq_json" "$seq_json.tables"
strip_timing "$par_json" "$par_json.tables"
if ! diff "$seq_json.tables" "$par_json.tables" >/dev/null; then
    echo "FATAL: parallel results differ from sequential" >&2
    exit 1
fi

extract() { grep -o "\"$2\": [0-9.]*" "$1" | head -1 | cut -d' ' -f2; }
seq_s=$(extract "$seq_json" wall_s)
par_s=$(extract "$par_json" wall_s)
workers=$(extract "$par_json" workers)
speedup=$(awk -v a="$seq_s" -v b="$par_s" 'BEGIN { printf "%.2f", (b > 0) ? a/b : 1 }')

cat >"$OUT" <<EOF
{
  "pr": 1,
  "bench": "ioatbench full suite",
  "scale": $SCALE,
  "workers": $workers,
  "sequential_wall_s": $seq_s,
  "parallel_wall_s": $par_s,
  "speedup": $speedup
}
EOF
echo "wrote $OUT: sequential ${seq_s}s, parallel ${par_s}s on $workers workers (${speedup}x)" >&2
