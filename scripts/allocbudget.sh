#!/usr/bin/env bash
# allocbudget.sh — heap-escape budget for the simulator's hot-path packages.
#
# Runs the compiler's escape analysis (go build -gcflags='-m') over the
# hot-path packages and diffs the escape sites against a committed
# allowlist. Every entry in the allowlist is a known, deliberate
# allocation (constructors, free-list refills, panic messages); a NEW
# escape means a previously stack-allocated or pooled object started
# reaching the heap, which silently breaks the 0 allocs/op contract
# that BenchmarkSteadyStatePacketPath asserts at one sweep point.
#
# Allowlist entries are normalized to "file message" — line and column
# are stripped so routine edits do not churn the file — but failures
# report the raw compiler position (file:line:col) for the new sites.
#
# Usage:
#   scripts/allocbudget.sh              # check default hot-path packages
#   scripts/allocbudget.sh -update      # rewrite the allowlist from current output
#   scripts/allocbudget.sh ./internal/sim   # check specific packages
#   ALLOWLIST=path scripts/allocbudget.sh   # override the allowlist (tests)
#
# Exit status: 0 clean, 1 new escapes, 2 usage/build error.
set -euo pipefail

cd "$(dirname "$0")/.."

ALLOWLIST="${ALLOWLIST:-testdata/lint/escape_allowlist.txt}"

update=0
pkgs=()
for arg in "$@"; do
    case "$arg" in
    -update | --update) update=1 ;;
    -h | --help)
        sed -n '2,20p' "$0"
        exit 0
        ;;
    -*)
        echo "allocbudget: unknown flag $arg" >&2
        exit 2
        ;;
    *) pkgs+=("$arg") ;;
    esac
done
if [ "${#pkgs[@]}" -eq 0 ]; then
    pkgs=(./internal/sim ./internal/link ./internal/nic ./internal/dma
        ./internal/tcp ./internal/mem ./internal/cpu)
fi

# -gcflags applies only to the packages named on the command line, so
# dependencies compile quietly; the build cache replays the diagnostics
# on later runs.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
if ! go build -o /dev/null -gcflags='-m' "${pkgs[@]}" >"$raw" 2>&1; then
    echo "allocbudget: go build failed:" >&2
    cat "$raw" >&2
    exit 2
fi

# One normalized key per escape site: position stripped to the file.
current="$(grep -E 'escapes to heap|moved to heap' "$raw" |
    sed -E 's/:[0-9]+(:[0-9]+)?: / /' | LC_ALL=C sort -u || true)"

if [ "$update" -eq 1 ]; then
    mkdir -p "$(dirname "$ALLOWLIST")"
    {
        echo "# Known heap-escape sites in the hot-path packages."
        echo "# Regenerate with: scripts/allocbudget.sh -update"
        echo "# Format: <file> <compiler escape message> (line/column stripped)."
        printf '%s\n' "$current"
    } >"$ALLOWLIST"
    echo "allocbudget: wrote $(printf '%s\n' "$current" | grep -c .) entries to $ALLOWLIST"
    exit 0
fi

if [ ! -f "$ALLOWLIST" ]; then
    echo "allocbudget: allowlist $ALLOWLIST not found (run with -update to create it)" >&2
    exit 2
fi
allowed="$(grep -v '^#' "$ALLOWLIST" | grep -v '^$' | LC_ALL=C sort -u || true)"

new_keys="$(LC_ALL=C comm -23 <(printf '%s\n' "$current") <(printf '%s\n' "$allowed") | grep -v '^$' || true)"
stale="$(LC_ALL=C comm -13 <(printf '%s\n' "$current") <(printf '%s\n' "$allowed") | grep -v '^$' || true)"

if [ -n "$stale" ]; then
    echo "allocbudget: warning: $(printf '%s\n' "$stale" | grep -c .) stale allowlist entries (escape no longer present):" >&2
    printf '%s\n' "$stale" | sed 's/^/  /' >&2
fi

if [ -n "$new_keys" ]; then
    echo "allocbudget: NEW heap escapes not in $ALLOWLIST:" >&2
    # Report the raw compiler lines (with line:col) for each new key.
    while IFS= read -r key; do
        file="${key%% *}"
        msg="${key#* }"
        grep -F "$msg" "$raw" | grep -F "$file" | grep -E 'escapes to heap|moved to heap' |
            LC_ALL=C sort -u | sed 's/^/  /' >&2
    done <<<"$new_keys"
    echo "allocbudget: if an allocation is deliberate (pool refill, cold path)," >&2
    echo "allocbudget: justify it in review and re-run scripts/allocbudget.sh -update" >&2
    exit 1
fi

echo "allocbudget: OK ($(printf '%s\n' "$current" | grep -c .) known escape sites, 0 new)"
