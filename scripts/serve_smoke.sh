#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the ioatd daemon: boot it,
# submit a golden-configuration job over HTTP, require the returned
# table to be byte-identical to the committed golden corpus, require a
# resubmission to hit the shared point cache, and require SIGTERM to
# drain cleanly (exit 0).
#
# Usage: scripts/serve_smoke.sh [port]
set -eu

cd "$(dirname "$0")/.."
PORT="${1:-18321}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP/ioatd" ./cmd/ioatd

"$TMP/ioatd" -addr "127.0.0.1:$PORT" -workers 2 -queue 8 2>"$TMP/ioatd.log" &
PID=$!

# Wait for the daemon to come up.
i=0
until curl -fsS "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "FATAL: ioatd did not become healthy" >&2
        cat "$TMP/ioatd.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "runners endpoint lists the experiment registry..." >&2
curl -fsS "$BASE/v1/runners" | jq -e '.runners | length >= 20' >/dev/null
curl -fsS "$BASE/v1/runners" | jq -e '.runners[] | select(.id == "fig6") | .desc != ""' >/dev/null

submit_and_wait() {
    job_id=$(curl -fsS -X POST "$BASE/v1/jobs" \
        -d '{"runners":["fig6"],"seed":1,"scale":0.05,"check":true}' | jq -r .id)
    i=0
    while :; do
        state=$(curl -fsS "$BASE/v1/jobs/$job_id" | jq -r .state)
        [ "$state" = "done" ] && break
        case "$state" in failed | canceled)
            echo "FATAL: job $job_id ended $state" >&2
            curl -fsS "$BASE/v1/jobs/$job_id" >&2
            exit 1
            ;;
        esac
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "FATAL: job $job_id stuck in state $state" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "golden-config job (cold)..." >&2
submit_and_wait
# The table string already ends in a newline and jq -r adds another;
# collapse trailing newlines to one on both sides before the byte diff.
printf '%s\n' "$(curl -fsS "$BASE/v1/jobs/$job_id" | jq -r '.results[0].table')" >"$TMP/served.txt"
printf '%s\n' "$(cat testdata/golden/fig6.txt)" >"$TMP/golden.txt"
if ! diff -u "$TMP/golden.txt" "$TMP/served.txt" >&2; then
    echo "FATAL: daemon-served fig6 table diverges from testdata/golden/fig6.txt" >&2
    exit 1
fi

echo "identical job again (must hit the shared point cache)..." >&2
submit_and_wait
curl -fsS "$BASE/metrics" | jq -e '.cache_hits > 0 and .jobs_done >= 2' >/dev/null

echo "NDJSON stream replay of the finished job..." >&2
curl -fsS "$BASE/v1/jobs/$job_id/stream" | tail -1 | jq -e '.done and .state == "done"' >/dev/null

echo "graceful drain on SIGTERM..." >&2
kill -TERM "$PID"
if ! wait "$PID"; then
    echo "FATAL: ioatd exited non-zero on SIGTERM" >&2
    cat "$TMP/ioatd.log" >&2
    exit 1
fi
PID=""

echo "serve-smoke OK" >&2
