package ioatsim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ioatsim/internal/bench"
)

// The golden corpus pins the rendered table of every registered
// experiment at a small, fully deterministic scale. Any change to the
// simulator's timing, cost model, RNG consumption or table rendering
// shows up as a readable line diff against testdata/golden/<id>.txt.
//
// To bless an intended change, regenerate the corpus with
//
//	make golden
//
// and review the diff like any other code change.

var updateGolden = flag.Bool("update", false,
	"rewrite testdata/golden/ from the current simulator output")

// goldenConfig is the corpus configuration: small enough that the whole
// corpus runs in seconds, byte-identical at any Parallel setting, and
// executed under the runtime invariant checker so a corpus run is also a
// full conservation/causality audit.
func goldenConfig() bench.Config {
	return bench.Config{Seed: 1, Scale: 0.05, Check: true}
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

func TestGoldenCorpus(t *testing.T) {
	for _, r := range bench.Experiments() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			got := r.Run(goldenConfig()).String()
			path := goldenPath(r.ID)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (generate with `make golden`): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s diverges from the golden corpus:\n%s\nIf the change is intended, regenerate with `make golden` and review the diff.",
					r.ID, diffLines(string(want), got))
			}
		})
	}
}

// TestGoldenCorpusComplete fails when an experiment is added without a
// golden file, or a stale golden file outlives its experiment.
func TestGoldenCorpusComplete(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating corpus")
	}
	ids := map[string]bool{}
	for _, r := range bench.Experiments() {
		ids[r.ID] = true
		if _, err := os.Stat(goldenPath(r.ID)); err != nil {
			t.Errorf("experiment %s has no golden file (run `make golden`)", r.ID)
		}
	}
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		id := strings.TrimSuffix(filepath.Base(f), ".txt")
		if !ids[id] {
			t.Errorf("golden file %s has no registered experiment", f)
		}
	}
}

// diffLines renders a minimal line-oriented diff: common lines elided,
// divergent lines shown as -want/+got pairs with 1-based line numbers.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&b, "  line %d:\n  - %s\n  + %s\n", i+1, w, g)
	}
	return b.String()
}
